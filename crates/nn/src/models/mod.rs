//! CIFAR-scale model zoo: AlexNet, VGG16 and ResNet50.
//!
//! These are the three architectures the FitAct paper evaluates. Each builder
//! produces a [`Network`] whose every ReLU lives in an
//! [`crate::layers::ActivationLayer`] slot, so protection schemes can later
//! replace them. A width multiplier scales every channel count so the full
//! topology can be exercised quickly on a CPU; `width_multiplier = 1.0`
//! reproduces the standard CIFAR variants of the architectures.

mod alexnet;
mod resnet;
mod vgg;

pub use alexnet::alexnet;
pub use resnet::resnet50;
pub use vgg::{vgg16, VGG16_FIRST_CONV_PREFIX, VGG16_SECOND_ACT_SLOT, VGG16_SECOND_CONV_PREFIX};

use crate::{Network, NnError};

/// Input channels of the CIFAR images.
pub const INPUT_CHANNELS: usize = 3;
/// Spatial size of the CIFAR images.
pub const INPUT_SIZE: usize = 32;

/// Configuration shared by all model builders.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelConfig {
    /// Number of output classes (10 for CIFAR-10, 100 for CIFAR-100).
    pub num_classes: usize,
    /// Multiplier applied to every channel count (1.0 = paper-scale CIFAR
    /// variant; smaller values shrink the model for fast CPU experiments).
    pub width_multiplier: f32,
    /// Dropout probability used in the fully-connected classifiers.
    pub dropout: f32,
    /// Seed for weight initialisation (and dropout masks).
    pub seed: u64,
}

impl Default for ModelConfig {
    fn default() -> Self {
        ModelConfig {
            num_classes: 10,
            width_multiplier: 1.0,
            dropout: 0.5,
            seed: 42,
        }
    }
}

impl ModelConfig {
    /// Creates a configuration for `num_classes` classes at full width.
    pub fn new(num_classes: usize) -> Self {
        ModelConfig {
            num_classes,
            ..Default::default()
        }
    }

    /// Builder-style width multiplier override.
    #[must_use]
    pub fn with_width(mut self, width_multiplier: f32) -> Self {
        self.width_multiplier = width_multiplier;
        self
    }

    /// Builder-style seed override.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder-style dropout override.
    #[must_use]
    pub fn with_dropout(mut self, dropout: f32) -> Self {
        self.dropout = dropout;
        self
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidConfig`] for zero classes, a non-positive
    /// width multiplier or an out-of-range dropout probability.
    pub fn validate(&self) -> Result<(), NnError> {
        if self.num_classes == 0 {
            return Err(NnError::InvalidConfig(
                "num_classes must be at least 1".into(),
            ));
        }
        if self.width_multiplier.is_nan() || self.width_multiplier <= 0.0 {
            return Err(NnError::InvalidConfig(format!(
                "width_multiplier must be positive, got {}",
                self.width_multiplier
            )));
        }
        if !(0.0..1.0).contains(&self.dropout) {
            return Err(NnError::InvalidConfig(format!(
                "dropout must be in [0, 1), got {}",
                self.dropout
            )));
        }
        Ok(())
    }

    /// Scales a channel count by the width multiplier (never below 4 so batch
    /// normalisation stays meaningful).
    pub fn scale(&self, channels: usize) -> usize {
        ((channels as f32 * self.width_multiplier).round() as usize).max(4)
    }
}

/// The three DNN architectures evaluated by the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Architecture {
    /// AlexNet (CIFAR variant).
    AlexNet,
    /// VGG16 with batch normalisation (CIFAR variant).
    Vgg16,
    /// ResNet50 (CIFAR variant).
    ResNet50,
}

impl Architecture {
    /// All architectures, in the order used by the paper's Fig. 6.
    pub const ALL: [Architecture; 3] = [
        Architecture::ResNet50,
        Architecture::Vgg16,
        Architecture::AlexNet,
    ];

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            Architecture::AlexNet => "alexnet",
            Architecture::Vgg16 => "vgg16",
            Architecture::ResNet50 => "resnet50",
        }
    }

    /// Builds the architecture with the given configuration.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidConfig`] for invalid configurations.
    pub fn build(self, config: &ModelConfig) -> Result<Network, NnError> {
        match self {
            Architecture::AlexNet => alexnet(config),
            Architecture::Vgg16 => vgg16(config),
            Architecture::ResNet50 => resnet50(config),
        }
    }
}

impl std::fmt::Display for Architecture {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid() {
        assert!(ModelConfig::default().validate().is_ok());
        assert!(ModelConfig::new(100).validate().is_ok());
    }

    #[test]
    fn invalid_configs_are_rejected() {
        assert!(ModelConfig {
            num_classes: 0,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(ModelConfig::new(10).with_width(0.0).validate().is_err());
        assert!(ModelConfig::new(10).with_width(-1.0).validate().is_err());
        assert!(ModelConfig::new(10).with_dropout(1.5).validate().is_err());
    }

    #[test]
    fn scale_applies_multiplier_with_floor() {
        let cfg = ModelConfig::new(10).with_width(0.25);
        assert_eq!(cfg.scale(64), 16);
        assert_eq!(cfg.scale(8), 4); // floor at 4
        let full = ModelConfig::new(10);
        assert_eq!(full.scale(64), 64);
    }

    #[test]
    fn architecture_names_and_display() {
        assert_eq!(Architecture::AlexNet.name(), "alexnet");
        assert_eq!(Architecture::Vgg16.to_string(), "vgg16");
        assert_eq!(Architecture::ALL.len(), 3);
    }

    #[test]
    fn builders_reject_invalid_config() {
        let bad = ModelConfig {
            num_classes: 0,
            ..Default::default()
        };
        for arch in Architecture::ALL {
            assert!(arch.build(&bad).is_err());
        }
    }
}
