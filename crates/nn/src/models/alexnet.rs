//! AlexNet (CIFAR variant).

use crate::layers::{ActivationLayer, Conv2d, Dropout, Flatten, Linear, MaxPool2d, Sequential};
use crate::models::{ModelConfig, INPUT_CHANNELS, INPUT_SIZE};
use crate::{Network, NnError};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Builds the CIFAR-scale AlexNet used in the paper's evaluation.
///
/// The network follows the standard CIFAR adaptation of AlexNet: five
/// convolutional layers with ReLU activations and three max-pooling stages,
/// followed by a dropout-regularised three-layer fully-connected classifier.
///
/// # Errors
///
/// Returns [`NnError::InvalidConfig`] if the configuration is invalid.
///
/// # Example
///
/// ```
/// use fitact_nn::models::{alexnet, ModelConfig};
/// use fitact_nn::Mode;
/// use fitact_tensor::Tensor;
///
/// # fn main() -> Result<(), fitact_nn::NnError> {
/// let mut net = alexnet(&ModelConfig::new(10).with_width(0.125))?;
/// let logits = net.forward(&Tensor::zeros(&[1, 3, 32, 32]), Mode::Eval)?;
/// assert_eq!(logits.dims(), &[1, 10]);
/// # Ok(())
/// # }
/// ```
pub fn alexnet(config: &ModelConfig) -> Result<Network, NnError> {
    config.validate()?;
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut net = Sequential::new();
    let mut size = INPUT_SIZE;

    // Convolutional trunk: (out_channels, pool_after)
    let trunk: [(usize, bool); 5] = [
        (64, true),
        (192, true),
        (384, false),
        (256, false),
        (256, true),
    ];
    let mut in_ch = INPUT_CHANNELS;
    for (i, (channels, pool)) in trunk.into_iter().enumerate() {
        let out_ch = config.scale(channels);
        net.push(Box::new(Conv2d::new(in_ch, out_ch, 3, 1, 1, &mut rng)));
        net.push(Box::new(ActivationLayer::relu(
            format!("features.{i}"),
            &[out_ch, size, size],
        )));
        if pool {
            net.push(Box::new(MaxPool2d::new(2, 2)));
            size /= 2;
        }
        in_ch = out_ch;
    }

    // Classifier.
    let flat = in_ch * size * size;
    let fc1 = config.scale(1024);
    let fc2 = config.scale(512);
    net.push(Box::new(Flatten::new()));
    net.push(Box::new(Dropout::new(
        config.dropout,
        config.seed.wrapping_add(1),
    )?));
    net.push(Box::new(Linear::new(flat, fc1, &mut rng)));
    net.push(Box::new(ActivationLayer::relu("classifier.0", &[fc1])));
    net.push(Box::new(Dropout::new(
        config.dropout,
        config.seed.wrapping_add(2),
    )?));
    net.push(Box::new(Linear::new(fc1, fc2, &mut rng)));
    net.push(Box::new(ActivationLayer::relu("classifier.1", &[fc2])));
    net.push(Box::new(Linear::new(fc2, config.num_classes, &mut rng)));

    Ok(Network::new("alexnet", net))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Mode;
    use fitact_tensor::Tensor;

    fn tiny_config() -> ModelConfig {
        ModelConfig::new(10).with_width(0.0626).with_seed(1)
    }

    #[test]
    fn forward_produces_class_logits() {
        let mut net = alexnet(&tiny_config()).unwrap();
        let y = net
            .forward(&Tensor::zeros(&[2, 3, 32, 32]), Mode::Eval)
            .unwrap();
        assert_eq!(y.dims(), &[2, 10]);
        assert!(y.is_finite());
    }

    #[test]
    fn has_seven_activation_slots() {
        // 5 convolutional ReLUs + 2 classifier ReLUs.
        let mut net = alexnet(&tiny_config()).unwrap();
        assert_eq!(net.activation_slots().len(), 7);
    }

    #[test]
    fn cifar100_head_has_100_outputs() {
        let cfg = ModelConfig::new(100).with_width(0.0626);
        let mut net = alexnet(&cfg).unwrap();
        let y = net
            .forward(&Tensor::zeros(&[1, 3, 32, 32]), Mode::Eval)
            .unwrap();
        assert_eq!(y.dims(), &[1, 100]);
    }

    #[test]
    fn width_multiplier_shrinks_parameter_count() {
        let small = alexnet(&ModelConfig::new(10).with_width(0.125)).unwrap();
        let smaller = alexnet(&ModelConfig::new(10).with_width(0.0626)).unwrap();
        assert!(small.num_parameters() > smaller.num_parameters());
    }

    #[test]
    fn full_width_parameter_count_is_alexnet_scale() {
        // The CIFAR AlexNet has a handful of millions of parameters.
        let net = alexnet(&ModelConfig::new(10)).unwrap();
        let params = net.num_parameters();
        assert!(params > 3_000_000, "got {params}");
        assert!(params < 30_000_000, "got {params}");
    }

    #[test]
    fn backward_pass_runs() {
        let mut net = alexnet(&tiny_config()).unwrap();
        let x = Tensor::zeros(&[1, 3, 32, 32]);
        let y = net.forward(&x, Mode::Train).unwrap();
        let dx = net.backward(&Tensor::ones(y.dims())).unwrap();
        assert_eq!(dx.dims(), x.dims());
    }
}
