//! VGG16 with batch normalisation (CIFAR variant).

use crate::layers::{
    ActivationLayer, BatchNorm2d, Conv2d, Dropout, Flatten, Linear, MaxPool2d, Sequential,
};
use crate::models::{ModelConfig, INPUT_CHANNELS, INPUT_SIZE};
use crate::{Network, NnError};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Path prefix (under the network root) of VGG16's first convolution — the
/// "input layer" in the paper's Fig. 1 experiment.
pub const VGG16_FIRST_CONV_PREFIX: &str = "0";

/// Path prefix of VGG16's second convolution — the layer whose activation
/// bound is swept in the paper's Fig. 1 and profiled in Fig. 2.
pub const VGG16_SECOND_CONV_PREFIX: &str = "3";

/// Index (into [`crate::Network::activation_slots`]) of the activation that
/// follows VGG16's second convolution.
pub const VGG16_SECOND_ACT_SLOT: usize = 1;

/// Per-block channel configuration of VGG16; `None` marks a max-pooling stage.
const VGG16_LAYOUT: [Option<usize>; 18] = [
    Some(64),
    Some(64),
    None,
    Some(128),
    Some(128),
    None,
    Some(256),
    Some(256),
    Some(256),
    None,
    Some(512),
    Some(512),
    Some(512),
    None,
    Some(512),
    Some(512),
    Some(512),
    None,
];

/// Builds the CIFAR-scale VGG16 (with batch normalisation) used throughout the
/// paper's evaluation and in its motivating Fig. 1/Fig. 2 experiments.
///
/// Layer layout per convolutional block: `Conv2d → BatchNorm2d → ReLU`, with
/// max pooling after each of the five stages, followed by a two-layer
/// fully-connected classifier with dropout.
///
/// # Errors
///
/// Returns [`NnError::InvalidConfig`] if the configuration is invalid.
pub fn vgg16(config: &ModelConfig) -> Result<Network, NnError> {
    config.validate()?;
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut net = Sequential::new();
    let mut size = INPUT_SIZE;
    let mut in_ch = INPUT_CHANNELS;
    let mut conv_index = 0usize;

    for entry in VGG16_LAYOUT {
        match entry {
            Some(channels) => {
                let out_ch = config.scale(channels);
                net.push(Box::new(Conv2d::new(in_ch, out_ch, 3, 1, 1, &mut rng)));
                net.push(Box::new(BatchNorm2d::new(out_ch)));
                net.push(Box::new(ActivationLayer::relu(
                    format!("features.{conv_index}"),
                    &[out_ch, size, size],
                )));
                in_ch = out_ch;
                conv_index += 1;
            }
            None => {
                net.push(Box::new(MaxPool2d::new(2, 2)));
                size /= 2;
            }
        }
    }

    // After five pooling stages the 32×32 input is 1×1 spatially.
    let flat = in_ch * size * size;
    let hidden = config.scale(512);
    net.push(Box::new(Flatten::new()));
    net.push(Box::new(Linear::new(flat, hidden, &mut rng)));
    net.push(Box::new(ActivationLayer::relu("classifier.0", &[hidden])));
    net.push(Box::new(Dropout::new(
        config.dropout,
        config.seed.wrapping_add(1),
    )?));
    net.push(Box::new(Linear::new(hidden, config.num_classes, &mut rng)));

    Ok(Network::new("vgg16", net))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Mode;
    use fitact_tensor::Tensor;

    fn tiny_config() -> ModelConfig {
        ModelConfig::new(10).with_width(0.0626).with_seed(2)
    }

    #[test]
    fn forward_produces_class_logits() {
        let mut net = vgg16(&tiny_config()).unwrap();
        let y = net
            .forward(&Tensor::zeros(&[2, 3, 32, 32]), Mode::Eval)
            .unwrap();
        assert_eq!(y.dims(), &[2, 10]);
        assert!(y.is_finite());
    }

    #[test]
    fn has_fourteen_activation_slots() {
        // 13 convolutional ReLUs + 1 classifier ReLU.
        let mut net = vgg16(&tiny_config()).unwrap();
        assert_eq!(net.activation_slots().len(), 14);
    }

    #[test]
    fn second_conv_constants_point_at_convolutions() {
        let net = vgg16(&tiny_config()).unwrap();
        let info = net.param_info();
        let first: Vec<&str> = info
            .iter()
            .filter(|i| i.path.starts_with(&format!("{VGG16_FIRST_CONV_PREFIX}/")))
            .map(|i| i.path.as_str())
            .collect();
        assert_eq!(first, vec!["0/weight", "0/bias"]);
        let second: Vec<&str> = info
            .iter()
            .filter(|i| i.path.starts_with(&format!("{VGG16_SECOND_CONV_PREFIX}/")))
            .map(|i| i.path.as_str())
            .collect();
        assert_eq!(second, vec!["3/weight", "3/bias"]);
    }

    #[test]
    fn second_activation_slot_follows_second_conv() {
        let mut net = vgg16(&tiny_config()).unwrap();
        let slots = net.activation_slots();
        assert_eq!(slots[VGG16_SECOND_ACT_SLOT].label(), "features.1");
        // Its feature map is still 32×32 (before the first pooling stage).
        assert_eq!(
            &slots[VGG16_SECOND_ACT_SLOT].feature_shape()[1..],
            &[32, 32]
        );
    }

    #[test]
    fn cifar100_head_has_100_outputs() {
        let cfg = ModelConfig::new(100).with_width(0.0626);
        let mut net = vgg16(&cfg).unwrap();
        let y = net
            .forward(&Tensor::zeros(&[1, 3, 32, 32]), Mode::Eval)
            .unwrap();
        assert_eq!(y.dims(), &[1, 100]);
    }

    #[test]
    fn full_width_parameter_count_is_vgg16_scale() {
        let net = vgg16(&ModelConfig::new(10)).unwrap();
        let params = net.num_parameters();
        // CIFAR VGG16-BN is ~15M parameters.
        assert!(params > 10_000_000, "got {params}");
        assert!(params < 25_000_000, "got {params}");
    }

    #[test]
    fn backward_pass_runs_in_train_mode() {
        let mut net = vgg16(&tiny_config()).unwrap();
        let x =
            fitact_tensor::init::uniform(&[2, 3, 32, 32], -1.0, 1.0, &mut StdRng::seed_from_u64(3));
        let y = net.forward(&x, Mode::Train).unwrap();
        let dx = net.backward(&Tensor::ones(y.dims())).unwrap();
        assert_eq!(dx.dims(), x.dims());
        assert!(dx.is_finite());
    }
}
