//! Classification metrics.

use crate::NnError;
use fitact_tensor::Tensor;

/// Computes top-1 accuracy (fraction of rows whose argmax equals the target).
///
/// # Errors
///
/// Returns an error if `logits` is not `[batch, classes]` with one target per
/// row.
///
/// # Example
///
/// ```
/// use fitact_nn::metrics::accuracy;
/// use fitact_tensor::Tensor;
///
/// # fn main() -> Result<(), fitact_nn::NnError> {
/// let logits = Tensor::from_vec(vec![0.9, 0.1, 0.2, 0.8], &[2, 2])?;
/// assert_eq!(accuracy(&logits, &[0, 1])?, 1.0);
/// # Ok(())
/// # }
/// ```
pub fn accuracy(logits: &Tensor, targets: &[usize]) -> Result<f32, NnError> {
    if logits.ndim() != 2 || logits.dims()[0] != targets.len() {
        return Err(NnError::InvalidInput {
            layer: "accuracy".into(),
            expected: format!("[{}, classes] logits", targets.len()),
            actual: logits.dims().to_vec(),
        });
    }
    if targets.is_empty() {
        return Ok(0.0);
    }
    let predictions = logits.argmax_rows()?;
    let correct = predictions
        .iter()
        .zip(targets)
        .filter(|(p, t)| p == t)
        .count();
    Ok(correct as f32 / targets.len() as f32)
}

/// Running mean of a stream of scalar observations (losses, accuracies).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RunningMean {
    sum: f64,
    count: u64,
}

impl RunningMean {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        RunningMean::default()
    }

    /// Adds one observation.
    pub fn push(&mut self, value: f32) {
        self.sum += f64::from(value);
        self.count += 1;
    }

    /// Adds an observation with an integer weight (e.g. batch size).
    pub fn push_weighted(&mut self, value: f32, weight: usize) {
        self.sum += f64::from(value) * weight as f64;
        self.count += weight as u64;
    }

    /// Current mean, or 0.0 if nothing has been pushed.
    pub fn mean(&self) -> f32 {
        if self.count == 0 {
            0.0
        } else {
            (self.sum / self.count as f64) as f32
        }
    }

    /// Number of observations (weighted).
    pub fn count(&self) -> u64 {
        self.count
    }
}

/// Summary statistics of a sample of accuracies (one fault-injection campaign
/// point in paper Fig. 5 box plots).
#[derive(Debug, Clone, PartialEq)]
pub struct SampleStats {
    /// Minimum observed value.
    pub min: f32,
    /// First quartile.
    pub q1: f32,
    /// Median.
    pub median: f32,
    /// Third quartile.
    pub q3: f32,
    /// Maximum observed value.
    pub max: f32,
    /// Arithmetic mean.
    pub mean: f32,
    /// Number of observations.
    pub count: usize,
}

impl SampleStats {
    /// Computes summary statistics of a non-empty sample.
    ///
    /// Returns `None` for an empty slice.
    pub fn from_sample(values: &[f32]) -> Option<Self> {
        if values.is_empty() {
            return None;
        }
        let mut sorted = values.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let q = |p: f64| -> f32 {
            let idx = p * (sorted.len() - 1) as f64;
            let lo = idx.floor() as usize;
            let hi = idx.ceil() as usize;
            let frac = (idx - lo as f64) as f32;
            sorted[lo] * (1.0 - frac) + sorted[hi] * frac
        };
        Some(SampleStats {
            min: sorted[0],
            q1: q(0.25),
            median: q(0.5),
            q3: q(0.75),
            max: sorted[sorted.len() - 1],
            mean: sorted.iter().sum::<f32>() / sorted.len() as f32,
            count: sorted.len(),
        })
    }
}

/// A confusion matrix over `classes` labels.
///
/// Rows are true labels, columns are predictions. Useful for inspecting *what*
/// a fault-corrupted model gets wrong (in practice corrupted models collapse
/// onto one or two output classes, which shows up as dense columns here).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfusionMatrix {
    classes: usize,
    counts: Vec<u64>,
}

impl ConfusionMatrix {
    /// Creates an empty confusion matrix for `classes` labels.
    ///
    /// # Panics
    ///
    /// Panics if `classes == 0`.
    pub fn new(classes: usize) -> Self {
        assert!(classes > 0, "a confusion matrix needs at least one class");
        ConfusionMatrix {
            classes,
            counts: vec![0; classes * classes],
        }
    }

    /// Number of classes.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// Records a single `(true label, prediction)` observation.
    ///
    /// Out-of-range labels are ignored.
    pub fn record(&mut self, truth: usize, prediction: usize) {
        if truth < self.classes && prediction < self.classes {
            self.counts[truth * self.classes + prediction] += 1;
        }
    }

    /// Records a batch of logits against targets.
    ///
    /// # Errors
    ///
    /// Returns an error if `logits` is not `[batch, classes]`.
    pub fn record_batch(&mut self, logits: &Tensor, targets: &[usize]) -> Result<(), NnError> {
        if logits.ndim() != 2
            || logits.dims()[0] != targets.len()
            || logits.dims()[1] != self.classes
        {
            return Err(NnError::InvalidInput {
                layer: "confusion_matrix".into(),
                expected: format!("[{}, {}] logits", targets.len(), self.classes),
                actual: logits.dims().to_vec(),
            });
        }
        for (prediction, &truth) in logits.argmax_rows()?.into_iter().zip(targets) {
            self.record(truth, prediction);
        }
        Ok(())
    }

    /// Count of observations with true label `truth` predicted as `prediction`.
    pub fn count(&self, truth: usize, prediction: usize) -> u64 {
        self.counts[truth * self.classes + prediction]
    }

    /// Total number of recorded observations.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Overall accuracy implied by the matrix (0.0 if nothing was recorded).
    pub fn accuracy(&self) -> f32 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let correct: u64 = (0..self.classes).map(|c| self.count(c, c)).sum();
        correct as f32 / total as f32
    }

    /// Per-class recall (`None` for classes with no observations).
    pub fn recall(&self, class: usize) -> Option<f32> {
        let row: u64 = (0..self.classes).map(|p| self.count(class, p)).sum();
        if row == 0 {
            None
        } else {
            Some(self.count(class, class) as f32 / row as f32)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_counts_correct_argmax() {
        let logits = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0, 1.0, 0.0], &[3, 2]).unwrap();
        assert_eq!(accuracy(&logits, &[0, 1, 1]).unwrap(), 2.0 / 3.0);
        assert_eq!(accuracy(&logits, &[0, 1, 0]).unwrap(), 1.0);
    }

    #[test]
    fn accuracy_validates_shapes() {
        let logits = Tensor::zeros(&[2, 3]);
        assert!(accuracy(&logits, &[0]).is_err());
        assert!(accuracy(&Tensor::zeros(&[4]), &[0]).is_err());
    }

    #[test]
    fn accuracy_of_empty_batch_is_zero() {
        let logits = Tensor::zeros(&[0, 3]);
        assert_eq!(accuracy(&logits, &[]).unwrap(), 0.0);
    }

    #[test]
    fn running_mean_accumulates() {
        let mut m = RunningMean::new();
        assert_eq!(m.mean(), 0.0);
        m.push(1.0);
        m.push(3.0);
        assert_eq!(m.mean(), 2.0);
        m.push_weighted(10.0, 2);
        assert_eq!(m.count(), 4);
        assert!((m.mean() - 6.0).abs() < 1e-6);
    }

    #[test]
    fn sample_stats_quartiles() {
        let stats = SampleStats::from_sample(&[1.0, 2.0, 3.0, 4.0, 5.0]).unwrap();
        assert_eq!(stats.min, 1.0);
        assert_eq!(stats.median, 3.0);
        assert_eq!(stats.max, 5.0);
        assert_eq!(stats.q1, 2.0);
        assert_eq!(stats.q3, 4.0);
        assert_eq!(stats.mean, 3.0);
        assert_eq!(stats.count, 5);
    }

    #[test]
    fn sample_stats_single_value_and_empty() {
        let stats = SampleStats::from_sample(&[7.0]).unwrap();
        assert_eq!(stats.min, 7.0);
        assert_eq!(stats.max, 7.0);
        assert_eq!(stats.median, 7.0);
        assert!(SampleStats::from_sample(&[]).is_none());
    }

    #[test]
    fn sample_stats_unordered_input() {
        let stats = SampleStats::from_sample(&[5.0, 1.0, 3.0]).unwrap();
        assert_eq!(stats.min, 1.0);
        assert_eq!(stats.median, 3.0);
        assert_eq!(stats.max, 5.0);
    }

    #[test]
    fn confusion_matrix_records_and_summarises() {
        let mut cm = ConfusionMatrix::new(3);
        assert_eq!(cm.classes(), 3);
        cm.record(0, 0);
        cm.record(0, 1);
        cm.record(1, 1);
        cm.record(2, 2);
        assert_eq!(cm.total(), 4);
        assert_eq!(cm.count(0, 1), 1);
        assert_eq!(cm.accuracy(), 0.75);
        assert_eq!(cm.recall(0), Some(0.5));
        assert_eq!(cm.recall(1), Some(1.0));
        // Out-of-range observations are ignored, unseen classes have no recall.
        cm.record(7, 0);
        assert_eq!(cm.total(), 4);
        let empty = ConfusionMatrix::new(2);
        assert_eq!(empty.accuracy(), 0.0);
        assert_eq!(empty.recall(0), None);
    }

    #[test]
    fn confusion_matrix_record_batch_validates_shapes() {
        let mut cm = ConfusionMatrix::new(2);
        let logits = Tensor::from_vec(vec![0.9, 0.1, 0.2, 0.8], &[2, 2]).unwrap();
        cm.record_batch(&logits, &[0, 0]).unwrap();
        assert_eq!(cm.count(0, 0), 1);
        assert_eq!(cm.count(0, 1), 1);
        assert!(cm.record_batch(&logits, &[0]).is_err());
        assert!(cm.record_batch(&Tensor::zeros(&[2, 3]), &[0, 1]).is_err());
    }

    #[test]
    #[should_panic(expected = "at least one class")]
    fn zero_class_confusion_matrix_panics() {
        let _ = ConfusionMatrix::new(0);
    }
}
