//! Loss functions.

use crate::NnError;
use fitact_tensor::Tensor;

/// Softmax cross-entropy loss over class logits.
///
/// `forward` returns both the mean loss over the batch and the gradient of
/// that loss with respect to the logits, because the two are computed from the
/// same softmax and every caller needs both.
///
/// # Example
///
/// ```
/// use fitact_nn::loss::CrossEntropyLoss;
/// use fitact_tensor::Tensor;
///
/// # fn main() -> Result<(), fitact_nn::NnError> {
/// let loss = CrossEntropyLoss::new();
/// let logits = Tensor::from_vec(vec![5.0, 0.0, 0.0, 5.0], &[2, 2])?;
/// let (value, grad) = loss.forward(&logits, &[0, 1])?;
/// assert!(value < 0.1);
/// assert_eq!(grad.dims(), &[2, 2]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct CrossEntropyLoss;

impl CrossEntropyLoss {
    /// Creates the loss function.
    pub fn new() -> Self {
        CrossEntropyLoss
    }

    /// Computes the mean cross-entropy loss and its gradient w.r.t. the logits.
    ///
    /// `logits` must be `[batch, classes]` and `targets` must contain one class
    /// index per batch row.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidInput`] if shapes disagree or a target is out
    /// of range.
    pub fn forward(&self, logits: &Tensor, targets: &[usize]) -> Result<(f32, Tensor), NnError> {
        if logits.ndim() != 2 || logits.dims()[0] != targets.len() {
            return Err(NnError::InvalidInput {
                layer: "cross_entropy".into(),
                expected: format!("[{}, classes] logits", targets.len()),
                actual: logits.dims().to_vec(),
            });
        }
        let batch = logits.dims()[0];
        let classes = logits.dims()[1];
        if let Some(&bad) = targets.iter().find(|&&t| t >= classes) {
            return Err(NnError::InvalidInput {
                layer: "cross_entropy".into(),
                expected: format!("targets < {classes}"),
                actual: vec![bad],
            });
        }
        let x = logits.as_slice();
        let mut grad = Tensor::zeros(logits.dims());
        let g = grad.as_mut_slice();
        let mut total_loss = 0.0f64;
        for (n, &target) in targets.iter().enumerate() {
            let row = &x[n * classes..(n + 1) * classes];
            // Numerically stable softmax.
            let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let exp: Vec<f32> = row.iter().map(|v| (v - max).exp()).collect();
            let sum: f32 = exp.iter().sum();
            let log_sum = sum.ln() + max;
            total_loss += f64::from(log_sum - row[target]);
            let grow = &mut g[n * classes..(n + 1) * classes];
            for (c, e) in exp.iter().enumerate() {
                let p = e / sum;
                grow[c] = (p - if c == target { 1.0 } else { 0.0 }) / batch as f32;
            }
        }
        Ok(((total_loss / batch as f64) as f32, grad))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_logits_give_log_k_loss() {
        let loss = CrossEntropyLoss::new();
        let logits = Tensor::zeros(&[4, 10]);
        let (value, _) = loss.forward(&logits, &[0, 3, 5, 9]).unwrap();
        assert!((value - (10.0f32).ln()).abs() < 1e-5);
    }

    #[test]
    fn confident_correct_prediction_has_small_loss() {
        let loss = CrossEntropyLoss::new();
        let logits = Tensor::from_vec(vec![10.0, 0.0, 0.0], &[1, 3]).unwrap();
        let (value, _) = loss.forward(&logits, &[0]).unwrap();
        assert!(value < 1e-3);
    }

    #[test]
    fn confident_wrong_prediction_has_large_loss() {
        let loss = CrossEntropyLoss::new();
        let logits = Tensor::from_vec(vec![10.0, 0.0, 0.0], &[1, 3]).unwrap();
        let (value, _) = loss.forward(&logits, &[2]).unwrap();
        assert!(value > 5.0);
    }

    #[test]
    fn gradient_matches_softmax_minus_onehot() {
        let loss = CrossEntropyLoss::new();
        let logits = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[1, 3]).unwrap();
        let (_, grad) = loss.forward(&logits, &[1]).unwrap();
        let exp: Vec<f32> = [1.0f32, 2.0, 3.0].iter().map(|v| v.exp()).collect();
        let sum: f32 = exp.iter().sum();
        let expected = [exp[0] / sum, exp[1] / sum - 1.0, exp[2] / sum];
        for (g, e) in grad.as_slice().iter().zip(&expected) {
            assert!((g - e).abs() < 1e-5);
        }
    }

    #[test]
    fn gradient_rows_sum_to_zero() {
        let loss = CrossEntropyLoss::new();
        let logits = Tensor::from_vec(vec![0.5, -1.0, 2.0, 3.0, 0.0, -2.0], &[2, 3]).unwrap();
        let (_, grad) = loss.forward(&logits, &[2, 0]).unwrap();
        for row in grad.as_slice().chunks(3) {
            let s: f32 = row.iter().sum();
            assert!(s.abs() < 1e-6);
        }
    }

    #[test]
    fn numerical_gradient_check() {
        let loss = CrossEntropyLoss::new();
        let logits = Tensor::from_vec(vec![0.3, -0.7, 1.2, 0.1], &[2, 2]).unwrap();
        let targets = [1usize, 0];
        let (_, grad) = loss.forward(&logits, &targets).unwrap();
        let eps = 1e-3f32;
        for idx in 0..4 {
            let mut plus = logits.clone();
            plus.as_mut_slice()[idx] += eps;
            let mut minus = logits.clone();
            minus.as_mut_slice()[idx] -= eps;
            let (lp, _) = loss.forward(&plus, &targets).unwrap();
            let (lm, _) = loss.forward(&minus, &targets).unwrap();
            let numeric = (lp - lm) / (2.0 * eps);
            assert!((grad.as_slice()[idx] - numeric).abs() < 1e-3);
        }
    }

    #[test]
    fn rejects_bad_shapes_and_targets() {
        let loss = CrossEntropyLoss::new();
        assert!(loss.forward(&Tensor::zeros(&[2, 3]), &[0]).is_err());
        assert!(loss.forward(&Tensor::zeros(&[3]), &[0]).is_err());
        assert!(loss.forward(&Tensor::zeros(&[1, 3]), &[3]).is_err());
    }

    #[test]
    fn loss_is_stable_for_huge_logits() {
        // Fault-corrupted activations can reach ~3e4; the loss must not overflow.
        let loss = CrossEntropyLoss::new();
        let logits = Tensor::from_vec(vec![30000.0, -30000.0], &[1, 2]).unwrap();
        let (value, grad) = loss.forward(&logits, &[1]).unwrap();
        assert!(value.is_finite());
        assert!(grad.is_finite());
    }
}
