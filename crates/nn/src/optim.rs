//! Gradient-descent optimisers.
//!
//! Both stages of the FitAct workflow use the same interface: conventional
//! training typically uses [`Sgd`] with momentum; the bound post-training uses
//! [`Adam`], as in the paper ("we use the ADAM optimizer to solve it").

use crate::Parameter;
use fitact_tensor::Tensor;
use std::fmt;

/// An optimiser updates trainable parameters in place from their accumulated
/// gradients. Parameters whose [`Parameter::trainable`] flag is `false` are
/// skipped, which is how the post-training stage freezes Θ_A while learning
/// Θ_R.
pub trait Optimizer: fmt::Debug {
    /// Applies one update step to the given parameters.
    ///
    /// The slice must be presented in a stable order across calls: internal
    /// state (momentum, Adam moments) is tracked positionally.
    fn step(&mut self, params: &mut [&mut Parameter]);

    /// Clears all gradients.
    fn zero_grad(&mut self, params: &mut [&mut Parameter]) {
        for p in params.iter_mut() {
            p.zero_grad();
        }
    }

    /// The current learning rate.
    fn learning_rate(&self) -> f32;

    /// Changes the learning rate (for schedules).
    fn set_learning_rate(&mut self, lr: f32);
}

/// Stochastic gradient descent with classical momentum and optional weight
/// decay.
#[derive(Debug, Clone)]
pub struct Sgd {
    lr: f32,
    momentum: f32,
    weight_decay: f32,
    velocity: Vec<Tensor>,
}

impl Sgd {
    /// Creates plain SGD with the given learning rate.
    pub fn new(lr: f32) -> Self {
        Sgd {
            lr,
            momentum: 0.0,
            weight_decay: 0.0,
            velocity: Vec::new(),
        }
    }

    /// Creates SGD with momentum and weight decay.
    pub fn with_momentum(lr: f32, momentum: f32, weight_decay: f32) -> Self {
        Sgd {
            lr,
            momentum,
            weight_decay,
            velocity: Vec::new(),
        }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, params: &mut [&mut Parameter]) {
        if self.velocity.len() != params.len() {
            self.velocity = params
                .iter()
                .map(|p| Tensor::zeros(p.data().dims()))
                .collect();
        }
        for (i, p) in params.iter_mut().enumerate() {
            if !p.trainable() {
                continue;
            }
            let wd = self.weight_decay;
            let grad: Vec<f32> = if wd > 0.0 {
                p.grad()
                    .as_slice()
                    .iter()
                    .zip(p.data().as_slice())
                    .map(|(g, w)| g + wd * w)
                    .collect()
            } else {
                p.grad().as_slice().to_vec()
            };
            let v = self.velocity[i].as_mut_slice();
            let data = p.data_mut().as_mut_slice();
            for j in 0..data.len() {
                v[j] = self.momentum * v[j] + grad[j];
                data[j] -= self.lr * v[j];
            }
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// The Adam optimiser (Kingma & Ba, 2014), as used by the paper's
/// post-training phase.
#[derive(Debug, Clone)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    weight_decay: f32,
    t: u64,
    m: Vec<Tensor>,
    v: Vec<Tensor>,
}

impl Adam {
    /// Creates Adam with the standard hyper-parameters
    /// (`β₁ = 0.9`, `β₂ = 0.999`, `ε = 1e-8`).
    pub fn new(lr: f32) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 0.0,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }

    /// Creates Adam with explicit betas and weight decay.
    pub fn with_config(lr: f32, beta1: f32, beta2: f32, weight_decay: f32) -> Self {
        Adam {
            lr,
            beta1,
            beta2,
            eps: 1e-8,
            weight_decay,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }

    /// Number of steps taken so far.
    pub fn steps(&self) -> u64 {
        self.t
    }
}

impl Optimizer for Adam {
    fn step(&mut self, params: &mut [&mut Parameter]) {
        if self.m.len() != params.len() {
            self.m = params
                .iter()
                .map(|p| Tensor::zeros(p.data().dims()))
                .collect();
            self.v = params
                .iter()
                .map(|p| Tensor::zeros(p.data().dims()))
                .collect();
        }
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for (i, p) in params.iter_mut().enumerate() {
            if !p.trainable() {
                continue;
            }
            let wd = self.weight_decay;
            let grads: Vec<f32> = if wd > 0.0 {
                p.grad()
                    .as_slice()
                    .iter()
                    .zip(p.data().as_slice())
                    .map(|(g, w)| g + wd * w)
                    .collect()
            } else {
                p.grad().as_slice().to_vec()
            };
            let m = self.m[i].as_mut_slice();
            let v = self.v[i].as_mut_slice();
            let data = p.data_mut().as_mut_slice();
            for j in 0..data.len() {
                m[j] = self.beta1 * m[j] + (1.0 - self.beta1) * grads[j];
                v[j] = self.beta2 * v[j] + (1.0 - self.beta2) * grads[j] * grads[j];
                let m_hat = m[j] / bc1;
                let v_hat = v[j] / bc2;
                data[j] -= self.lr * m_hat / (v_hat.sqrt() + self.eps);
            }
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// RMSprop: scales each update by a running estimate of the squared gradient.
///
/// Included for completeness of the substrate (some fault-aware training
/// baselines use it); the paper itself uses SGD for stage 1 and Adam for
/// stage 2.
#[derive(Debug, Clone)]
pub struct RmsProp {
    lr: f32,
    alpha: f32,
    eps: f32,
    v: Vec<Tensor>,
}

impl RmsProp {
    /// Creates RMSprop with the standard smoothing constant `α = 0.99`.
    pub fn new(lr: f32) -> Self {
        RmsProp {
            lr,
            alpha: 0.99,
            eps: 1e-8,
            v: Vec::new(),
        }
    }

    /// Creates RMSprop with an explicit smoothing constant.
    pub fn with_alpha(lr: f32, alpha: f32) -> Self {
        RmsProp {
            lr,
            alpha,
            eps: 1e-8,
            v: Vec::new(),
        }
    }
}

impl Optimizer for RmsProp {
    fn step(&mut self, params: &mut [&mut Parameter]) {
        if self.v.len() != params.len() {
            self.v = params
                .iter()
                .map(|p| Tensor::zeros(p.data().dims()))
                .collect();
        }
        for (i, p) in params.iter_mut().enumerate() {
            if !p.trainable() {
                continue;
            }
            let grads = p.grad().as_slice().to_vec();
            let v = self.v[i].as_mut_slice();
            let data = p.data_mut().as_mut_slice();
            for j in 0..data.len() {
                v[j] = self.alpha * v[j] + (1.0 - self.alpha) * grads[j] * grads[j];
                data[j] -= self.lr * grads[j] / (v[j].sqrt() + self.eps);
            }
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quadratic_param(start: f32) -> Parameter {
        Parameter::new("x", Tensor::from_vec(vec![start], &[1]).unwrap())
    }

    /// Sets grad = 2x (gradient of x²).
    fn quadratic_grad(p: &mut Parameter) {
        let x = p.data().as_slice()[0];
        p.grad_mut().as_mut_slice()[0] = 2.0 * x;
    }

    #[test]
    fn sgd_minimises_quadratic() {
        let mut p = quadratic_param(5.0);
        let mut opt = Sgd::new(0.1);
        for _ in 0..100 {
            quadratic_grad(&mut p);
            opt.step(&mut [&mut p]);
        }
        assert!(p.data().as_slice()[0].abs() < 1e-3);
    }

    #[test]
    fn sgd_momentum_accelerates() {
        let mut plain = quadratic_param(5.0);
        let mut with_m = quadratic_param(5.0);
        let mut opt_plain = Sgd::new(0.01);
        let mut opt_m = Sgd::with_momentum(0.01, 0.9, 0.0);
        for _ in 0..50 {
            quadratic_grad(&mut plain);
            opt_plain.step(&mut [&mut plain]);
            quadratic_grad(&mut with_m);
            opt_m.step(&mut [&mut with_m]);
        }
        assert!(with_m.data().as_slice()[0].abs() < plain.data().as_slice()[0].abs());
    }

    #[test]
    fn sgd_weight_decay_shrinks_weights_without_gradient() {
        let mut p = quadratic_param(1.0);
        let mut opt = Sgd::with_momentum(0.1, 0.0, 0.5);
        // No task gradient at all: decay alone should shrink the weight.
        for _ in 0..10 {
            p.zero_grad();
            opt.step(&mut [&mut p]);
        }
        assert!(p.data().as_slice()[0] < 1.0);
        assert!(p.data().as_slice()[0] > 0.0);
    }

    #[test]
    fn adam_minimises_quadratic() {
        let mut p = quadratic_param(3.0);
        let mut opt = Adam::new(0.1);
        for _ in 0..300 {
            quadratic_grad(&mut p);
            opt.step(&mut [&mut p]);
        }
        assert!(p.data().as_slice()[0].abs() < 1e-2);
        assert_eq!(opt.steps(), 300);
    }

    #[test]
    fn frozen_parameters_are_not_updated() {
        let mut p = quadratic_param(2.0);
        p.freeze();
        let mut opt = Adam::new(0.5);
        quadratic_grad(&mut p);
        opt.step(&mut [&mut p]);
        assert_eq!(p.data().as_slice()[0], 2.0);

        let mut opt = Sgd::new(0.5);
        opt.step(&mut [&mut p]);
        assert_eq!(p.data().as_slice()[0], 2.0);
    }

    #[test]
    fn zero_grad_clears_all_params() {
        let mut a = quadratic_param(1.0);
        let mut b = quadratic_param(2.0);
        quadratic_grad(&mut a);
        quadratic_grad(&mut b);
        let mut opt = Sgd::new(0.1);
        opt.zero_grad(&mut [&mut a, &mut b]);
        assert_eq!(a.grad().sum(), 0.0);
        assert_eq!(b.grad().sum(), 0.0);
    }

    #[test]
    fn learning_rate_accessors() {
        let mut opt = Sgd::new(0.1);
        assert_eq!(opt.learning_rate(), 0.1);
        opt.set_learning_rate(0.01);
        assert_eq!(opt.learning_rate(), 0.01);
        let mut opt = Adam::new(0.001);
        opt.set_learning_rate(0.1);
        assert_eq!(opt.learning_rate(), 0.1);
    }

    #[test]
    fn rmsprop_minimises_quadratic_and_respects_freeze() {
        let mut p = quadratic_param(4.0);
        let mut opt = RmsProp::new(0.05);
        for _ in 0..400 {
            quadratic_grad(&mut p);
            opt.step(&mut [&mut p]);
        }
        assert!(p.data().as_slice()[0].abs() < 0.05);

        let mut frozen = quadratic_param(2.0);
        frozen.freeze();
        let mut opt = RmsProp::with_alpha(0.5, 0.9);
        quadratic_grad(&mut frozen);
        opt.step(&mut [&mut frozen]);
        assert_eq!(frozen.data().as_slice()[0], 2.0);
        assert_eq!(opt.learning_rate(), 0.5);
        opt.set_learning_rate(0.1);
        assert_eq!(opt.learning_rate(), 0.1);
    }

    #[test]
    fn adam_with_config_uses_weight_decay() {
        let mut p = quadratic_param(1.0);
        let mut opt = Adam::with_config(0.05, 0.9, 0.999, 0.9);
        for _ in 0..20 {
            p.zero_grad();
            opt.step(&mut [&mut p]);
        }
        assert!(p.data().as_slice()[0] < 1.0);
    }
}
