//! Serializable network-topology descriptors.
//!
//! A [`LayerSpec`] captures everything needed to *rebuild* a layer's
//! structure — layer type, configuration and child layers — without its
//! parameter values, which travel separately as flat tensors keyed by the
//! deterministic [`crate::Network::visit_params`] traversal order. The split
//! mirrors the FitAct workflow itself: topology is decided once at build
//! time, parameters change across train / calibrate / protect stages.
//!
//! Activation functions are pluggable (`Box<dyn Activation>`), so their
//! descriptor is the open-ended [`ActivationSpec`] record rather than an
//! enum: each implementation encodes its configuration into the generic
//! `kind` / `floats` / `ints` fields, and an [`ActivationBuilder`] maps the
//! record back to a concrete activation. This crate only knows the plain
//! ReLU baseline ([`BaselineActivations`]); the `fitact` core crate provides
//! a builder that additionally knows the protected activations.
//!
//! # Fidelity contract
//!
//! `LayerSpec::build` followed by restoring the saved parameter tensors must
//! reproduce a network whose [`crate::Mode::Eval`] forward pass is
//! **bit-identical** to the original's. Constructors run with placeholder
//! parameter values (they are overwritten by the restore), so any
//! configuration that affects eval-mode arithmetic — bounds, slopes, shapes,
//! strides — must round-trip exactly through the spec. `f32` configuration
//! values are therefore carried as raw bits by the artifact encoder, never
//! through decimal text.

use crate::activation::Activation;
use crate::layers::{
    ActivationLayer, BatchNorm2d, Bottleneck, Conv2d, Dropout, Flatten, GlobalAvgPool, Layer,
    Linear, MaxPool2d, Sequential,
};
use crate::{NnError, ReLU};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Open-ended descriptor of one activation function.
///
/// `kind` names the implementation (`"relu"`, `"fitrelu"`, …); `floats` and
/// `ints` carry its configuration in an implementation-defined order that
/// each [`Activation::spec`] / [`ActivationBuilder`] pair agrees on.
/// Parameter tensors (e.g. FitReLU's per-neuron λ) are *not* part of the
/// spec — they are restored through the normal parameter traversal.
#[derive(Debug, Clone, PartialEq)]
pub struct ActivationSpec {
    /// The activation implementation's name, as reported by
    /// [`Activation::name`].
    pub kind: String,
    /// Floating-point configuration values (bounds, slopes, …).
    pub floats: Vec<f32>,
    /// Integer configuration values (neuron counts, plane sizes, …).
    pub ints: Vec<u64>,
}

impl ActivationSpec {
    /// A spec with only a kind tag and no configuration payload.
    pub fn tagged(kind: impl Into<String>) -> Self {
        ActivationSpec {
            kind: kind.into(),
            floats: Vec::new(),
            ints: Vec::new(),
        }
    }

    /// Fetches `self.floats[i]`, with a typed error naming the kind.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidConfig`] if the index is out of range.
    pub fn float(&self, i: usize) -> Result<f32, NnError> {
        self.floats.get(i).copied().ok_or_else(|| {
            NnError::InvalidConfig(format!(
                "activation spec `{}` is missing float #{i}",
                self.kind
            ))
        })
    }

    /// Fetches `self.ints[i]`, with a typed error naming the kind.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidConfig`] if the index is out of range.
    pub fn int(&self, i: usize) -> Result<u64, NnError> {
        self.ints.get(i).copied().ok_or_else(|| {
            NnError::InvalidConfig(format!(
                "activation spec `{}` is missing int #{i}",
                self.kind
            ))
        })
    }
}

/// Maps an [`ActivationSpec`] back to a concrete activation.
///
/// Builders are chained by construction: the artifact loader passes the
/// builder that knows every activation kind the artifact may contain.
pub trait ActivationBuilder {
    /// Constructs the activation described by `spec`, with placeholder
    /// parameter values (the caller restores the saved tensors afterwards).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidConfig`] for an unknown kind or a malformed
    /// configuration payload.
    fn build_activation(&self, spec: &ActivationSpec) -> Result<Box<dyn Activation>, NnError>;
}

/// The builder for networks that use only the baseline [`ReLU`].
///
/// Protected models need the `fitact` core crate's builder, which handles
/// every [`crate::Activation`] implementation in this workspace.
#[derive(Debug, Clone, Copy, Default)]
pub struct BaselineActivations;

impl ActivationBuilder for BaselineActivations {
    fn build_activation(&self, spec: &ActivationSpec) -> Result<Box<dyn Activation>, NnError> {
        match spec.kind.as_str() {
            "relu" => Ok(Box::new(ReLU::new())),
            other => Err(NnError::InvalidConfig(format!(
                "unknown activation kind `{other}` (the baseline builder only knows `relu`)"
            ))),
        }
    }
}

/// Serializable description of one layer's type, configuration and children.
///
/// Variants mirror the concrete layer types of [`crate::layers`] one-to-one;
/// container variants nest recursively.
#[derive(Debug, Clone, PartialEq)]
pub enum LayerSpec {
    /// [`Linear`] — `y = x Wᵀ + b`.
    Linear {
        /// Input feature count.
        in_features: usize,
        /// Output feature count.
        out_features: usize,
    },
    /// [`Conv2d`] over `[batch, channels, h, w]`.
    Conv2d {
        /// Input channel count.
        in_channels: usize,
        /// Output channel count.
        out_channels: usize,
        /// Square kernel size.
        kernel: usize,
        /// Spatial stride.
        stride: usize,
        /// Zero padding per border.
        padding: usize,
    },
    /// [`BatchNorm2d`] with per-channel affine parameters and running stats.
    BatchNorm2d {
        /// Normalised channel count.
        channels: usize,
    },
    /// An [`ActivationLayer`] slot hosting a pluggable activation.
    Activation {
        /// The slot's diagnostic label.
        label: String,
        /// Per-sample feature shape of the slot.
        feature_shape: Vec<usize>,
        /// Descriptor of the hosted activation.
        activation: ActivationSpec,
    },
    /// [`Dropout`] (identity in eval mode).
    Dropout {
        /// Drop probability.
        p: f32,
        /// The RNG seed the layer was constructed with. Reloading restarts
        /// the mask stream from this seed; eval-mode behaviour (the identity)
        /// is unaffected.
        seed: u64,
    },
    /// [`Flatten`] of feature maps into vectors.
    Flatten,
    /// [`MaxPool2d`] over square windows.
    MaxPool2d {
        /// Square window size.
        kernel: usize,
        /// Window stride.
        stride: usize,
    },
    /// [`GlobalAvgPool`]: `[batch, c, h, w] → [batch, c]`.
    GlobalAvgPool,
    /// A [`Sequential`] container applying its children in order.
    Sequential(Vec<LayerSpec>),
    /// A ResNet [`Bottleneck`] block.
    Bottleneck {
        /// The main path's child layers.
        main: Vec<LayerSpec>,
        /// The projection shortcut's child layers, if any.
        shortcut: Option<Vec<LayerSpec>>,
        /// The final activation slot (always a [`LayerSpec::Activation`]).
        final_act: Box<LayerSpec>,
    },
}

impl LayerSpec {
    /// Rebuilds the described layer with placeholder parameter values.
    ///
    /// Weight-bearing layers are constructed from a fixed-seed RNG; callers
    /// are expected to overwrite every parameter tensor with saved values.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidConfig`] for malformed specs (unknown
    /// activation kinds, a non-activation `final_act`, invalid dropout
    /// probability).
    pub fn build(&self, activations: &dyn ActivationBuilder) -> Result<Box<dyn Layer>, NnError> {
        // Placeholder initialisation only: every parameter is overwritten by
        // the artifact loader after construction.
        let mut rng = StdRng::seed_from_u64(0);
        match self {
            LayerSpec::Linear {
                in_features,
                out_features,
            } => Ok(Box::new(Linear::new(*in_features, *out_features, &mut rng))),
            LayerSpec::Conv2d {
                in_channels,
                out_channels,
                kernel,
                stride,
                padding,
            } => Ok(Box::new(Conv2d::new(
                *in_channels,
                *out_channels,
                *kernel,
                *stride,
                *padding,
                &mut rng,
            ))),
            LayerSpec::BatchNorm2d { channels } => Ok(Box::new(BatchNorm2d::new(*channels))),
            LayerSpec::Activation { .. } => Ok(Box::new(self.build_activation_layer(activations)?)),
            LayerSpec::Dropout { p, seed } => Ok(Box::new(Dropout::new(*p, *seed)?)),
            LayerSpec::Flatten => Ok(Box::new(Flatten::new())),
            LayerSpec::MaxPool2d { kernel, stride } => {
                Ok(Box::new(MaxPool2d::new(*kernel, *stride)))
            }
            LayerSpec::GlobalAvgPool => Ok(Box::new(GlobalAvgPool::new())),
            LayerSpec::Sequential(children) => {
                Ok(Box::new(build_sequential(children, activations)?))
            }
            LayerSpec::Bottleneck {
                main,
                shortcut,
                final_act,
            } => {
                let main = build_sequential(main, activations)?;
                let shortcut = match shortcut {
                    Some(children) => Some(build_sequential(children, activations)?),
                    None => None,
                };
                let final_act = final_act.build_activation_layer(activations)?;
                Ok(Box::new(Bottleneck::from_parts(main, shortcut, final_act)))
            }
        }
    }

    /// Builds an [`ActivationLayer`] from a [`LayerSpec::Activation`] spec.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidConfig`] if `self` is a different variant or
    /// the activation kind is unknown to `activations`.
    pub fn build_activation_layer(
        &self,
        activations: &dyn ActivationBuilder,
    ) -> Result<ActivationLayer, NnError> {
        let LayerSpec::Activation {
            label,
            feature_shape,
            activation,
        } = self
        else {
            return Err(NnError::InvalidConfig(format!(
                "expected an activation-slot spec, got {self:?}"
            )));
        };
        Ok(ActivationLayer::with_activation(
            label.clone(),
            feature_shape,
            activations.build_activation(activation)?,
        ))
    }
}

/// Builds a [`Sequential`] from child specs.
fn build_sequential(
    children: &[LayerSpec],
    activations: &dyn ActivationBuilder,
) -> Result<Sequential, NnError> {
    let mut seq = Sequential::new();
    for child in children {
        seq.push(child.build(activations)?);
    }
    Ok(seq)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::Mode;
    use fitact_tensor::Tensor;

    #[test]
    fn baseline_builder_knows_only_relu() {
        let builder = BaselineActivations;
        assert!(builder
            .build_activation(&ActivationSpec::tagged("relu"))
            .is_ok());
        assert!(matches!(
            builder.build_activation(&ActivationSpec::tagged("fitrelu")),
            Err(NnError::InvalidConfig(_))
        ));
    }

    #[test]
    fn spec_payload_accessors_are_typed() {
        let spec = ActivationSpec {
            kind: "x".into(),
            floats: vec![1.5],
            ints: vec![7],
        };
        assert_eq!(spec.float(0).unwrap(), 1.5);
        assert_eq!(spec.int(0).unwrap(), 7);
        assert!(spec.float(1).is_err());
        assert!(spec.int(1).is_err());
    }

    #[test]
    fn every_leaf_spec_builds_and_roundtrips() {
        let specs = vec![
            LayerSpec::Linear {
                in_features: 3,
                out_features: 2,
            },
            LayerSpec::Conv2d {
                in_channels: 1,
                out_channels: 2,
                kernel: 3,
                stride: 1,
                padding: 1,
            },
            LayerSpec::BatchNorm2d { channels: 2 },
            LayerSpec::Activation {
                label: "h".into(),
                feature_shape: vec![4],
                activation: ActivationSpec::tagged("relu"),
            },
            LayerSpec::Dropout { p: 0.25, seed: 9 },
            LayerSpec::Flatten,
            LayerSpec::MaxPool2d {
                kernel: 2,
                stride: 2,
            },
            LayerSpec::GlobalAvgPool,
        ];
        for spec in specs {
            let layer = spec.build(&BaselineActivations).unwrap();
            assert_eq!(layer.spec().unwrap(), spec, "spec of {}", layer.name());
        }
    }

    #[test]
    fn sequential_spec_roundtrips_and_runs() {
        let spec = LayerSpec::Sequential(vec![
            LayerSpec::Linear {
                in_features: 4,
                out_features: 3,
            },
            LayerSpec::Activation {
                label: "h".into(),
                feature_shape: vec![3],
                activation: ActivationSpec::tagged("relu"),
            },
        ]);
        let mut layer = spec.build(&BaselineActivations).unwrap();
        assert_eq!(layer.spec().unwrap(), spec);
        let y = layer.forward(&Tensor::zeros(&[2, 4]), Mode::Eval).unwrap();
        assert_eq!(y.dims(), &[2, 3]);
    }

    #[test]
    fn bottleneck_final_act_must_be_an_activation_spec() {
        let bad = LayerSpec::Bottleneck {
            main: vec![],
            shortcut: None,
            final_act: Box::new(LayerSpec::Flatten),
        };
        assert!(matches!(
            bad.build(&BaselineActivations),
            Err(NnError::InvalidConfig(_))
        ));
    }

    #[test]
    fn invalid_dropout_spec_is_rejected() {
        let bad = LayerSpec::Dropout { p: 1.5, seed: 0 };
        assert!(bad.build(&BaselineActivations).is_err());
    }
}
