//! Protection-as-detection contract, pinned for every bounded activation.
//!
//! The serving-path recovery loop (crates/serve) trusts three properties of
//! `Activation::count_violations` and the `ViolationTrace` plumbing:
//!
//! 1. a clean forward records **zero** violations (negative values and
//!    exactly-at-bound values are normal activation behaviour, not faults),
//! 2. every strictly over-bound element is counted **exactly once**,
//! 3. tracing is observe-only: a traced forward is bit-identical to an
//!    untraced one.
//!
//! The corruption model used here is the paper's own: values pass through
//! the Q15.16 fixed-point word (`fitact_tensor::fixed`) and a fault flips a
//! high integer bit of the stored representation.

use fitact::{ChannelRelu, FitRelu, FitReluNaive, GbRelu, Ranger};
use fitact_nn::layers::{ActivationLayer, Layer, Mode};
use fitact_nn::trace::{self, ViolationTrace};
use fitact_nn::Activation;
use fitact_tensor::fixed::{decode_slice, encode_slice};
use fitact_tensor::Tensor;

/// One bounded activation under test, with the per-element detection
/// threshold it is configured to enforce (features per sample = 4).
fn bounded_activations() -> Vec<(&'static str, Box<dyn Activation>, Vec<f32>)> {
    vec![
        ("gbrelu", Box::new(GbRelu::new(2.0)), vec![2.0; 4]),
        ("ranger", Box::new(Ranger::new(2.0)), vec![2.0; 4]),
        (
            "fitrelu_naive",
            Box::new(FitReluNaive::from_bounds(&[1.0, 2.0, 3.0, 4.0])),
            vec![1.0, 2.0, 3.0, 4.0],
        ),
        (
            "fitrelu",
            Box::new(FitRelu::from_bounds(&[1.0, 2.0, 3.0, 4.0], 8.0)),
            vec![1.0, 2.0, 3.0, 4.0],
        ),
        (
            // Two channels of two spatial positions each: effective
            // per-element bounds [1, 1, 3, 3].
            "channel_relu",
            Box::new(ChannelRelu::from_bounds(&[1.0, 3.0], 2)),
            vec![1.0, 1.0, 3.0, 3.0],
        ),
    ]
}

/// A two-row input that is entirely clean for every table entry: positive,
/// below every bound, and (second row) *exactly at* each bound — at-bound is
/// the activation's own operating point, never a violation.
fn clean_input(bounds: &[f32]) -> Tensor {
    let mut data: Vec<f32> = bounds.iter().map(|b| b * 0.5).collect();
    data.extend_from_slice(bounds);
    Tensor::from_vec(data, &[2, 4]).unwrap()
}

#[test]
fn clean_forwards_record_zero_violations() {
    for (name, activation, bounds) in bounded_activations() {
        let input = clean_input(&bounds);
        assert_eq!(
            activation.count_violations(&input),
            0,
            "{name}: clean input (including at-bound values) must count zero"
        );
        // Negative and zero values are squashed by the activation, but they
        // are *not* violations — only over-bound values are.
        let negatives = Tensor::from_vec(vec![-100.0, -1.0, 0.0, -0.5], &[1, 4]).unwrap();
        assert_eq!(
            activation.count_violations(&negatives),
            0,
            "{name}: negative values are normal ReLU zeroing, not faults"
        );
        // NaN compares false against any bound and must never count.
        let nan = Tensor::from_vec(vec![f32::NAN, 0.5, 0.5, 0.5], &[1, 4]).unwrap();
        assert_eq!(
            activation.count_violations(&nan),
            0,
            "{name}: NaN is not counted as a bound violation"
        );
    }
}

#[test]
fn each_over_bound_element_counts_exactly_once() {
    for (name, activation, bounds) in bounded_activations() {
        // Row 1: violate elements 0 and 2; row 2: violate element 3 only.
        let data = vec![
            bounds[0] + 1.0,
            bounds[1] * 0.5,
            bounds[2] + 0.25,
            -1.0,
            bounds[0] * 0.5,
            bounds[1],
            bounds[2] * 0.5,
            bounds[3] + 100.0,
        ];
        let input = Tensor::from_vec(data, &[2, 4]).unwrap();
        assert_eq!(
            activation.count_violations(&input),
            3,
            "{name}: exactly one count per over-bound element"
        );
    }
}

#[test]
fn layer_trace_records_per_slot_counts_without_perturbing_outputs() {
    for (name, activation, bounds) in bounded_activations() {
        let mut layer = ActivationLayer::with_activation(name, &[4], activation);
        let mut data: Vec<f32> = bounds.iter().map(|b| b * 0.5).collect();
        data[2] = bounds[2] + 1.0; // one violation in row 1
        data.extend_from_slice(&bounds.iter().map(|b| b * 0.25).collect::<Vec<_>>());
        let input = Tensor::from_vec(data, &[2, 4]).unwrap();

        let untraced = layer.forward(&input, Mode::Eval).unwrap();
        let mut violation_trace = ViolationTrace::new();
        let traced =
            trace::capture(&mut violation_trace, || layer.forward(&input, Mode::Eval)).unwrap();

        let traced_bits: Vec<u32> = traced.as_slice().iter().map(|v| v.to_bits()).collect();
        let untraced_bits: Vec<u32> = untraced.as_slice().iter().map(|v| v.to_bits()).collect();
        assert_eq!(
            traced_bits, untraced_bits,
            "{name}: tracing is observe-only — outputs must be bit-identical"
        );
        let slots = violation_trace.slots();
        assert_eq!(slots.len(), 1, "{name}");
        assert_eq!(slots[0].label, name);
        assert_eq!(slots[0].violations, 1, "{name}");
        assert_eq!(slots[0].elements, 8, "{name}");
    }
}

/// The paper's fault model end-to-end: a clean activation tensor stored as
/// Q15.16 words, one word hit by a high-integer-bit flip. The bounded
/// activation must flag exactly the corrupted element — and the fault-free
/// fixed-point round trip must stay silent.
#[test]
fn fixed_point_bit_flips_are_detected_exactly() {
    for (name, activation, bounds) in bounded_activations() {
        let input = clean_input(&bounds);
        // Fault-free round trip through the storage format: quantisation
        // error alone never crosses a bound (values sit half a unit below).
        let mut words = encode_slice(input.as_slice());
        let clean_roundtrip = Tensor::from_vec(decode_slice(&words), &[2, 4]).unwrap();
        assert_eq!(
            activation.count_violations(&clean_roundtrip),
            0,
            "{name}: the fixed-point round trip alone must not trip detection"
        );
        // Flip bit 28 (weight 4096) of one stored word: the classic
        // high-magnitude corruption bounded activations exist to catch.
        words[1] = words[1].with_bit_flipped(28);
        let corrupted = Tensor::from_vec(decode_slice(&words), &[2, 4]).unwrap();
        assert_eq!(
            activation.count_violations(&corrupted),
            1,
            "{name}: exactly the corrupted element is flagged"
        );
    }
}
