//! Property tests for the FitReLU activations: the boundedness invariant that
//! stops fault propagation, gradient correctness against finite differences,
//! and bit-identity between the vectorised forward pass, the scalar reference
//! path, and the hard FitReLU-Naive clamp outside the smoothing band.

use fitact::{FitRelu, FitReluNaive};
use fitact_nn::Activation;
use fitact_tensor::Tensor;
use proptest::prelude::*;

proptest! {
    /// The batched forward output is always within `[0, λ_i + 1/k]` for each
    /// neuron's own bound — including for fault-magnitude inputs. This is the
    /// invariant the whole protection scheme rests on.
    #[test]
    fn forward_output_is_within_the_per_neuron_bound(
        x0 in -40_000.0f32..40_000.0,
        x1 in -40_000.0f32..40_000.0,
        lambda0 in 0.01f32..16.0,
        lambda1 in 0.01f32..16.0,
        slope in 1.0f32..32.0,
    ) {
        let mut act = FitRelu::from_bounds(&[lambda0, lambda1], slope);
        let input = Tensor::from_vec(vec![x0, x1, x1, x0], &[2, 2]).unwrap();
        let output = act.forward(&input).unwrap();
        let bounds = [lambda0, lambda1];
        for (i, &y) in output.as_slice().iter().enumerate() {
            let lambda = bounds[i % 2];
            prop_assert!(y >= 0.0, "neuron {} produced {y}", i % 2);
            prop_assert!(
                y <= lambda + 1.0 / slope + 1e-4,
                "neuron {} exceeded its bound: {y} > {lambda} + 1/{slope}",
                i % 2
            );
        }
    }

    /// The input gradient of the batched backward pass matches central finite
    /// differences of the forward pass (inputs kept away from the x = 0 kink).
    #[test]
    fn input_gradient_matches_finite_differences(
        x0 in 0.1f32..6.0,
        x1 in -6.0f32..-0.1,
        lambda in 0.5f32..4.0,
        slope in 2.0f32..8.0,
    ) {
        let mut act = FitRelu::from_bounds(&[lambda, lambda], slope);
        let input = Tensor::from_vec(vec![x0, x1], &[1, 2]).unwrap();
        act.forward(&input).unwrap();
        let analytic = act.backward(&Tensor::ones(&[1, 2])).unwrap();
        let eps = 1e-2f32;
        for idx in 0..2 {
            let mut plus = input.clone();
            plus.as_mut_slice()[idx] += eps;
            let mut minus = input.clone();
            minus.as_mut_slice()[idx] -= eps;
            let mut fresh = FitRelu::from_bounds(&[lambda, lambda], slope);
            let yp = fresh.forward(&plus).unwrap().sum();
            let ym = fresh.forward(&minus).unwrap().sum();
            let numeric = (yp - ym) / (2.0 * eps);
            let tolerance = 0.05f32.max(0.05 * numeric.abs());
            prop_assert!(
                (analytic.as_slice()[idx] - numeric).abs() < tolerance,
                "idx {idx}: analytic {} vs numeric {numeric} (λ={lambda}, k={slope})",
                analytic.as_slice()[idx]
            );
        }
    }

    /// The bound gradient accumulated by the backward pass matches central
    /// finite differences with respect to λ.
    #[test]
    fn lambda_gradient_matches_finite_differences(
        x in 0.1f32..6.0,
        lambda in 0.5f32..4.0,
        slope in 2.0f32..8.0,
    ) {
        let mut act = FitRelu::from_bounds(&[lambda], slope);
        let input = Tensor::from_vec(vec![x], &[1, 1]).unwrap();
        act.forward(&input).unwrap();
        act.backward(&Tensor::ones(&[1, 1])).unwrap();
        let analytic = act.params()[0].grad().as_slice()[0];
        let eps = 1e-2f32;
        let numeric = {
            let yp = FitRelu::from_bounds(&[lambda + eps], slope)
                .eval_scalar(x, 0);
            let ym = FitRelu::from_bounds(&[lambda - eps], slope)
                .eval_scalar(x, 0);
            (yp - ym) / (2.0 * eps)
        };
        let tolerance = 0.05f32.max(0.05 * numeric.abs());
        prop_assert!(
            (analytic - numeric).abs() < tolerance,
            "analytic {analytic} vs numeric {numeric} (x={x}, λ={lambda}, k={slope})"
        );
    }

    /// The vectorised `FitRelu::forward` is bit-identical to the naive
    /// per-element scalar path on random inputs — the fused tensor loop must
    /// not reassociate or approximate anything.
    #[test]
    fn batched_forward_is_bit_identical_to_the_scalar_reference(
        x0 in -100.0f32..100.0,
        x1 in -100.0f32..100.0,
        x2 in -100.0f32..100.0,
        x3 in -100.0f32..100.0,
        lambda0 in 0.01f32..16.0,
        lambda1 in 0.01f32..16.0,
        slope in 1.0f32..32.0,
    ) {
        let mut smooth = FitRelu::from_bounds(&[lambda0, lambda1], slope);
        let mut hard = FitReluNaive::from_bounds(&[lambda0, lambda1]);
        let input = Tensor::from_vec(vec![x0, x1, x2, x3], &[2, 2]).unwrap();
        let smooth_out = smooth.forward(&input).unwrap();
        let hard_out = hard.forward(&input).unwrap();
        for (i, &x) in input.as_slice().iter().enumerate() {
            prop_assert_eq!(
                smooth_out.as_slice()[i].to_bits(),
                smooth.eval_scalar(x, i % 2).to_bits(),
                "fitrelu forward diverged from eval_scalar at element {}", i
            );
            prop_assert_eq!(
                hard_out.as_slice()[i].to_bits(),
                hard.eval_scalar(x, i % 2).to_bits(),
                "fitrelu_naive forward diverged from eval_scalar at element {}", i
            );
        }
    }

    /// Outside the sigmoid transition band, `fitrelu` is bit-identical to
    /// `fitrelu_naive`: the f32 gate saturates to exactly 1.0 once
    /// `k(λ − x) ≥ 18` (so `y == x` to the last bit) and to exactly 0.0 once
    /// `k(x − λ) ≥ 104` (exp underflow, so `y == 0.0` like the hard clamp).
    /// Negative inputs are exactly 0.0 in both.
    #[test]
    fn fitrelu_is_bit_identical_to_fitrelu_naive_outside_the_band(
        x in -200.0f32..200.0,
        lambda in 0.5f32..8.0,
        slope in 4.0f32..16.0,
    ) {
        let below_band = x <= lambda - 18.0 / slope;
        let above_band = x >= lambda + 104.0 / slope;
        prop_assume!(below_band || above_band);
        let smooth = FitRelu::from_bounds(&[lambda], slope);
        let hard = FitReluNaive::from_bounds(&[lambda]);
        prop_assert_eq!(
            smooth.eval_scalar(x, 0).to_bits(),
            hard.eval_scalar(x, 0).to_bits(),
            "x={} λ={} k={}: smooth {} vs hard {}",
            x, lambda, slope, smooth.eval_scalar(x, 0), hard.eval_scalar(x, 0)
        );
    }
}
