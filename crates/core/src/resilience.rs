//! Resilience evaluation: fault-injection campaigns across fault rates.
//!
//! Two evaluation styles share the campaign engine:
//!
//! * [`evaluate_resilience`] — the paper's fixed-trial protocol: one uniform
//!   bit-flip campaign per fault rate, reporting mean accuracy,
//! * [`evaluate_resilience_until`] — the statistical protocol: one stratified
//!   campaign with confidence-interval early stopping per fault rate, for any
//!   [`FaultModel`], reporting per-stratum outcome classes and Wilson
//!   intervals.

use crate::FitActError;
use fitact_faults::{
    Campaign, CampaignConfig, CampaignReport, CampaignResult, FaultModel, StatCampaignConfig,
    TrialEngine,
};
use fitact_nn::Network;
use fitact_tensor::Tensor;

/// One point of a resilience curve: the campaign result at one fault rate.
#[derive(Debug, Clone, PartialEq)]
pub struct ResiliencePoint {
    /// Per-bit fault rate.
    pub fault_rate: f64,
    /// The fault-injection campaign outcome at that rate.
    pub result: CampaignResult,
}

impl ResiliencePoint {
    /// Mean accuracy across trials, as a percentage (the unit of the paper's
    /// plots).
    pub fn mean_accuracy_percent(&self) -> f32 {
        100.0 * self.result.mean_accuracy()
    }
}

/// Runs a fault-injection campaign at every fault rate in `rates` and returns
/// the resulting resilience curve.
///
/// The network is quantised to the Q15.16 grid implicitly by the caller (see
/// [`fitact_faults::quantize_network`]); this function leaves parameters
/// unchanged after it returns because every campaign restores them.
///
/// Campaigns run on the default checkpoint-resumed trial engine (clean layer
/// activations are cached once per rate point and each trial re-executes only
/// the faulted suffix of the network); use
/// [`evaluate_resilience_with_engine`] to force the full-forward engine —
/// the two produce bit-identical curves.
///
/// # Errors
///
/// Propagates campaign errors (empty memory map, invalid configuration,
/// evaluation failure).
pub fn evaluate_resilience(
    network: &mut Network,
    inputs: &Tensor,
    targets: &[usize],
    rates: &[f64],
    trials: usize,
    batch_size: usize,
    seed: u64,
) -> Result<Vec<ResiliencePoint>, FitActError> {
    evaluate_resilience_with_engine(
        network,
        inputs,
        targets,
        rates,
        trials,
        batch_size,
        seed,
        TrialEngine::default(),
    )
}

/// [`evaluate_resilience`] with an explicit [`TrialEngine`] (the engines are
/// bit-identical; the full-forward engine exists for verification and
/// benchmarking).
///
/// # Errors
///
/// See [`evaluate_resilience`].
#[allow(clippy::too_many_arguments)]
pub fn evaluate_resilience_with_engine(
    network: &mut Network,
    inputs: &Tensor,
    targets: &[usize],
    rates: &[f64],
    trials: usize,
    batch_size: usize,
    seed: u64,
    engine: TrialEngine,
) -> Result<Vec<ResiliencePoint>, FitActError> {
    let mut points = Vec::with_capacity(rates.len());
    for (i, &rate) in rates.iter().enumerate() {
        let mut campaign = Campaign::new(network, inputs, targets)?.with_engine(engine);
        let result = campaign.run(&CampaignConfig {
            fault_rate: rate,
            trials,
            batch_size,
            seed: seed.wrapping_add(i as u64),
        })?;
        points.push(ResiliencePoint {
            fault_rate: rate,
            result,
        });
    }
    Ok(points)
}

/// One point of an adaptive resilience curve: the statistical campaign report
/// at one fault rate.
#[derive(Debug, Clone, PartialEq)]
pub struct ResilienceReportPoint {
    /// Per-bit fault rate.
    pub fault_rate: f64,
    /// The stratified, early-stopped campaign outcome at that rate.
    pub report: CampaignReport,
}

impl ResilienceReportPoint {
    /// Point estimate of the critical-SDC rate at this fault rate, pooled
    /// over all strata.
    pub fn critical_sdc_rate(&self) -> f64 {
        self.report.pooled_critical().point()
    }
}

/// Runs a statistical campaign ([`Campaign::run_until`]) at every fault rate
/// in `rates` under the given fault model and returns the adaptive resilience
/// curve.
///
/// `base.fault_rate` is overridden per point; every other knob — strata,
/// ε, confidence, outcome threshold, trial budget — comes from `base`.
/// Campaign `i` uses seed `base.seed + i`, so curves are reproducible and
/// each point draws independent fault streams. The network is left unchanged,
/// exactly as with [`evaluate_resilience`], and trials run on the default
/// checkpoint-resumed engine ([`evaluate_resilience_until_with_engine`]
/// selects explicitly).
///
/// # Errors
///
/// Propagates campaign errors (typed configuration errors, empty memory map,
/// evaluation failure).
pub fn evaluate_resilience_until(
    network: &mut Network,
    inputs: &Tensor,
    targets: &[usize],
    rates: &[f64],
    base: &StatCampaignConfig,
    model: &dyn FaultModel,
) -> Result<Vec<ResilienceReportPoint>, FitActError> {
    evaluate_resilience_until_with_engine(
        network,
        inputs,
        targets,
        rates,
        base,
        model,
        TrialEngine::default(),
    )
}

/// [`evaluate_resilience_until`] with an explicit [`TrialEngine`].
///
/// # Errors
///
/// See [`evaluate_resilience_until`].
pub fn evaluate_resilience_until_with_engine(
    network: &mut Network,
    inputs: &Tensor,
    targets: &[usize],
    rates: &[f64],
    base: &StatCampaignConfig,
    model: &dyn FaultModel,
    engine: TrialEngine,
) -> Result<Vec<ResilienceReportPoint>, FitActError> {
    let mut points = Vec::with_capacity(rates.len());
    for (i, &rate) in rates.iter().enumerate() {
        let config = StatCampaignConfig {
            fault_rate: rate,
            seed: base.seed.wrapping_add(i as u64),
            ..base.clone()
        };
        let report = Campaign::new(network, inputs, targets)?
            .with_engine(engine)
            .run_until(&config, model)?;
        points.push(ResilienceReportPoint {
            fault_rate: rate,
            report,
        });
    }
    Ok(points)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calibration::ActivationProfiler;
    use crate::protect::{apply_protection, ProtectionScheme};
    use fitact_faults::quantize_network;
    use fitact_nn::layers::{ActivationLayer, Linear, Sequential};
    use fitact_nn::loss::CrossEntropyLoss;
    use fitact_nn::optim::Sgd;
    use fitact_tensor::init;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// A trained toy network plus its evaluation data.
    fn trained_setup() -> (Network, Tensor, Vec<usize>) {
        let mut rng = StdRng::seed_from_u64(0);
        let root = Sequential::new()
            .with(Box::new(Linear::new(2, 24, &mut rng)))
            .with(Box::new(ActivationLayer::relu("h", &[24])))
            .with(Box::new(Linear::new(24, 2, &mut rng)));
        let mut net = Network::new("mlp", root);
        let inputs = init::uniform(&[160, 2], -1.0, 1.0, &mut rng);
        let targets: Vec<usize> = (0..160)
            .map(|i| {
                let row = &inputs.as_slice()[i * 2..(i + 1) * 2];
                usize::from(row[0] > row[1])
            })
            .collect();
        let loss = CrossEntropyLoss::new();
        let mut opt = Sgd::with_momentum(0.1, 0.9, 0.0);
        for _ in 0..50 {
            net.train_batch(&inputs, &targets, &loss, &mut opt).unwrap();
        }
        quantize_network(&mut net);
        (net, inputs, targets)
    }

    #[test]
    fn resilience_curve_has_one_point_per_rate() {
        let (mut net, inputs, targets) = trained_setup();
        let rates = [0.0, 1e-3];
        let points = evaluate_resilience(&mut net, &inputs, &targets, &rates, 4, 64, 1).unwrap();
        assert_eq!(points.len(), 2);
        assert_eq!(points[0].fault_rate, 0.0);
        assert_eq!(points[0].result.accuracies.len(), 4);
        assert!(points[0].mean_accuracy_percent() >= points[1].mean_accuracy_percent());
        assert!(points[0].mean_accuracy_percent() <= 100.0);
    }

    #[test]
    fn protection_improves_resilience_at_high_fault_rates() {
        let (mut net, inputs, targets) = trained_setup();
        // Calibrate and build a protected copy.
        let profile = ActivationProfiler::new(64)
            .unwrap()
            .profile(&mut net, &inputs)
            .unwrap();
        let mut protected = net.clone();
        apply_protection(&mut protected, &profile, ProtectionScheme::ClipAct).unwrap();

        // An aggressive fault rate so the toy model sees many flips.
        let rates = [3e-3];
        let unprotected =
            evaluate_resilience(&mut net, &inputs, &targets, &rates, 12, 64, 7).unwrap();
        let clipact =
            evaluate_resilience(&mut protected, &inputs, &targets, &rates, 12, 64, 7).unwrap();
        assert!(
            clipact[0].result.mean_accuracy() >= unprotected[0].result.mean_accuracy(),
            "clipact {} should be at least unprotected {}",
            clipact[0].result.mean_accuracy(),
            unprotected[0].result.mean_accuracy()
        );
    }

    #[test]
    fn campaigns_leave_the_network_unchanged() {
        let (mut net, inputs, targets) = trained_setup();
        let before = net.snapshot();
        evaluate_resilience(&mut net, &inputs, &targets, &[1e-3, 1e-2], 3, 64, 2).unwrap();
        assert_eq!(net.snapshot(), before);
    }

    #[test]
    fn adaptive_curve_reports_one_stratified_point_per_rate() {
        use fitact_faults::TransientBitFlip;
        let (mut net, inputs, targets) = trained_setup();
        let before = net.snapshot();
        let base = StatCampaignConfig {
            batch_size: 64,
            seed: 5,
            epsilon: 0.1,
            round_trials: 4,
            min_trials: 12,
            max_trials: 48,
            ..Default::default()
        };
        let rates = [0.0, 3e-3];
        let points = evaluate_resilience_until(
            &mut net,
            &inputs,
            &targets,
            &rates,
            &base,
            &TransientBitFlip,
        )
        .unwrap();
        assert_eq!(net.snapshot(), before);
        assert_eq!(points.len(), 2);
        assert_eq!(points[0].fault_rate, 0.0);
        assert_eq!(points[0].report.strata.len(), 3);
        // Zero fault rate: nothing is ever critical.
        assert_eq!(points[0].critical_sdc_rate(), 0.0);
        assert!(points[0].report.converged);
        // The aggressive rate cannot be *less* critical than the clean run.
        assert!(points[1].critical_sdc_rate() >= points[0].critical_sdc_rate());
    }
}
