//! Parameter-memory model behind the paper's Table I overhead numbers.

use fitact_nn::Network;

/// Bytes per stored parameter word (32-bit fixed point).
pub const BYTES_PER_WORD: usize = 4;

/// A breakdown of a network's parameter memory into the base model (Θ_A plus
/// batch-norm buffers) and the activation-bound storage added by FitAct (Θ_R).
///
/// The paper's Table I reports the total model memory with plain ReLU and with
/// FitAct, and the relative overhead; this model reproduces those columns from
/// the parameter inventory of the network.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryModel {
    /// Number of scalar parameters that belong to the base model.
    pub base_words: usize,
    /// Number of scalar activation-bound parameters (λ values).
    pub bound_words: usize,
}

impl MemoryModel {
    /// Builds the memory model of a network by classifying its parameters:
    /// everything named `lambda` is bound storage, the rest is the base model.
    pub fn of_network(network: &Network) -> Self {
        let mut base_words = 0usize;
        let mut bound_words = 0usize;
        for info in network.param_info() {
            if info.path.ends_with("lambda") {
                bound_words += info.numel;
            } else {
                base_words += info.numel;
            }
        }
        MemoryModel {
            base_words,
            bound_words,
        }
    }

    /// Memory of the base model in bytes.
    pub fn base_bytes(&self) -> usize {
        self.base_words * BYTES_PER_WORD
    }

    /// Memory of the activation bounds in bytes.
    pub fn bound_bytes(&self) -> usize {
        self.bound_words * BYTES_PER_WORD
    }

    /// Total memory in bytes.
    pub fn total_bytes(&self) -> usize {
        self.base_bytes() + self.bound_bytes()
    }

    /// Total memory in megabytes (10⁶ bytes, as in the paper's Table I).
    pub fn total_mb(&self) -> f64 {
        self.total_bytes() as f64 / 1.0e6
    }

    /// Memory of the base model in megabytes.
    pub fn base_mb(&self) -> f64 {
        self.base_bytes() as f64 / 1.0e6
    }

    /// Relative memory overhead of the bounds over the base model, in percent
    /// (the "O/H" column of Table I).
    pub fn overhead_percent(&self) -> f64 {
        if self.base_words == 0 {
            0.0
        } else {
            100.0 * self.bound_bytes() as f64 / self.base_bytes() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calibration::ActivationProfiler;
    use crate::protect::{apply_protection, ProtectionScheme};
    use fitact_nn::layers::{ActivationLayer, Linear, Sequential};
    use fitact_tensor::init;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn mlp() -> Network {
        let mut rng = StdRng::seed_from_u64(0);
        Network::new(
            "mlp",
            Sequential::new()
                .with(Box::new(Linear::new(10, 20, &mut rng)))
                .with(Box::new(ActivationLayer::relu("h", &[20])))
                .with(Box::new(Linear::new(20, 5, &mut rng))),
        )
    }

    #[test]
    fn unprotected_network_has_no_bound_memory() {
        let net = mlp();
        let model = MemoryModel::of_network(&net);
        // 10*20 + 20 + 20*5 + 5 = 325 words.
        assert_eq!(model.base_words, 325);
        assert_eq!(model.bound_words, 0);
        assert_eq!(model.total_bytes(), 325 * 4);
        assert_eq!(model.overhead_percent(), 0.0);
        assert!((model.total_mb() - 325.0 * 4.0 / 1e6).abs() < 1e-12);
    }

    #[test]
    fn fitact_adds_exactly_one_word_per_neuron() {
        let mut net = mlp();
        let mut rng = StdRng::seed_from_u64(1);
        let inputs = init::uniform(&[16, 10], -1.0, 1.0, &mut rng);
        let profile = ActivationProfiler::new(8)
            .unwrap()
            .profile(&mut net, &inputs)
            .unwrap();
        apply_protection(&mut net, &profile, ProtectionScheme::FitAct { slope: 8.0 }).unwrap();
        let model = MemoryModel::of_network(&net);
        assert_eq!(model.base_words, 325);
        assert_eq!(model.bound_words, 20);
        let expected_overhead = 100.0 * 20.0 / 325.0;
        assert!((model.overhead_percent() - expected_overhead).abs() < 1e-9);
        assert!(model.total_bytes() > model.base_bytes());
        assert!(model.base_mb() < model.total_mb());
    }

    #[test]
    fn zero_base_model_reports_zero_overhead() {
        let model = MemoryModel {
            base_words: 0,
            bound_words: 10,
        };
        assert_eq!(model.overhead_percent(), 0.0);
    }
}
