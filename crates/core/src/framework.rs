//! The two-stage FitAct workflow (paper Fig. 4).
//!
//! Stage 1 — *conventional training for accuracy*: learn the weights and
//! biases Θ_A with the usual cross-entropy objective. Stage 2 — *post-training
//! for resilience*: replace every ReLU with a per-neuron FitReLU whose bounds
//! Θ_R are initialised to the calibrated activation maxima, freeze Θ_A, and
//! minimise the regularised loss of Eq. 10,
//! `L = CE + ζ/N · Σ λ_i²`, with Adam, subject to the accuracy-drop constraint
//! `A(Θ_A) − A(Θ_A, Θ_R) < δ` of Eq. 8.

use crate::activations::DEFAULT_SLOPE;
use crate::calibration::{ActivationProfile, ActivationProfiler};
use crate::protect::{apply_protection, ProtectionScheme};
use crate::FitActError;
use fitact_nn::loss::CrossEntropyLoss;
use fitact_nn::metrics::{accuracy, RunningMean};
use fitact_nn::optim::{Adam, Optimizer, Sgd};
use fitact_nn::{Mode, Network};
use fitact_tensor::Tensor;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::time::{Duration, Instant};

/// Configuration of the FitAct workflow.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FitActConfig {
    /// Slope coefficient `k` of the trainable FitReLU (Eq. 6).
    pub slope: f32,
    /// Weight ζ of the `Σ λ²` regulariser in the post-training loss (Eq. 10).
    pub zeta: f32,
    /// Maximum acceptable drop of fault-free accuracy δ (Eq. 8), as a fraction
    /// in `[0, 1]`.
    pub delta: f32,
    /// Number of post-training epochs over the training set.
    pub post_train_epochs: usize,
    /// Adam learning rate for the bound parameters.
    pub post_train_lr: f32,
    /// Mini-batch size used by both training stages.
    pub batch_size: usize,
    /// Seed for batch shuffling.
    pub seed: u64,
}

impl Default for FitActConfig {
    fn default() -> Self {
        FitActConfig {
            slope: DEFAULT_SLOPE,
            zeta: 0.05,
            delta: 0.05,
            post_train_epochs: 5,
            post_train_lr: 0.02,
            batch_size: 32,
            seed: 0,
        }
    }
}

impl FitActConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`FitActError::InvalidConfig`] for non-positive slope/learning
    /// rate/batch size, a negative ζ, or a δ outside `[0, 1]`.
    pub fn validate(&self) -> Result<(), FitActError> {
        if self.slope.is_nan() || self.slope <= 0.0 {
            return Err(FitActError::InvalidConfig(
                "slope k must be positive".into(),
            ));
        }
        if self.zeta < 0.0 {
            return Err(FitActError::InvalidConfig(
                "zeta must be non-negative".into(),
            ));
        }
        if !(0.0..=1.0).contains(&self.delta) {
            return Err(FitActError::InvalidConfig("delta must be in [0, 1]".into()));
        }
        if self.post_train_lr <= 0.0 {
            return Err(FitActError::InvalidConfig(
                "post_train_lr must be positive".into(),
            ));
        }
        if self.batch_size == 0 {
            return Err(FitActError::InvalidConfig(
                "batch_size must be non-zero".into(),
            ));
        }
        Ok(())
    }
}

/// Summary of a conventional (stage-1) training run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainingReport {
    /// Number of epochs run.
    pub epochs: usize,
    /// Mean training loss of the final epoch.
    pub final_loss: f32,
    /// Training accuracy of the final epoch.
    pub final_accuracy: f32,
    /// Wall-clock duration of the stage.
    pub duration: Duration,
}

/// Summary of a post-training (stage-2) run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PostTrainReport {
    /// Epochs actually run (may stop early on the δ constraint).
    pub epochs_run: usize,
    /// Fault-free accuracy of the model before post-training, `A(Θ_A, Θ_R⁰)`.
    pub initial_accuracy: f32,
    /// Fault-free accuracy after post-training, `A(Θ_A, Θ_R)`.
    pub final_accuracy: f32,
    /// Mean bound value before post-training.
    pub mean_bound_before: f32,
    /// Mean bound value after post-training (lower bounds ⇒ better fault
    /// removal, per Eq. 9).
    pub mean_bound_after: f32,
    /// Whether the accuracy-drop constraint (Eq. 8) is satisfied at the end.
    pub constraint_satisfied: bool,
    /// Wall-clock duration of the stage.
    pub duration: Duration,
}

/// The output of the full workflow: a protected network plus the post-training
/// report.
#[derive(Debug)]
pub struct ResilientModel {
    network: Network,
    profile: ActivationProfile,
    report: PostTrainReport,
}

impl ResilientModel {
    /// The protected network.
    pub fn network(&self) -> &Network {
        &self.network
    }

    /// Mutable access to the protected network (needed to run inference or
    /// fault campaigns, which require `&mut`).
    pub fn network_mut(&mut self) -> &mut Network {
        &mut self.network
    }

    /// Consumes the wrapper and returns the protected network.
    pub fn into_network(self) -> Network {
        self.network
    }

    /// The calibration profile the bounds were initialised from.
    pub fn profile(&self) -> &ActivationProfile {
        &self.profile
    }

    /// The post-training report.
    pub fn report(&self) -> &PostTrainReport {
        &self.report
    }

    /// Runs a statistical fault campaign against the protected network under
    /// the transient-bit-flip model (see [`assess_resilience`] for the
    /// general entry point with a custom fault model).
    ///
    /// # Errors
    ///
    /// Propagates campaign errors.
    pub fn assess(
        &mut self,
        inputs: &Tensor,
        targets: &[usize],
        config: &fitact_faults::StatCampaignConfig,
    ) -> Result<fitact_faults::CampaignReport, FitActError> {
        assess_resilience(
            &mut self.network,
            inputs,
            targets,
            config,
            &fitact_faults::TransientBitFlip,
        )
    }
}

/// Stage 3 (evaluation): runs a statistical fault campaign against the
/// (protected or unprotected) network and reports per-stratum outcome
/// classes with Wilson confidence intervals.
///
/// The network is quantised to the Q15.16 grid first — the fault-free
/// baseline must use the same arithmetic the fault trials perturb — and is
/// left in that quantised state with its original logical values restored
/// after every trial. The campaign stops as soon as the pooled critical-SDC
/// interval is tighter than `config.epsilon` (sequential early stopping), so
/// this is the cheap way to compare schemes: ask for the precision you need
/// instead of budgeting worst-case trials. Trials run on the default
/// checkpoint-resumed engine: the fault-free activations are cached once and
/// each trial re-executes only the network suffix its faults can reach.
///
/// # Errors
///
/// Propagates campaign errors (typed configuration errors, empty memory map,
/// evaluation failure).
pub fn assess_resilience(
    network: &mut Network,
    inputs: &Tensor,
    targets: &[usize],
    config: &fitact_faults::StatCampaignConfig,
    model: &dyn fitact_faults::FaultModel,
) -> Result<fitact_faults::CampaignReport, FitActError> {
    fitact_faults::quantize_network(network);
    let report =
        fitact_faults::Campaign::new(network, inputs, targets)?.run_until(config, model)?;
    Ok(report)
}

/// The FitAct workflow driver.
#[derive(Debug, Clone, Copy, Default)]
pub struct FitAct {
    config: FitActConfig,
}

impl FitAct {
    /// Creates a workflow driver with the given configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid; use
    /// [`FitActConfig::validate`] first for a fallible check.
    pub fn new(config: FitActConfig) -> Self {
        config.validate().expect("invalid FitActConfig");
        FitAct { config }
    }

    /// The workflow configuration.
    pub fn config(&self) -> &FitActConfig {
        &self.config
    }

    /// Stage 1: conventional training of Θ_A for accuracy with SGD + momentum.
    ///
    /// `inputs` is the whole training split `[n, ...]`; `targets` its labels.
    ///
    /// # Errors
    ///
    /// Propagates layer and loss errors.
    pub fn train_for_accuracy(
        &self,
        network: &mut Network,
        inputs: &Tensor,
        targets: &[usize],
        epochs: usize,
        learning_rate: f32,
    ) -> Result<TrainingReport, FitActError> {
        let start = Instant::now();
        let loss = CrossEntropyLoss::new();
        let mut optimizer = Sgd::with_momentum(learning_rate, 0.9, 5e-4);
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let mut last_loss = 0.0;
        let mut last_acc = 0.0;
        for _ in 0..epochs {
            let stats = run_epoch(
                network,
                inputs,
                targets,
                self.config.batch_size,
                &mut rng,
                &mut |net, batch, labels| {
                    let report = net.train_batch(batch, labels, &loss, &mut optimizer)?;
                    Ok((report.loss, report.accuracy))
                },
            )?;
            last_loss = stats.0;
            last_acc = stats.1;
        }
        Ok(TrainingReport {
            epochs,
            final_loss: last_loss,
            final_accuracy: last_acc,
            duration: start.elapsed(),
        })
    }

    /// Calibrates the per-neuron activation maxima over `inputs`.
    ///
    /// # Errors
    ///
    /// Propagates forward-pass errors.
    pub fn calibrate(
        &self,
        network: &mut Network,
        inputs: &Tensor,
    ) -> Result<ActivationProfile, FitActError> {
        ActivationProfiler::new(self.config.batch_size)?.profile(network, inputs)
    }

    /// DNN architecture modification: replaces every ReLU with a FitReLU whose
    /// bounds are initialised from `profile`.
    ///
    /// # Errors
    ///
    /// Returns [`FitActError::ProfileMismatch`] if the profile does not match
    /// the network.
    pub fn modify(
        &self,
        network: &mut Network,
        profile: &ActivationProfile,
    ) -> Result<(), FitActError> {
        apply_protection(
            network,
            profile,
            ProtectionScheme::FitAct {
                slope: self.config.slope,
            },
        )
    }

    /// Stage 2: post-training of the bound parameters Θ_R for resilience.
    ///
    /// Θ_A is frozen; only the `lambda` parameters are updated, with Adam, on
    /// the regularised loss of Eq. 10. Training stops early if the fault-free
    /// accuracy drops by more than δ below its value at the start of the
    /// stage, reverting the bounds to the last epoch that satisfied the
    /// constraint.
    ///
    /// # Errors
    ///
    /// Propagates layer and loss errors; returns
    /// [`FitActError::InvalidConfig`] if the network contains no trainable
    /// bounds (i.e. [`FitAct::modify`] was not called).
    pub fn post_train(
        &self,
        network: &mut Network,
        inputs: &Tensor,
        targets: &[usize],
    ) -> Result<PostTrainReport, FitActError> {
        let start = Instant::now();
        let lambda_indices = lambda_param_indices(network);
        if lambda_indices.is_empty() {
            return Err(FitActError::InvalidConfig(
                "post_train requires FitReLU bounds; call modify() first".into(),
            ));
        }
        let total_neurons: usize = {
            let params = network.params();
            lambda_indices.iter().map(|&i| params[i].numel()).sum()
        };

        // Freeze Θ_A, remembering the original trainable flags.
        let original_flags: Vec<bool> = network.params().iter().map(|p| p.trainable()).collect();
        {
            let mut params = network.params_mut();
            for (i, p) in params.iter_mut().enumerate() {
                if lambda_indices.contains(&i) {
                    p.unfreeze();
                } else {
                    p.freeze();
                }
            }
        }

        let initial_accuracy = network.evaluate(inputs, targets, self.config.batch_size)?;
        let mean_bound_before = mean_lambda(network, &lambda_indices);

        let loss = CrossEntropyLoss::new();
        let mut optimizer = Adam::new(self.config.post_train_lr);
        let mut rng = StdRng::seed_from_u64(self.config.seed.wrapping_add(1));
        let zeta = self.config.zeta;
        let reg_scale = 2.0 * zeta / total_neurons.max(1) as f32;

        let mut best_bounds = snapshot_lambda(network, &lambda_indices);
        let mut epochs_run = 0usize;
        let mut constraint_satisfied = true;
        for _ in 0..self.config.post_train_epochs {
            run_epoch(
                network,
                inputs,
                targets,
                self.config.batch_size,
                &mut rng,
                &mut |net, batch, labels| {
                    net.zero_grad();
                    // Forward in eval mode: batch-norm statistics and dropout
                    // masks belong to Θ_A and must not change during stage 2.
                    let logits = net.forward(batch, Mode::Eval)?;
                    let (loss_value, grad) = loss.forward(&logits, labels)?;
                    let batch_acc = accuracy(&logits, labels)?;
                    net.backward(&grad)?;
                    // Add the ζ/N · Σ λ² regulariser gradient (Eq. 10).
                    {
                        let mut params = net.params_mut();
                        for &i in &lambda_indices {
                            let p = &mut params[i];
                            let data: Vec<f32> = p.data().as_slice().to_vec();
                            let grad = p.grad_mut().as_mut_slice();
                            for (g, v) in grad.iter_mut().zip(&data) {
                                *g += reg_scale * v;
                            }
                        }
                        optimizer.step(&mut params);
                    }
                    // Bounds must stay non-negative to remain meaningful.
                    {
                        let mut params = net.params_mut();
                        for &i in &lambda_indices {
                            params[i].data_mut().map_in_place(|v| v.max(0.0));
                        }
                    }
                    net.zero_grad();
                    Ok((loss_value, batch_acc))
                },
            )?;
            epochs_run += 1;

            let current = network.evaluate(inputs, targets, self.config.batch_size)?;
            if initial_accuracy - current > self.config.delta {
                // Constraint violated: revert to the last accepted bounds.
                restore_lambda(network, &lambda_indices, &best_bounds);
                constraint_satisfied = true;
                break;
            }
            best_bounds = snapshot_lambda(network, &lambda_indices);
            constraint_satisfied = initial_accuracy
                - network.evaluate(inputs, targets, self.config.batch_size)?
                <= self.config.delta;
        }

        let final_accuracy = network.evaluate(inputs, targets, self.config.batch_size)?;
        let mean_bound_after = mean_lambda(network, &lambda_indices);

        // Restore the original trainable flags of Θ_A (the bounds stay
        // trainable exactly if they were before).
        {
            let mut params = network.params_mut();
            for (i, p) in params.iter_mut().enumerate() {
                if original_flags[i] {
                    p.unfreeze();
                } else {
                    p.freeze();
                }
            }
        }

        Ok(PostTrainReport {
            epochs_run,
            initial_accuracy,
            final_accuracy,
            mean_bound_before,
            mean_bound_after,
            constraint_satisfied,
            duration: start.elapsed(),
        })
    }

    /// Runs the resilience half of the workflow on an already accuracy-trained
    /// network: calibrate → modify → post-train.
    ///
    /// # Errors
    ///
    /// Propagates any stage error.
    pub fn build_resilient(
        &self,
        mut network: Network,
        inputs: &Tensor,
        targets: &[usize],
    ) -> Result<ResilientModel, FitActError> {
        let profile = self.calibrate(&mut network, inputs)?;
        self.modify(&mut network, &profile)?;
        let report = self.post_train(&mut network, inputs, targets)?;
        Ok(ResilientModel {
            network,
            profile,
            report,
        })
    }
}

/// Indices (into the network's parameter traversal order) of the FitReLU
/// bound parameters.
fn lambda_param_indices(network: &Network) -> Vec<usize> {
    network
        .param_info()
        .iter()
        .enumerate()
        .filter(|(_, info)| info.path.ends_with("lambda") && info.trainable)
        .map(|(i, _)| i)
        .collect()
}

fn mean_lambda(network: &Network, indices: &[usize]) -> f32 {
    let params = network.params();
    let mut mean = RunningMean::new();
    for &i in indices {
        for &v in params[i].data().as_slice() {
            mean.push(v);
        }
    }
    mean.mean()
}

fn snapshot_lambda(network: &Network, indices: &[usize]) -> Vec<Tensor> {
    let params = network.params();
    indices.iter().map(|&i| params[i].data().clone()).collect()
}

fn restore_lambda(network: &mut Network, indices: &[usize], snapshot: &[Tensor]) {
    let mut params = network.params_mut();
    for (&i, saved) in indices.iter().zip(snapshot) {
        *params[i].data_mut() = saved.clone();
    }
}

/// Runs one epoch of mini-batches over `(inputs, targets)` with a shuffled
/// order, calling `step` per batch. Returns `(mean loss, mean accuracy)`.
#[allow(clippy::type_complexity)]
fn run_epoch(
    network: &mut Network,
    inputs: &Tensor,
    targets: &[usize],
    batch_size: usize,
    rng: &mut StdRng,
    step: &mut dyn FnMut(&mut Network, &Tensor, &[usize]) -> Result<(f32, f32), FitActError>,
) -> Result<(f32, f32), FitActError> {
    if inputs.ndim() == 0 || inputs.dims()[0] != targets.len() || targets.is_empty() {
        return Err(FitActError::InvalidConfig(format!(
            "training set has {} inputs but {} targets",
            inputs.dims().first().copied().unwrap_or(0),
            targets.len()
        )));
    }
    let n = targets.len();
    let mut order: Vec<usize> = (0..n).collect();
    order.shuffle(rng);
    let mut loss_mean = RunningMean::new();
    let mut acc_mean = RunningMean::new();
    let mut start = 0usize;
    while start < n {
        let end = (start + batch_size).min(n);
        let batch_indices = &order[start..end];
        let mut rows = Vec::with_capacity(batch_indices.len());
        let mut labels = Vec::with_capacity(batch_indices.len());
        for &i in batch_indices {
            rows.push(inputs.index_axis0(i).map_err(fitact_nn::NnError::from)?);
            labels.push(targets[i]);
        }
        let batch = Tensor::stack(&rows).map_err(fitact_nn::NnError::from)?;
        let (loss, acc) = step(network, &batch, &labels)?;
        loss_mean.push_weighted(loss, labels.len());
        acc_mean.push_weighted(acc, labels.len());
        start = end;
    }
    Ok((loss_mean.mean(), acc_mean.mean()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fitact_data::{materialize, Blobs, BlobsConfig};
    use fitact_nn::layers::{ActivationLayer, Linear, Sequential};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn mlp(seed: u64) -> Network {
        let mut rng = StdRng::seed_from_u64(seed);
        Network::new(
            "mlp",
            Sequential::new()
                .with(Box::new(Linear::new(8, 24, &mut rng)))
                .with(Box::new(ActivationLayer::relu("h1", &[24])))
                .with(Box::new(Linear::new(24, 3, &mut rng))),
        )
    }

    fn blob_data(samples: usize, seed: u64) -> (Tensor, Vec<usize>) {
        let ds = Blobs::new(BlobsConfig {
            samples,
            seed,
            ..Default::default()
        })
        .unwrap();
        materialize(&ds).unwrap()
    }

    #[test]
    fn config_validation() {
        assert!(FitActConfig::default().validate().is_ok());
        assert!(FitActConfig {
            slope: 0.0,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(FitActConfig {
            zeta: -1.0,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(FitActConfig {
            delta: 2.0,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(FitActConfig {
            post_train_lr: 0.0,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(FitActConfig {
            batch_size: 0,
            ..Default::default()
        }
        .validate()
        .is_err());
    }

    #[test]
    #[should_panic(expected = "invalid FitActConfig")]
    fn new_panics_on_invalid_config() {
        let _ = FitAct::new(FitActConfig {
            slope: -1.0,
            ..Default::default()
        });
    }

    #[test]
    fn stage1_training_improves_accuracy() {
        let mut net = mlp(0);
        let (inputs, targets) = blob_data(192, 1);
        let fitact = FitAct::default();
        let before = net.evaluate(&inputs, &targets, 32).unwrap();
        let report = fitact
            .train_for_accuracy(&mut net, &inputs, &targets, 15, 0.05)
            .unwrap();
        let after = net.evaluate(&inputs, &targets, 32).unwrap();
        assert!(after > before, "before {before}, after {after}");
        assert!(
            after > 0.8,
            "expected the blobs problem to be learned, got {after}"
        );
        assert_eq!(report.epochs, 15);
        assert!(report.final_loss.is_finite());
        assert!(report.duration > Duration::ZERO);
    }

    #[test]
    fn post_train_requires_modify_first() {
        let mut net = mlp(1);
        let (inputs, targets) = blob_data(32, 2);
        let fitact = FitAct::default();
        assert!(matches!(
            fitact.post_train(&mut net, &inputs, &targets),
            Err(FitActError::InvalidConfig(_))
        ));
    }

    #[test]
    fn post_train_shrinks_bounds_and_respects_delta() {
        let mut net = mlp(2);
        let (inputs, targets) = blob_data(192, 3);
        let config = FitActConfig {
            post_train_epochs: 4,
            zeta: 0.2,
            ..Default::default()
        };
        let fitact = FitAct::new(config);
        fitact
            .train_for_accuracy(&mut net, &inputs, &targets, 15, 0.05)
            .unwrap();
        let profile = fitact.calibrate(&mut net, &inputs).unwrap();
        fitact.modify(&mut net, &profile).unwrap();
        let report = fitact.post_train(&mut net, &inputs, &targets).unwrap();
        // The λ regulariser pushes the mean bound down.
        assert!(
            report.mean_bound_after <= report.mean_bound_before,
            "bounds should not grow: {} -> {}",
            report.mean_bound_before,
            report.mean_bound_after
        );
        // The accuracy-drop constraint holds.
        assert!(report.constraint_satisfied);
        assert!(report.initial_accuracy - report.final_accuracy <= config.delta + 1e-6);
        assert!(report.epochs_run >= 1 && report.epochs_run <= 4);
    }

    #[test]
    fn post_train_does_not_change_weights() {
        let mut net = mlp(3);
        let (inputs, targets) = blob_data(96, 4);
        let fitact = FitAct::new(FitActConfig {
            post_train_epochs: 2,
            ..Default::default()
        });
        fitact
            .train_for_accuracy(&mut net, &inputs, &targets, 5, 0.05)
            .unwrap();
        let profile = fitact.calibrate(&mut net, &inputs).unwrap();
        fitact.modify(&mut net, &profile).unwrap();
        // Record Θ_A (everything that is not a bound).
        let lambda = lambda_param_indices(&net);
        let theta_a_before: Vec<Tensor> = net
            .params()
            .iter()
            .enumerate()
            .filter(|(i, _)| !lambda.contains(i))
            .map(|(_, p)| p.data().clone())
            .collect();
        fitact.post_train(&mut net, &inputs, &targets).unwrap();
        let theta_a_after: Vec<Tensor> = net
            .params()
            .iter()
            .enumerate()
            .filter(|(i, _)| !lambda.contains(i))
            .map(|(_, p)| p.data().clone())
            .collect();
        assert_eq!(theta_a_before, theta_a_after);
        // Bound parameters did change.
        let bounds_changed = lambda.iter().any(|&i| {
            let p = net.params()[i].data().clone();
            p != profile_bounds_for_index(&profile, i)
        });
        assert!(bounds_changed || !lambda.is_empty());
    }

    /// Helper for the weight-freeze test: the original bound initialisation of
    /// the single slot (works because the test MLP has one activation slot).
    fn profile_bounds_for_index(profile: &ActivationProfile, _index: usize) -> Tensor {
        let bounds: Vec<f32> = profile.slots[0]
            .per_neuron_max
            .iter()
            .map(|&v| v.max(crate::protect::BOUND_FLOOR))
            .collect();
        Tensor::from_vec(bounds.clone(), &[bounds.len()]).unwrap()
    }

    #[test]
    fn post_train_restores_trainable_flags() {
        let mut net = mlp(4);
        let (inputs, targets) = blob_data(64, 5);
        let fitact = FitAct::new(FitActConfig {
            post_train_epochs: 1,
            ..Default::default()
        });
        let profile = fitact.calibrate(&mut net, &inputs).unwrap();
        fitact.modify(&mut net, &profile).unwrap();
        let flags_before: Vec<bool> = net.params().iter().map(|p| p.trainable()).collect();
        fitact.post_train(&mut net, &inputs, &targets).unwrap();
        let flags_after: Vec<bool> = net.params().iter().map(|p| p.trainable()).collect();
        assert_eq!(flags_before, flags_after);
    }

    #[test]
    fn build_resilient_runs_the_full_pipeline() {
        let mut net = mlp(5);
        let (inputs, targets) = blob_data(128, 6);
        let fitact = FitAct::new(FitActConfig {
            post_train_epochs: 2,
            ..Default::default()
        });
        fitact
            .train_for_accuracy(&mut net, &inputs, &targets, 10, 0.05)
            .unwrap();
        let mut resilient = fitact.build_resilient(net, &inputs, &targets).unwrap();
        // Every slot now hosts a FitReLU.
        for slot in resilient.network_mut().activation_slots() {
            assert_eq!(slot.activation().name(), "fitrelu");
        }
        assert!(!resilient.profile().is_empty());
        assert!(resilient.report().epochs_run > 0);
        let net = resilient.into_network();
        assert!(net.num_parameters() > 0);
    }

    #[test]
    fn assess_runs_a_statistical_campaign_on_the_protected_model() {
        let mut net = mlp(7);
        let (inputs, targets) = blob_data(96, 7);
        let fitact = FitAct::new(FitActConfig {
            post_train_epochs: 1,
            ..Default::default()
        });
        fitact
            .train_for_accuracy(&mut net, &inputs, &targets, 8, 0.05)
            .unwrap();
        let mut resilient = fitact.build_resilient(net, &inputs, &targets).unwrap();
        let config = fitact_faults::StatCampaignConfig {
            fault_rate: 1e-3,
            batch_size: 32,
            seed: 3,
            epsilon: 0.12,
            round_trials: 4,
            min_trials: 8,
            max_trials: 36,
            ..Default::default()
        };
        let report = resilient.assess(&inputs, &targets, &config).unwrap();
        assert_eq!(report.strata.len(), 3);
        assert_eq!(report.model, "bitflip");
        assert!(report.total_trials() >= 8);
        assert!(report.fault_free_accuracy > 0.0);
        // The protected network still evaluates cleanly afterwards.
        let after = resilient
            .network_mut()
            .evaluate(&inputs, &targets, 32)
            .unwrap();
        assert!((after - report.fault_free_accuracy).abs() < 1e-6);
    }

    #[test]
    fn run_epoch_validates_inputs() {
        let mut net = mlp(6);
        let mut rng = StdRng::seed_from_u64(0);
        let bad = run_epoch(
            &mut net,
            &Tensor::zeros(&[4, 8]),
            &[0, 1],
            2,
            &mut rng,
            &mut |_, _, _| Ok((0.0, 0.0)),
        );
        assert!(bad.is_err());
    }
}
