//! FitAct: error-resilient DNNs via fine-grained post-trainable activation
//! functions.
//!
//! This crate implements the contribution of the DATE 2022 paper
//! *"FitAct: Error Resilient Deep Neural Networks via Fine-Grained
//! Post-Trainable Activation Functions"* (Ghavami, Sadati, Fang, Shannon) on
//! top of the [`fitact_nn`] substrate:
//!
//! * [`activations`] — the protected activation functions: the layer-wise
//!   globally bounded ReLU ([`GbRelu`], used by Clip-Act), the range-restriction
//!   variant used by Ranger ([`Ranger`]), the hard per-neuron bound
//!   ([`FitReluNaive`], paper Eq. 5) and the trainable smooth per-neuron bound
//!   ([`FitRelu`], paper Eq. 6),
//! * [`calibration`] — profiling of per-neuron / per-layer maximum activations
//!   over a calibration set (paper Fig. 2, and the bound initialisation of the
//!   FitAct workflow),
//! * [`protect`] — applying a [`ProtectionScheme`] to a trained network by
//!   swapping its activation slots,
//! * [`framework`] — the two-stage [`FitAct`] workflow (paper Fig. 4):
//!   conventional training for accuracy, then lightweight post-training of the
//!   per-neuron bounds for resilience with the regularised loss of Eq. 10,
//! * [`resilience`] — glue that runs fault-injection campaigns for each
//!   protection scheme (paper Figs. 5/6),
//! * [`memory`] — the parameter-memory model behind the Table I overhead
//!   numbers.
//!
//! # Quickstart
//!
//! ```
//! use fitact::{FitAct, FitActConfig, ProtectionScheme};
//! use fitact_data::{materialize, Blobs, BlobsConfig};
//! use fitact_nn::layers::{ActivationLayer, Linear, Sequential};
//! use fitact_nn::Network;
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // A tiny base model and dataset.
//! let mut rng = StdRng::seed_from_u64(0);
//! let root = Sequential::new()
//!     .with(Box::new(Linear::new(8, 16, &mut rng)))
//!     .with(Box::new(ActivationLayer::relu("h", &[16])))
//!     .with(Box::new(Linear::new(16, 3, &mut rng)));
//! let network = Network::new("mlp", root);
//! let data = Blobs::new(BlobsConfig { samples: 96, ..Default::default() })?;
//! let (inputs, labels) = materialize(&data)?;
//!
//! // Stage 1 + 2 of the FitAct workflow.
//! let config = FitActConfig { post_train_epochs: 2, ..Default::default() };
//! let fitact = FitAct::new(config);
//! let mut resilient = fitact.build_resilient(network, &inputs, &labels)?;
//! assert!(resilient.network_mut().forward(&inputs, fitact_nn::Mode::Eval).is_ok());
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod activations;
pub mod calibration;
pub mod framework;
pub mod memory;
pub mod protect;
pub mod resilience;
pub mod serialize;

pub use activations::{ChannelRelu, FitRelu, FitReluNaive, GbRelu, Ranger};
pub use calibration::{ActivationProfile, ActivationProfiler, SlotProfile};
pub use framework::{
    assess_resilience, FitAct, FitActConfig, PostTrainReport, ResilientModel, TrainingReport,
};
pub use memory::MemoryModel;
pub use protect::{apply_protection, ProtectionScheme};
pub use resilience::{
    evaluate_resilience, evaluate_resilience_until, evaluate_resilience_until_with_engine,
    evaluate_resilience_with_engine, ResiliencePoint, ResilienceReportPoint,
};
pub use serialize::ProtectedActivations;

use std::error::Error;
use std::fmt;

/// Errors produced by the FitAct workflow.
#[derive(Debug)]
pub enum FitActError {
    /// An underlying network operation failed.
    Nn(fitact_nn::NnError),
    /// A fault-injection operation failed.
    Fault(fitact_faults::FaultError),
    /// A dataset operation failed.
    Data(fitact_data::DataError),
    /// A configuration value was invalid.
    InvalidConfig(String),
    /// A calibration profile did not match the network it is applied to.
    ProfileMismatch(String),
}

impl fmt::Display for FitActError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FitActError::Nn(e) => write!(f, "network operation failed: {e}"),
            FitActError::Fault(e) => write!(f, "fault injection failed: {e}"),
            FitActError::Data(e) => write!(f, "dataset operation failed: {e}"),
            FitActError::InvalidConfig(msg) => write!(f, "invalid FitAct configuration: {msg}"),
            FitActError::ProfileMismatch(msg) => {
                write!(f, "activation profile does not match the network: {msg}")
            }
        }
    }
}

impl Error for FitActError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            FitActError::Nn(e) => Some(e),
            FitActError::Fault(e) => Some(e),
            FitActError::Data(e) => Some(e),
            _ => None,
        }
    }
}

impl From<fitact_nn::NnError> for FitActError {
    fn from(e: fitact_nn::NnError) -> Self {
        FitActError::Nn(e)
    }
}

impl From<fitact_faults::FaultError> for FitActError {
    fn from(e: fitact_faults::FaultError) -> Self {
        FitActError::Fault(e)
    }
}

impl From<fitact_data::DataError> for FitActError {
    fn from(e: fitact_data::DataError) -> Self {
        FitActError::Data(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_conversions_and_display() {
        let e: FitActError = fitact_nn::NnError::InvalidConfig("x".into()).into();
        assert!(e.to_string().contains("network"));
        assert!(Error::source(&e).is_some());
        let e: FitActError = fitact_faults::FaultError::EmptyMemoryMap.into();
        assert!(e.to_string().contains("fault"));
        let e: FitActError = fitact_data::DataError::InvalidConfig("y".into()).into();
        assert!(e.to_string().contains("dataset"));
        assert!(!FitActError::InvalidConfig("z".into())
            .to_string()
            .is_empty());
        assert!(!FitActError::ProfileMismatch("w".into())
            .to_string()
            .is_empty());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<FitActError>();
    }
}
