//! Range-restriction activation (Ranger).

use fitact_nn::{Activation, NnError};
use fitact_tensor::Tensor;

/// The range-restriction scheme of Ranger (Chen et al., DSN 2021): activation
/// values above the layer bound are **truncated to the bound** rather than
/// squashed to zero.
///
/// ```text
/// ξ(x) = λ   if x > λ      (truncate — the bound value still propagates)
///        x   if 0 < x ≤ λ
///        0   if x ≤ 0
/// ```
///
/// The paper observes that "Ranger truncates an output faulty value to a big
/// positive bound, which still propagates in the network", which is why it
/// provides weaker protection than Clip-Act and FitAct.
#[derive(Debug, Clone)]
pub struct Ranger {
    bound: f32,
    cached_input: Option<Tensor>,
}

impl Ranger {
    /// Creates a range-restriction activation with bound `λ`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is not finite or is negative.
    pub fn new(bound: f32) -> Self {
        assert!(
            bound.is_finite() && bound >= 0.0,
            "Ranger bound must be finite and non-negative"
        );
        Ranger {
            bound,
            cached_input: None,
        }
    }

    /// The layer-wide bound λ.
    pub fn bound(&self) -> f32 {
        self.bound
    }
}

impl Activation for Ranger {
    fn name(&self) -> &str {
        "ranger"
    }

    fn forward(&mut self, input: &Tensor) -> Result<Tensor, NnError> {
        self.cached_input = Some(input.clone());
        let mut out = input.clone();
        // Dispatching kernel; bit-identical to scalar `x.clamp(0.0, bound)`
        // in both legs (including NaN pass-through).
        fitact_tensor::simd::clamp_in_place(out.as_mut_slice(), 0.0, self.bound);
        Ok(out)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor, NnError> {
        let input = self
            .cached_input
            .as_ref()
            .ok_or_else(|| NnError::BackwardBeforeForward("ranger".into()))?;
        let bound = self.bound;
        Ok(input.zip_map(
            grad_output,
            |x, g| if x > 0.0 && x <= bound { g } else { 0.0 },
        )?)
    }

    fn eval_scalar(&self, x: f32, _neuron: usize) -> f32 {
        x.clamp(0.0, self.bound)
    }

    fn count_violations(&self, input: &Tensor) -> u64 {
        // Truncation to λ only fires for x > λ; clamping x ≤ 0 is ordinary
        // ReLU behaviour, not fault evidence.
        let bound = self.bound;
        input.as_slice().iter().filter(|&&x| x > bound).count() as u64
    }

    fn spec(&self) -> Result<fitact_nn::spec::ActivationSpec, NnError> {
        Ok(fitact_nn::spec::ActivationSpec {
            kind: "ranger".into(),
            floats: vec![self.bound],
            ints: Vec::new(),
        })
    }

    fn clone_box(&self) -> Box<dyn Activation> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_truncates_to_bound() {
        let mut act = Ranger::new(3.0);
        let x = Tensor::from_vec(vec![-1.0, 0.5, 3.0, 3.1, 100.0], &[1, 5]).unwrap();
        let y = act.forward(&x).unwrap();
        assert_eq!(y.as_slice(), &[0.0, 0.5, 3.0, 3.0, 3.0]);
        assert_eq!(act.bound(), 3.0);
        assert_eq!(act.name(), "ranger");
    }

    #[test]
    fn backward_zeroes_gradient_in_saturated_regions() {
        let mut act = Ranger::new(2.0);
        let x = Tensor::from_vec(vec![-1.0, 1.0, 5.0], &[1, 3]).unwrap();
        act.forward(&x).unwrap();
        let g = act.backward(&Tensor::ones(&[1, 3])).unwrap();
        assert_eq!(g.as_slice(), &[0.0, 1.0, 0.0]);
    }

    #[test]
    fn backward_before_forward_errors() {
        let mut act = Ranger::new(2.0);
        assert!(act.backward(&Tensor::ones(&[1, 1])).is_err());
    }

    #[test]
    fn a_fault_still_propagates_the_bound_value() {
        // The key difference from GBReLU: a corrupted huge value becomes λ,
        // which for a large λ is still a strong (wrong) signal downstream.
        let act = Ranger::new(50.0);
        assert_eq!(act.eval_scalar(30_000.0, 0), 50.0);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn nan_bound_panics() {
        let _ = Ranger::new(f32::NAN);
    }
}
