//! Hard neuron-wise bounded ReLU (FitReLU-Naive, paper Eq. 5).

use fitact_nn::{Activation, NnError, Parameter};
use fitact_tensor::Tensor;

/// The naive per-neuron bounded ReLU of paper Eq. 5:
///
/// ```text
/// ξ_i(x) = 0   if x > λ_i
///          x   if 0 < x ≤ λ_i
///          0   if x ≤ 0
/// ```
///
/// Each neuron `i` has its own bound `λ_i`. As the paper notes, the function
/// is not differentiable with respect to `λ_i`, so the bounds cannot be
/// learned through this form — that is what the smooth [`crate::FitRelu`]
/// solves. `FitReluNaive` is still useful as a *deployment* activation: after
/// post-training the learned bounds can be installed here for an exact hard
/// cutoff at inference time (see the deployment ablation in `DESIGN.md`).
#[derive(Debug, Clone)]
pub struct FitReluNaive {
    bounds: Parameter,
    cached_input: Option<Tensor>,
}

impl FitReluNaive {
    /// Creates the activation from one bound per neuron.
    ///
    /// # Panics
    ///
    /// Panics if `bounds` is empty or contains a negative/non-finite value.
    pub fn from_bounds(bounds: &[f32]) -> Self {
        assert!(
            !bounds.is_empty(),
            "FitReLU-Naive needs at least one neuron bound"
        );
        assert!(
            bounds.iter().all(|b| b.is_finite() && *b >= 0.0),
            "FitReLU-Naive bounds must be finite and non-negative"
        );
        let tensor = Tensor::from_vec(bounds.to_vec(), &[bounds.len()])
            .expect("bounds vector matches its own length");
        let mut param = Parameter::new("lambda", tensor);
        // Not trainable: Eq. 5 has no usable gradient with respect to λ.
        param.freeze();
        FitReluNaive {
            bounds: param,
            cached_input: None,
        }
    }

    /// Number of neurons covered by this activation.
    pub fn num_neurons(&self) -> usize {
        self.bounds.numel()
    }

    /// The per-neuron bounds.
    pub fn bounds(&self) -> &[f32] {
        self.bounds.data().as_slice()
    }

    fn check_input(&self, input: &Tensor) -> Result<usize, NnError> {
        let neurons = self.num_neurons();
        if input.ndim() < 2
            || !input.numel().is_multiple_of(neurons)
            || input.dims()[1..].iter().product::<usize>() != neurons
        {
            return Err(NnError::InvalidInput {
                layer: "fitrelu_naive".into(),
                expected: format!("[batch, ...] with {neurons} features per sample"),
                actual: input.dims().to_vec(),
            });
        }
        Ok(neurons)
    }
}

impl Activation for FitReluNaive {
    fn name(&self) -> &str {
        "fitrelu_naive"
    }

    fn forward(&mut self, input: &Tensor) -> Result<Tensor, NnError> {
        let neurons = self.check_input(input)?;
        self.cached_input = Some(input.clone());
        let bounds = &self.bounds.data().as_slice()[..neurons];
        let mut out = input.clone();
        // Dispatching per-neuron kernel; bit-identical to the scalar
        // `if x > 0 && x <= λ_i { x } else { 0 }` in both legs.
        fitact_tensor::simd::bounded_relu_per_neuron(out.as_mut_slice(), bounds);
        Ok(out)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor, NnError> {
        let input = self
            .cached_input
            .as_ref()
            .ok_or_else(|| NnError::BackwardBeforeForward("fitrelu_naive".into()))?;
        let neurons = self.num_neurons();
        let bounds = self.bounds.data().as_slice();
        let mut grad = grad_output.clone();
        if grad.numel() != input.numel() {
            return Err(NnError::InvalidInput {
                layer: "fitrelu_naive".into(),
                expected: format!("gradient with {} elements", input.numel()),
                actual: grad_output.dims().to_vec(),
            });
        }
        let x = input.as_slice();
        for (i, g) in grad.as_mut_slice().iter_mut().enumerate() {
            let lambda = bounds[i % neurons];
            if !(x[i] > 0.0 && x[i] <= lambda) {
                *g = 0.0;
            }
        }
        Ok(grad)
    }

    fn eval_scalar(&self, x: f32, neuron: usize) -> f32 {
        let lambda = self.bounds.data().as_slice()[neuron % self.num_neurons()];
        if x > 0.0 && x <= lambda {
            x
        } else {
            0.0
        }
    }

    fn count_violations(&self, input: &Tensor) -> u64 {
        let neurons = self.num_neurons();
        let bounds = self.bounds.data().as_slice();
        input
            .as_slice()
            .iter()
            .enumerate()
            .filter(|&(i, &x)| x > bounds[i % neurons])
            .count() as u64
    }

    fn params(&self) -> Vec<&Parameter> {
        vec![&self.bounds]
    }

    fn params_mut(&mut self) -> Vec<&mut Parameter> {
        vec![&mut self.bounds]
    }

    fn spec(&self) -> Result<fitact_nn::spec::ActivationSpec, NnError> {
        Ok(fitact_nn::spec::ActivationSpec {
            kind: "fitrelu_naive".into(),
            floats: Vec::new(),
            ints: vec![self.num_neurons() as u64],
        })
    }

    fn clone_box(&self) -> Box<dyn Activation> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_neuron_bounds_are_independent() {
        let mut act = FitReluNaive::from_bounds(&[1.0, 10.0]);
        let x = Tensor::from_vec(vec![5.0, 5.0], &[1, 2]).unwrap();
        let y = act.forward(&x).unwrap();
        // Neuron 0 (bound 1) squashes 5.0; neuron 1 (bound 10) keeps it.
        assert_eq!(y.as_slice(), &[0.0, 5.0]);
        assert_eq!(act.num_neurons(), 2);
        assert_eq!(act.bounds(), &[1.0, 10.0]);
    }

    #[test]
    fn batched_input_reuses_bounds_per_sample() {
        let mut act = FitReluNaive::from_bounds(&[1.0, 10.0]);
        let x = Tensor::from_vec(vec![0.5, 20.0, 2.0, 2.0], &[2, 2]).unwrap();
        let y = act.forward(&x).unwrap();
        assert_eq!(y.as_slice(), &[0.5, 0.0, 0.0, 2.0]);
    }

    #[test]
    fn backward_masks_like_forward() {
        let mut act = FitReluNaive::from_bounds(&[1.0, 10.0]);
        let x = Tensor::from_vec(vec![0.5, 20.0, -1.0, 2.0], &[2, 2]).unwrap();
        act.forward(&x).unwrap();
        let g = act.backward(&Tensor::ones(&[2, 2])).unwrap();
        assert_eq!(g.as_slice(), &[1.0, 0.0, 0.0, 1.0]);
    }

    #[test]
    fn bounds_are_frozen_parameters() {
        let act = FitReluNaive::from_bounds(&[1.0]);
        let params = act.params();
        assert_eq!(params.len(), 1);
        assert_eq!(params[0].name(), "lambda");
        assert!(!params[0].trainable());
    }

    #[test]
    fn rejects_mismatched_inputs_and_premature_backward() {
        let mut act = FitReluNaive::from_bounds(&[1.0, 1.0, 1.0]);
        assert!(act.forward(&Tensor::zeros(&[1, 2])).is_err());
        assert!(act.backward(&Tensor::zeros(&[1, 3])).is_err());
    }

    #[test]
    #[should_panic(expected = "at least one neuron bound")]
    fn empty_bounds_panics() {
        let _ = FitReluNaive::from_bounds(&[]);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn negative_bound_panics() {
        let _ = FitReluNaive::from_bounds(&[-0.5]);
    }

    #[test]
    fn eval_scalar_uses_the_selected_neuron() {
        let act = FitReluNaive::from_bounds(&[1.0, 100.0]);
        assert_eq!(act.eval_scalar(50.0, 0), 0.0);
        assert_eq!(act.eval_scalar(50.0, 1), 50.0);
    }

    #[test]
    fn multidimensional_feature_shapes_work() {
        // A [2, 1, 2, 2] conv feature map with 4 neurons (1×2×2).
        let mut act = FitReluNaive::from_bounds(&[1.0, 1.0, 1.0, 5.0]);
        let x =
            Tensor::from_vec(vec![2.0, 2.0, 2.0, 2.0, 0.5, 0.5, 0.5, 0.5], &[2, 1, 2, 2]).unwrap();
        let y = act.forward(&x).unwrap();
        assert_eq!(y.as_slice(), &[0.0, 0.0, 0.0, 2.0, 0.5, 0.5, 0.5, 0.5]);
    }
}
