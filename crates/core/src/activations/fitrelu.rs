//! Trainable neuron-wise bounded ReLU (FitReLU, paper Eq. 6).

use fitact_nn::{Activation, NnError, Parameter};
use fitact_tensor::Tensor;

/// The trainable fine-grained bounded ReLU of paper Eq. 6.
///
/// Each neuron `i` has its own post-trainable bound `λ_i`; a sigmoid gate with
/// slope coefficient `k` makes the bound differentiable so the λ values can be
/// learned in the FitAct post-training stage:
///
/// ```text
/// ξ_i(x) = max(0, x · σ(k (λ_i − x)))
/// ```
///
/// which behaves like ReLU for `0 < x ≪ λ_i` and smoothly squashes values
/// above the bound to zero (see the paper's Fig. 3).
///
/// ### Note on the sign convention
///
/// Equation 6 of the paper is printed as `max(0, x − x / (1 + e^{k(x−λ_i)}))`,
/// which algebraically equals `max(0, x · σ(k(x−λ_i)))` and — for a positive
/// `k` — would *pass* large values and *suppress* small ones, the opposite of
/// the behaviour shown in the paper's Fig. 3. The behaviour in Fig. 3 (and the
/// whole point of the function) corresponds to a negative `k` in that formula;
/// this implementation uses the equivalent form `x · σ(k(λ_i − x))` with a
/// positive `k`, which matches Fig. 3 exactly. The discrepancy is documented in
/// `DESIGN.md`.
///
/// # Example
///
/// ```
/// use fitact::FitRelu;
/// use fitact_nn::Activation;
///
/// let act = FitRelu::from_bounds(&[2.0], 8.0);
/// assert!(act.eval_scalar(1.0, 0) > 0.99);     // well below the bound: ≈ identity
/// assert!(act.eval_scalar(10.0, 0) < 1e-3);    // far above the bound: ≈ 0
/// assert_eq!(act.eval_scalar(-1.0, 0), 0.0);   // negative: exactly 0
/// ```
#[derive(Debug, Clone)]
pub struct FitRelu {
    bounds: Parameter,
    slope: f32,
    cached_input: Option<Tensor>,
}

impl FitRelu {
    /// Creates the activation from one bound per neuron and a slope
    /// coefficient `k`.
    ///
    /// # Panics
    ///
    /// Panics if `bounds` is empty, contains a negative or non-finite value,
    /// or `slope` is not strictly positive.
    pub fn from_bounds(bounds: &[f32], slope: f32) -> Self {
        assert!(
            !bounds.is_empty(),
            "FitReLU needs at least one neuron bound"
        );
        assert!(
            bounds.iter().all(|b| b.is_finite() && *b >= 0.0),
            "FitReLU bounds must be finite and non-negative"
        );
        assert!(
            slope > 0.0 && slope.is_finite(),
            "FitReLU slope k must be positive and finite"
        );
        let tensor = Tensor::from_vec(bounds.to_vec(), &[bounds.len()])
            .expect("bounds vector matches its own length");
        FitRelu {
            bounds: Parameter::new("lambda", tensor),
            slope,
            cached_input: None,
        }
    }

    /// Number of neurons covered by this activation.
    pub fn num_neurons(&self) -> usize {
        self.bounds.numel()
    }

    /// The slope coefficient `k`.
    pub fn slope(&self) -> f32 {
        self.slope
    }

    /// The per-neuron bounds λ.
    pub fn bounds(&self) -> &[f32] {
        self.bounds.data().as_slice()
    }

    /// Mutable access to the bound parameter (used by the post-training stage
    /// and by tests).
    pub fn bounds_param_mut(&mut self) -> &mut Parameter {
        &mut self.bounds
    }

    fn check_input(&self, input: &Tensor) -> Result<usize, NnError> {
        let neurons = self.num_neurons();
        if input.ndim() < 2 || input.dims()[1..].iter().product::<usize>() != neurons {
            return Err(NnError::InvalidInput {
                layer: "fitrelu".into(),
                expected: format!("[batch, ...] with {neurons} features per sample"),
                actual: input.dims().to_vec(),
            });
        }
        Ok(neurons)
    }

    #[inline]
    fn gate(&self, x: f32, lambda: f32) -> f32 {
        sigmoid(self.slope * (lambda - x))
    }
}

#[inline]
fn sigmoid(z: f32) -> f32 {
    if z >= 0.0 {
        1.0 / (1.0 + (-z).exp())
    } else {
        let e = z.exp();
        e / (1.0 + e)
    }
}

impl Activation for FitRelu {
    fn name(&self) -> &str {
        "fitrelu"
    }

    fn forward(&mut self, input: &Tensor) -> Result<Tensor, NnError> {
        let neurons = self.check_input(input)?;
        self.cached_input = Some(input.clone());
        let bounds = self.bounds.data().as_slice();
        let mut out = input.clone();
        for (i, v) in out.as_mut_slice().iter_mut().enumerate() {
            let lambda = bounds[i % neurons];
            let inner = *v * self.gate(*v, lambda);
            *v = inner.max(0.0);
        }
        Ok(out)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor, NnError> {
        let input = self
            .cached_input
            .as_ref()
            .ok_or_else(|| NnError::BackwardBeforeForward("fitrelu".into()))?;
        if grad_output.numel() != input.numel() {
            return Err(NnError::InvalidInput {
                layer: "fitrelu".into(),
                expected: format!("gradient with {} elements", input.numel()),
                actual: grad_output.dims().to_vec(),
            });
        }
        let neurons = self.num_neurons();
        let k = self.slope;
        let bounds = self.bounds.data().as_slice().to_vec();
        let x = input.as_slice();
        let g = grad_output.as_slice();
        let mut grad_input = Tensor::zeros(input.dims());
        let gi = grad_input.as_mut_slice();
        let grad_lambda = self.bounds.grad_mut().as_mut_slice();
        for i in 0..x.len() {
            let neuron = i % neurons;
            let lambda = bounds[neuron];
            let xi = x[i];
            // y = max(0, x·σ(k(λ−x))); the inner product is positive iff x > 0.
            if xi <= 0.0 {
                continue;
            }
            let s = sigmoid(k * (lambda - xi));
            let ds = s * (1.0 - s);
            // ∂y/∂x = σ + x · σ' · (−k) = s − k·x·s(1−s)
            gi[i] = g[i] * (s - k * xi * ds);
            // ∂y/∂λ = x · σ' · k = k·x·s(1−s)
            grad_lambda[neuron] += g[i] * k * xi * ds;
        }
        Ok(grad_input)
    }

    fn eval_scalar(&self, x: f32, neuron: usize) -> f32 {
        let lambda = self.bounds.data().as_slice()[neuron % self.num_neurons()];
        (x * self.gate(x, lambda)).max(0.0)
    }

    fn count_violations(&self, input: &Tensor) -> u64 {
        // λ_i is the detection threshold: the sigmoid gate starts squashing
        // at the bound, so x > λ_i is the smooth analogue of a hard clamp.
        let neurons = self.num_neurons();
        let bounds = self.bounds.data().as_slice();
        input
            .as_slice()
            .iter()
            .enumerate()
            .filter(|&(i, &x)| x > bounds[i % neurons])
            .count() as u64
    }

    fn params(&self) -> Vec<&Parameter> {
        vec![&self.bounds]
    }

    fn params_mut(&mut self) -> Vec<&mut Parameter> {
        vec![&mut self.bounds]
    }

    fn spec(&self) -> Result<fitact_nn::spec::ActivationSpec, NnError> {
        // The per-neuron bounds restore through the `lambda` parameter
        // tensor; the spec carries the slope and the neuron count.
        Ok(fitact_nn::spec::ActivationSpec {
            kind: "fitrelu".into(),
            floats: vec![self.slope],
            ints: vec![self.num_neurons() as u64],
        })
    }

    fn clone_box(&self) -> Box<dyn Activation> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn behaves_like_relu_below_the_bound() {
        let act = FitRelu::from_bounds(&[10.0], 8.0);
        for x in [0.1f32, 0.5, 1.0, 3.0, 7.0] {
            let y = act.eval_scalar(x, 0);
            assert!((y - x).abs() < 0.02, "x = {x}, y = {y}");
        }
    }

    #[test]
    fn suppresses_values_above_the_bound() {
        let act = FitRelu::from_bounds(&[2.0], 8.0);
        assert!(act.eval_scalar(4.0, 0) < 0.01);
        assert!(act.eval_scalar(30_000.0, 0) == 0.0 || act.eval_scalar(30_000.0, 0) < 1e-6);
    }

    #[test]
    fn negative_inputs_are_zero() {
        let act = FitRelu::from_bounds(&[2.0], 8.0);
        assert_eq!(act.eval_scalar(-0.5, 0), 0.0);
        assert_eq!(act.eval_scalar(-100.0, 0), 0.0);
    }

    #[test]
    fn forward_applies_per_neuron_bounds() {
        let mut act = FitRelu::from_bounds(&[1.0, 100.0], 8.0);
        let x = Tensor::from_vec(vec![5.0, 5.0], &[1, 2]).unwrap();
        let y = act.forward(&x).unwrap();
        assert!(y.as_slice()[0] < 0.01); // bound 1 squashes 5
        assert!((y.as_slice()[1] - 5.0).abs() < 0.01); // bound 100 keeps 5
    }

    #[test]
    fn gradient_check_input_and_lambda() {
        let mut act = FitRelu::from_bounds(&[2.0, 3.0], 4.0);
        let x = Tensor::from_vec(vec![1.5, 2.5, 0.5, 3.5], &[2, 2]).unwrap();
        act.forward(&x).unwrap();
        let g = Tensor::ones(&[2, 2]);
        let grad_x = act.backward(&g).unwrap();
        let analytic_lambda = act.bounds.grad().clone();

        let eps = 1e-3f32;
        // Input gradient check.
        for idx in 0..4 {
            let mut plus = x.clone();
            plus.as_mut_slice()[idx] += eps;
            let mut minus = x.clone();
            minus.as_mut_slice()[idx] -= eps;
            let mut fresh = FitRelu::from_bounds(&[2.0, 3.0], 4.0);
            let yp = fresh.forward(&plus).unwrap().sum();
            let ym = fresh.forward(&minus).unwrap().sum();
            let numeric = (yp - ym) / (2.0 * eps);
            assert!(
                (grad_x.as_slice()[idx] - numeric).abs() < 1e-2,
                "x grad idx {idx}: {} vs {numeric}",
                grad_x.as_slice()[idx]
            );
        }
        // Lambda gradient check.
        for neuron in 0..2 {
            let mut bounds_plus = vec![2.0, 3.0];
            bounds_plus[neuron] += eps;
            let mut bounds_minus = vec![2.0, 3.0];
            bounds_minus[neuron] -= eps;
            let yp = FitRelu::from_bounds(&bounds_plus, 4.0)
                .forward(&x)
                .unwrap()
                .sum();
            let ym = FitRelu::from_bounds(&bounds_minus, 4.0)
                .forward(&x)
                .unwrap()
                .sum();
            let numeric = (yp - ym) / (2.0 * eps);
            assert!(
                (analytic_lambda.as_slice()[neuron] - numeric).abs() < 1e-2,
                "lambda grad neuron {neuron}: {} vs {numeric}",
                analytic_lambda.as_slice()[neuron]
            );
        }
    }

    #[test]
    fn lambda_gradient_accumulates_over_batch() {
        let mut act = FitRelu::from_bounds(&[2.0], 4.0);
        let x = Tensor::from_vec(vec![1.9, 1.9, 1.9], &[3, 1]).unwrap();
        act.forward(&x).unwrap();
        act.backward(&Tensor::ones(&[3, 1])).unwrap();
        let single = {
            let mut a = FitRelu::from_bounds(&[2.0], 4.0);
            a.forward(&Tensor::from_vec(vec![1.9], &[1, 1]).unwrap())
                .unwrap();
            a.backward(&Tensor::ones(&[1, 1])).unwrap();
            a.bounds.grad().as_slice()[0]
        };
        assert!((act.bounds.grad().as_slice()[0] - 3.0 * single).abs() < 1e-5);
    }

    #[test]
    fn bounds_parameter_is_trainable() {
        let act = FitRelu::from_bounds(&[1.0, 2.0], 8.0);
        assert_eq!(act.params().len(), 1);
        assert!(act.params()[0].trainable());
        assert_eq!(act.params()[0].name(), "lambda");
        assert_eq!(act.num_neurons(), 2);
        assert_eq!(act.slope(), 8.0);
        assert_eq!(act.bounds(), &[1.0, 2.0]);
    }

    #[test]
    fn rejects_bad_inputs() {
        let mut act = FitRelu::from_bounds(&[1.0, 2.0, 3.0], 8.0);
        assert!(act.forward(&Tensor::zeros(&[2, 2])).is_err());
        assert!(act.backward(&Tensor::zeros(&[1, 3])).is_err());
    }

    #[test]
    #[should_panic(expected = "slope k must be positive")]
    fn zero_slope_panics() {
        let _ = FitRelu::from_bounds(&[1.0], 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one neuron bound")]
    fn empty_bounds_panics() {
        let _ = FitRelu::from_bounds(&[], 8.0);
    }

    #[test]
    fn larger_slope_gives_sharper_cutoff() {
        let soft = FitRelu::from_bounds(&[2.0], 2.0);
        let sharp = FitRelu::from_bounds(&[2.0], 32.0);
        // Just above the bound the sharp variant suppresses harder.
        assert!(sharp.eval_scalar(2.5, 0) < soft.eval_scalar(2.5, 0));
        // Just below the bound the sharp variant preserves the value better.
        assert!(sharp.eval_scalar(1.8, 0) > soft.eval_scalar(1.8, 0));
    }

    proptest! {
        /// FitReLU output is always bounded: it never exceeds the neuron's
        /// bound by more than a small smoothing margin, and never goes
        /// negative. This is the invariant that stops fault propagation.
        #[test]
        fn output_is_bounded(x in -50_000.0f32..50_000.0, lambda in 0.01f32..16.0) {
            let act = FitRelu::from_bounds(&[lambda], 8.0);
            let y = act.eval_scalar(x, 0);
            prop_assert!(y >= 0.0);
            // The maximum of x·σ(k(λ−x)) over x is attained near λ and is below
            // λ + 1/k.
            prop_assert!(y <= lambda + 1.0 / 8.0 + 1e-4, "x={x} λ={lambda} y={y}");
        }

        /// The smooth FitReLU never deviates from the hard FitReLU-Naive by
        /// more than the transition-band width around the bound.
        #[test]
        fn close_to_hard_clamp_away_from_the_bound(x in -10.0f32..40.0, lambda in 1.0f32..8.0) {
            let k = 8.0f32;
            let smooth = FitRelu::from_bounds(&[lambda], k);
            let hard = |x: f32| if x > 0.0 && x <= lambda { x } else { 0.0 };
            // Outside a band of ±1 around λ the two agree closely (the band
            // scales like 1/k · ln(...) but ±1 is a comfortable envelope for k=8).
            if (x - lambda).abs() > 1.0 {
                prop_assert!((smooth.eval_scalar(x, 0) - hard(x)).abs() < 0.1,
                    "x={x} λ={lambda}");
            }
        }
    }
}
