//! Channel-wise bounded ReLU (an intermediate granularity between GBReLU and
//! FitReLU, used by the bound-granularity ablation).

use fitact_nn::{Activation, NnError, Parameter};
use fitact_tensor::Tensor;

/// A bounded ReLU with one bound per *channel* of a convolutional feature map.
///
/// This granularity sits between the paper's two extremes — one bound per
/// layer (GBReLU / Clip-Act) and one bound per neuron (FitReLU) — and is the
/// natural ablation point: it costs `C` extra words per layer instead of
/// `C·H·W`, but cannot adapt to the spatial variation of activation maxima.
/// Out-of-range values are squashed to zero, as in Clip-Act.
#[derive(Debug, Clone)]
pub struct ChannelRelu {
    bounds: Parameter,
    /// Number of spatial positions per channel (`H·W`; 1 for dense layers).
    plane: usize,
    cached_input: Option<Tensor>,
}

impl ChannelRelu {
    /// Creates the activation from one bound per channel and the number of
    /// spatial positions per channel.
    ///
    /// # Panics
    ///
    /// Panics if `bounds` is empty, `plane == 0`, or any bound is negative or
    /// non-finite.
    pub fn from_bounds(bounds: &[f32], plane: usize) -> Self {
        assert!(
            !bounds.is_empty(),
            "ChannelReLU needs at least one channel bound"
        );
        assert!(plane > 0, "ChannelReLU plane size must be non-zero");
        assert!(
            bounds.iter().all(|b| b.is_finite() && *b >= 0.0),
            "ChannelReLU bounds must be finite and non-negative"
        );
        let tensor = Tensor::from_vec(bounds.to_vec(), &[bounds.len()])
            .expect("bounds vector matches its own length");
        let mut param = Parameter::new("lambda", tensor);
        param.freeze();
        ChannelRelu {
            bounds: param,
            plane,
            cached_input: None,
        }
    }

    /// Number of channels covered by this activation.
    pub fn num_channels(&self) -> usize {
        self.bounds.numel()
    }

    /// Features per sample (`channels × plane`).
    pub fn features(&self) -> usize {
        self.num_channels() * self.plane
    }

    #[inline]
    fn bound_of(&self, feature_index: usize) -> f32 {
        let channel = (feature_index / self.plane) % self.num_channels();
        self.bounds.data().as_slice()[channel]
    }
}

impl Activation for ChannelRelu {
    fn name(&self) -> &str {
        "channel_relu"
    }

    fn forward(&mut self, input: &Tensor) -> Result<Tensor, NnError> {
        let features = self.features();
        if input.ndim() < 2 || input.dims()[1..].iter().product::<usize>() != features {
            return Err(NnError::InvalidInput {
                layer: "channel_relu".into(),
                expected: format!("[batch, ...] with {features} features per sample"),
                actual: input.dims().to_vec(),
            });
        }
        self.cached_input = Some(input.clone());
        let mut out = input.clone();
        // Each contiguous plane of `H·W` values shares one channel bound, so
        // the uniform-bound dispatching kernel applies per plane; bit-identical
        // to the scalar `if x > 0 && x <= bound { x } else { 0 }` in both legs.
        let bounds = self.bounds.data().as_slice();
        let channels = bounds.len();
        for (i, chunk) in out.as_mut_slice().chunks_mut(self.plane).enumerate() {
            fitact_tensor::simd::bounded_relu_uniform(chunk, bounds[i % channels]);
        }
        Ok(out)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor, NnError> {
        let input = self
            .cached_input
            .as_ref()
            .ok_or_else(|| NnError::BackwardBeforeForward("channel_relu".into()))?;
        if grad_output.numel() != input.numel() {
            return Err(NnError::InvalidInput {
                layer: "channel_relu".into(),
                expected: format!("gradient with {} elements", input.numel()),
                actual: grad_output.dims().to_vec(),
            });
        }
        let features = self.features();
        let x = input.as_slice();
        let mut grad = grad_output.clone();
        for (i, g) in grad.as_mut_slice().iter_mut().enumerate() {
            let bound = self.bound_of(i % features);
            if !(x[i] > 0.0 && x[i] <= bound) {
                *g = 0.0;
            }
        }
        Ok(grad)
    }

    fn eval_scalar(&self, x: f32, neuron: usize) -> f32 {
        let bound = self.bound_of(neuron % self.features());
        if x > 0.0 && x <= bound {
            x
        } else {
            0.0
        }
    }

    fn count_violations(&self, input: &Tensor) -> u64 {
        let features = self.features();
        input
            .as_slice()
            .iter()
            .enumerate()
            .filter(|&(i, &x)| x > self.bound_of(i % features))
            .count() as u64
    }

    fn params(&self) -> Vec<&Parameter> {
        vec![&self.bounds]
    }

    fn params_mut(&mut self) -> Vec<&mut Parameter> {
        vec![&mut self.bounds]
    }

    fn spec(&self) -> Result<fitact_nn::spec::ActivationSpec, NnError> {
        // Bounds restore through the `lambda` parameter tensor; the spec only
        // needs the shape of the mapping.
        Ok(fitact_nn::spec::ActivationSpec {
            kind: "channel_relu".into(),
            floats: Vec::new(),
            ints: vec![self.num_channels() as u64, self.plane as u64],
        })
    }

    fn clone_box(&self) -> Box<dyn Activation> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_channel_bounds_cover_their_planes() {
        // 2 channels × 2 spatial positions; channel 0 bound 1, channel 1 bound 10.
        let mut act = ChannelRelu::from_bounds(&[1.0, 10.0], 2);
        assert_eq!(act.num_channels(), 2);
        assert_eq!(act.features(), 4);
        let x = Tensor::from_vec(vec![5.0, 0.5, 5.0, 0.5], &[1, 2, 2, 1]).unwrap();
        let y = act.forward(&x).unwrap();
        // Channel 0 squashes 5.0; channel 1 keeps it.
        assert_eq!(y.as_slice(), &[0.0, 0.5, 5.0, 0.5]);
    }

    #[test]
    fn backward_masks_like_forward() {
        let mut act = ChannelRelu::from_bounds(&[1.0, 10.0], 1);
        let x = Tensor::from_vec(vec![5.0, 5.0, -1.0, 0.5], &[2, 2]).unwrap();
        act.forward(&x).unwrap();
        let g = act.backward(&Tensor::ones(&[2, 2])).unwrap();
        assert_eq!(g.as_slice(), &[0.0, 1.0, 0.0, 1.0]);
    }

    #[test]
    fn rejects_bad_inputs_and_premature_backward() {
        let mut act = ChannelRelu::from_bounds(&[1.0], 4);
        assert!(act.forward(&Tensor::zeros(&[1, 3])).is_err());
        assert!(act.backward(&Tensor::zeros(&[1, 4])).is_err());
    }

    #[test]
    #[should_panic(expected = "plane size must be non-zero")]
    fn zero_plane_panics() {
        let _ = ChannelRelu::from_bounds(&[1.0], 0);
    }

    #[test]
    fn eval_scalar_respects_channel_of_the_neuron() {
        let act = ChannelRelu::from_bounds(&[1.0, 100.0], 3);
        assert_eq!(act.eval_scalar(50.0, 0), 0.0); // channel 0
        assert_eq!(act.eval_scalar(50.0, 3), 50.0); // channel 1
    }

    #[test]
    fn bounds_parameter_is_a_frozen_lambda() {
        let act = ChannelRelu::from_bounds(&[1.0, 2.0], 2);
        assert_eq!(act.params().len(), 1);
        assert_eq!(act.params()[0].name(), "lambda");
        assert!(!act.params()[0].trainable());
    }
}
