//! Globally bounded ReLU (Clip-Act).

use fitact_nn::{Activation, NnError};
use fitact_tensor::Tensor;

/// The layer-wise globally bounded ReLU of paper Eq. 4, as used by
/// Clip-Act (Hoang et al., DATE 2020).
///
/// ```text
/// ξ(x) = 0   if x > λ      (squash suspicious values to zero)
///        x   if 0 < x ≤ λ
///        0   if x ≤ 0
/// ```
///
/// A single bound `λ` is shared by every neuron in the layer — the coarse
/// granularity whose limitation motivates FitAct.
///
/// # Example
///
/// ```
/// use fitact::GbRelu;
/// use fitact_nn::Activation;
///
/// let act = GbRelu::new(4.0);
/// assert_eq!(act.eval_scalar(2.0, 0), 2.0);
/// assert_eq!(act.eval_scalar(5.0, 0), 0.0);
/// assert_eq!(act.eval_scalar(-1.0, 0), 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct GbRelu {
    bound: f32,
    cached_input: Option<Tensor>,
}

impl GbRelu {
    /// Creates a globally bounded ReLU with bound `λ`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is not finite or is negative.
    pub fn new(bound: f32) -> Self {
        assert!(
            bound.is_finite() && bound >= 0.0,
            "GBReLU bound must be finite and non-negative"
        );
        GbRelu {
            bound,
            cached_input: None,
        }
    }

    /// The layer-wide bound λ.
    pub fn bound(&self) -> f32 {
        self.bound
    }
}

impl Activation for GbRelu {
    fn name(&self) -> &str {
        "gbrelu"
    }

    fn forward(&mut self, input: &Tensor) -> Result<Tensor, NnError> {
        self.cached_input = Some(input.clone());
        let mut out = input.clone();
        // Dispatching kernel; bit-identical to the scalar
        // `if x > 0 && x <= bound { x } else { 0 }` in both legs.
        fitact_tensor::simd::bounded_relu_uniform(out.as_mut_slice(), self.bound);
        Ok(out)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor, NnError> {
        let input = self
            .cached_input
            .as_ref()
            .ok_or_else(|| NnError::BackwardBeforeForward("gbrelu".into()))?;
        let bound = self.bound;
        Ok(input.zip_map(
            grad_output,
            |x, g| if x > 0.0 && x <= bound { g } else { 0.0 },
        )?)
    }

    fn eval_scalar(&self, x: f32, _neuron: usize) -> f32 {
        if x > 0.0 && x <= self.bound {
            x
        } else {
            0.0
        }
    }

    fn count_violations(&self, input: &Tensor) -> u64 {
        // Only over-bound values are fault evidence; x ≤ 0 is ordinary ReLU
        // zeroing. NaN comparisons are false, so NaN never counts here.
        let bound = self.bound;
        input.as_slice().iter().filter(|&&x| x > bound).count() as u64
    }

    fn spec(&self) -> Result<fitact_nn::spec::ActivationSpec, NnError> {
        Ok(fitact_nn::spec::ActivationSpec {
            kind: "gbrelu".into(),
            floats: vec![self.bound],
            ints: Vec::new(),
        })
    }

    fn clone_box(&self) -> Box<dyn Activation> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_squashes_above_bound() {
        let mut act = GbRelu::new(3.0);
        let x = Tensor::from_vec(vec![-1.0, 0.5, 3.0, 3.1, 100.0], &[1, 5]).unwrap();
        let y = act.forward(&x).unwrap();
        assert_eq!(y.as_slice(), &[0.0, 0.5, 3.0, 0.0, 0.0]);
        assert_eq!(act.bound(), 3.0);
        assert_eq!(act.name(), "gbrelu");
    }

    #[test]
    fn backward_masks_out_of_range_inputs() {
        let mut act = GbRelu::new(2.0);
        let x = Tensor::from_vec(vec![-1.0, 1.0, 5.0], &[1, 3]).unwrap();
        act.forward(&x).unwrap();
        let g = act.backward(&Tensor::ones(&[1, 3])).unwrap();
        assert_eq!(g.as_slice(), &[0.0, 1.0, 0.0]);
    }

    #[test]
    fn backward_before_forward_errors() {
        let mut act = GbRelu::new(2.0);
        assert!(act.backward(&Tensor::ones(&[1, 1])).is_err());
    }

    #[test]
    fn clone_box_preserves_bound() {
        let act: Box<dyn Activation> = Box::new(GbRelu::new(1.5));
        let copy = act.clone();
        assert_eq!(copy.eval_scalar(1.4, 0), 1.4);
        assert_eq!(copy.eval_scalar(1.6, 0), 0.0);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn negative_bound_panics() {
        let _ = GbRelu::new(-1.0);
    }

    #[test]
    fn zero_bound_squashes_everything() {
        let act = GbRelu::new(0.0);
        assert_eq!(act.eval_scalar(0.1, 0), 0.0);
        assert_eq!(act.eval_scalar(-0.1, 0), 0.0);
    }
}
