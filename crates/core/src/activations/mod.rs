//! Protected activation functions.
//!
//! All four bounded activations studied in the paper are implemented against
//! the [`fitact_nn::Activation`] trait so they can be dropped into any
//! [`fitact_nn::layers::ActivationLayer`] slot of a trained network:
//!
//! | Type | Paper | Bound granularity | Out-of-bound behaviour |
//! |---|---|---|---|
//! | [`GbRelu`] | Eq. 4, Clip-Act \[18\] | one λ per layer | squash to zero |
//! | [`Ranger`] | Ranger \[16\] | one λ per layer | truncate to λ |
//! | [`FitReluNaive`] | Eq. 5 | one λ per neuron | squash to zero |
//! | [`FitRelu`] | Eq. 6 | one λ per neuron (trainable) | smooth squash to zero |

mod channel_relu;
mod fitrelu;
mod fitrelu_naive;
mod gbrelu;
mod ranger;

pub use channel_relu::ChannelRelu;
pub use fitrelu::FitRelu;
pub use fitrelu_naive::FitReluNaive;
pub use gbrelu::GbRelu;
pub use ranger::Ranger;

/// Default slope coefficient `k` of the trainable FitReLU (paper Eq. 6 leaves
/// it "empirically computed"; this value gives a near-hard cutoff while still
/// providing useful gradients for bounds of order 1–10).
pub const DEFAULT_SLOPE: f32 = 8.0;

#[cfg(test)]
mod tests {
    use super::*;
    use fitact_nn::Activation;

    /// All bounded activations agree with plain ReLU well below their bound
    /// and suppress values far above it — the common contract the paper relies
    /// on.
    #[test]
    fn bounded_activations_share_the_basic_contract() {
        let bound = 2.0f32;
        let acts: Vec<Box<dyn Activation>> = vec![
            Box::new(GbRelu::new(bound)),
            Box::new(Ranger::new(bound)),
            Box::new(FitReluNaive::from_bounds(&[bound, bound])),
            Box::new(FitRelu::from_bounds(&[bound, bound], DEFAULT_SLOPE)),
        ];
        for act in acts {
            // Negative inputs are zeroed.
            assert_eq!(act.eval_scalar(-3.0, 0), 0.0, "{}", act.name());
            // Small positive inputs pass (approximately, for the smooth one).
            let small = act.eval_scalar(0.5, 0);
            assert!((small - 0.5).abs() < 0.05, "{}: {small}", act.name());
            // A fault-sized value (far above the bound) is controlled: it never
            // exceeds the bound itself.
            let huge = act.eval_scalar(20_000.0, 0);
            assert!(huge <= bound + 1e-3, "{}: {huge}", act.name());
        }
    }

    /// Only Ranger lets the bound value itself through (it truncates instead
    /// of squashing) — this is exactly why the paper finds it weaker.
    #[test]
    fn ranger_truncates_while_others_squash() {
        let bound = 2.0f32;
        assert_eq!(Ranger::new(bound).eval_scalar(10.0, 0), bound);
        assert_eq!(GbRelu::new(bound).eval_scalar(10.0, 0), 0.0);
        assert_eq!(
            FitReluNaive::from_bounds(&[bound]).eval_scalar(10.0, 0),
            0.0
        );
        assert!(FitRelu::from_bounds(&[bound], DEFAULT_SLOPE).eval_scalar(10.0, 0) < 0.01);
    }
}
