//! Activation profiling: per-neuron and per-layer maximum activation values.
//!
//! Both the baselines and FitAct need to know how large each activation
//! normally gets: Clip-Act and Ranger use the *layer* maximum as their global
//! bound, FitAct initialises each λ_i to the *neuron* maximum (paper §V,
//! "initialize the bound parameters Θ_R for each neuron to their maximum
//! values over the training dataset D"). The paper's Fig. 2 is simply the
//! distribution of these per-neuron maxima for VGG16's second layer.

use crate::FitActError;
use fitact_nn::{Activation, Mode, Network, NnError, Parameter};
use fitact_tensor::Tensor;
use std::sync::{Arc, Mutex};

/// The activation statistics of one activation slot.
#[derive(Debug, Clone, PartialEq)]
pub struct SlotProfile {
    /// The slot's diagnostic label (e.g. `"features.1"`).
    pub label: String,
    /// Per-sample feature shape of the slot.
    pub feature_shape: Vec<usize>,
    /// Maximum post-ReLU activation observed for each neuron.
    pub per_neuron_max: Vec<f32>,
    /// Maximum over all neurons in the slot (the global bound Clip-Act/Ranger
    /// would use for this layer).
    pub layer_max: f32,
}

impl SlotProfile {
    /// Number of neurons in the slot.
    pub fn num_neurons(&self) -> usize {
        self.per_neuron_max.len()
    }

    /// Builds a density histogram of the per-neuron maxima (paper Fig. 2).
    ///
    /// Returns `(bin_centre, density)` pairs; densities integrate to 1 over the
    /// value range. Returns an empty vector if the slot has no neurons or
    /// `bins == 0`.
    pub fn histogram(&self, bins: usize) -> Vec<(f32, f32)> {
        if self.per_neuron_max.is_empty() || bins == 0 {
            return Vec::new();
        }
        let max = self.layer_max.max(1e-6);
        let width = max / bins as f32;
        let mut counts = vec![0usize; bins];
        for &v in &self.per_neuron_max {
            let idx = ((v / width) as usize).min(bins - 1);
            counts[idx] += 1;
        }
        let total = self.per_neuron_max.len() as f32;
        counts
            .into_iter()
            .enumerate()
            .map(|(i, c)| ((i as f32 + 0.5) * width, c as f32 / (total * width)))
            .collect()
    }
}

/// Per-neuron activation maxima for every activation slot of a network.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ActivationProfile {
    /// One profile per activation slot, in forward order.
    pub slots: Vec<SlotProfile>,
}

impl ActivationProfile {
    /// Number of profiled slots.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Returns `true` if no slots were profiled.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Total number of neurons across all slots (the `N` of paper Eq. 10).
    pub fn total_neurons(&self) -> usize {
        self.slots.iter().map(SlotProfile::num_neurons).sum()
    }

    /// Looks a slot profile up by its label.
    pub fn slot(&self, label: &str) -> Option<&SlotProfile> {
        self.slots.iter().find(|s| s.label == label)
    }
}

/// Runs calibration forward passes and records activation maxima.
#[derive(Debug, Clone, Copy)]
pub struct ActivationProfiler {
    batch_size: usize,
}

impl ActivationProfiler {
    /// Creates a profiler that feeds the calibration set through the network
    /// `batch_size` samples at a time.
    ///
    /// # Errors
    ///
    /// Returns [`FitActError::InvalidConfig`] if `batch_size == 0`.
    pub fn new(batch_size: usize) -> Result<Self, FitActError> {
        if batch_size == 0 {
            return Err(FitActError::InvalidConfig(
                "profiler batch_size must be non-zero".into(),
            ));
        }
        Ok(ActivationProfiler { batch_size })
    }

    /// Profiles every activation slot of `network` over the calibration set
    /// `inputs` (shape `[n, ...]`).
    ///
    /// The network's activations are temporarily replaced by recording
    /// wrappers and restored afterwards; parameters are not modified.
    ///
    /// # Errors
    ///
    /// Propagates forward-pass errors.
    pub fn profile(
        &self,
        network: &mut Network,
        inputs: &Tensor,
    ) -> Result<ActivationProfile, FitActError> {
        // Install recording activations, keeping the originals.
        let mut originals: Vec<Box<dyn Activation>> = Vec::new();
        let mut recorders: Vec<Arc<Mutex<Vec<f32>>>> = Vec::new();
        let mut labels: Vec<String> = Vec::new();
        let mut shapes: Vec<Vec<usize>> = Vec::new();
        for slot in network.activation_slots() {
            let neurons = slot.num_neurons();
            let shared = Arc::new(Mutex::new(vec![0.0f32; neurons]));
            labels.push(slot.label().to_owned());
            shapes.push(slot.feature_shape().to_vec());
            recorders.push(Arc::clone(&shared));
            originals.push(slot.replace_activation(Box::new(RecordingRelu::new(shared, neurons))));
        }

        // Feed the calibration set through in eval mode.
        let result = self.run_forward_passes(network, inputs);

        // Restore the original activations regardless of forward success.
        for (slot, original) in network.activation_slots().into_iter().zip(originals) {
            slot.replace_activation(original);
        }
        result?;

        let slots = labels
            .into_iter()
            .zip(shapes)
            .zip(recorders)
            .map(|((label, feature_shape), recorder)| {
                let per_neuron_max = recorder.lock().expect("profiler mutex poisoned").clone();
                let layer_max = per_neuron_max.iter().copied().fold(0.0f32, f32::max);
                SlotProfile {
                    label,
                    feature_shape,
                    per_neuron_max,
                    layer_max,
                }
            })
            .collect();
        Ok(ActivationProfile { slots })
    }

    fn run_forward_passes(
        &self,
        network: &mut Network,
        inputs: &Tensor,
    ) -> Result<(), FitActError> {
        if inputs.ndim() == 0 || inputs.dims()[0] == 0 {
            return Err(FitActError::InvalidConfig(
                "calibration set must contain at least one sample".into(),
            ));
        }
        let n = inputs.dims()[0];
        let mut start = 0usize;
        while start < n {
            let end = (start + self.batch_size).min(n);
            let mut rows = Vec::with_capacity(end - start);
            for i in start..end {
                rows.push(inputs.index_axis0(i).map_err(NnError::from)?);
            }
            let batch = Tensor::stack(&rows).map_err(NnError::from)?;
            network.forward(&batch, Mode::Eval)?;
            start = end;
        }
        Ok(())
    }
}

/// A ReLU that additionally records the per-neuron maximum of its output.
#[derive(Debug, Clone)]
struct RecordingRelu {
    maxima: Arc<Mutex<Vec<f32>>>,
    neurons: usize,
    cached_input: Option<Tensor>,
}

impl RecordingRelu {
    fn new(maxima: Arc<Mutex<Vec<f32>>>, neurons: usize) -> Self {
        RecordingRelu {
            maxima,
            neurons,
            cached_input: None,
        }
    }
}

impl Activation for RecordingRelu {
    fn name(&self) -> &str {
        "recording_relu"
    }

    fn forward(&mut self, input: &Tensor) -> Result<Tensor, NnError> {
        self.cached_input = Some(input.clone());
        let out = input.map(|v| v.max(0.0));
        let mut maxima = self.maxima.lock().expect("profiler mutex poisoned");
        for (i, &v) in out.as_slice().iter().enumerate() {
            let neuron = i % self.neurons;
            if v > maxima[neuron] {
                maxima[neuron] = v;
            }
        }
        Ok(out)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor, NnError> {
        let input = self
            .cached_input
            .as_ref()
            .ok_or_else(|| NnError::BackwardBeforeForward("recording_relu".into()))?;
        Ok(input.zip_map(grad_output, |x, g| if x > 0.0 { g } else { 0.0 })?)
    }

    fn eval_scalar(&self, x: f32, _neuron: usize) -> f32 {
        x.max(0.0)
    }

    fn params(&self) -> Vec<&Parameter> {
        Vec::new()
    }

    fn clone_box(&self) -> Box<dyn Activation> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fitact_nn::layers::{ActivationLayer, Linear, Sequential};
    use fitact_nn::Layer;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn network_with_known_weights() -> Network {
        let mut rng = StdRng::seed_from_u64(0);
        let mut fc = Linear::new(2, 2, &mut rng);
        // weight = [[1, 0], [0, -1]], bias = 0: neuron 0 passes x0, neuron 1
        // passes -x1.
        *fc.params_mut()[0].data_mut() =
            Tensor::from_vec(vec![1.0, 0.0, 0.0, -1.0], &[2, 2]).unwrap();
        fc.params_mut()[1].data_mut().fill(0.0);
        Network::new(
            "probe",
            Sequential::new()
                .with(Box::new(fc))
                .with(Box::new(ActivationLayer::relu("h", &[2]))),
        )
    }

    #[test]
    fn profile_records_per_neuron_maxima() {
        let mut net = network_with_known_weights();
        // Samples: (x0, x1) pairs.
        let inputs = Tensor::from_vec(vec![0.5, 0.0, 2.0, -3.0, 1.0, 5.0], &[3, 2]).unwrap();
        let profiler = ActivationProfiler::new(2).unwrap();
        let profile = profiler.profile(&mut net, &inputs).unwrap();
        assert_eq!(profile.len(), 1);
        let slot = &profile.slots[0];
        assert_eq!(slot.label, "h");
        assert_eq!(slot.num_neurons(), 2);
        // Neuron 0 sees max(x0) = 2.0; neuron 1 sees max(-x1) = 3.0.
        assert!((slot.per_neuron_max[0] - 2.0).abs() < 1e-6);
        assert!((slot.per_neuron_max[1] - 3.0).abs() < 1e-6);
        assert!((slot.layer_max - 3.0).abs() < 1e-6);
        assert_eq!(profile.total_neurons(), 2);
        assert!(profile.slot("h").is_some());
        assert!(profile.slot("missing").is_none());
    }

    #[test]
    fn profiling_restores_the_original_activations() {
        let mut net = network_with_known_weights();
        let inputs = Tensor::from_vec(vec![1.0, 1.0], &[1, 2]).unwrap();
        let profiler = ActivationProfiler::new(1).unwrap();
        profiler.profile(&mut net, &inputs).unwrap();
        let slots = net.activation_slots();
        assert_eq!(slots[0].activation().name(), "relu");
    }

    #[test]
    fn profiling_does_not_change_parameters() {
        let mut net = network_with_known_weights();
        let before = net.snapshot();
        let inputs = Tensor::from_vec(vec![1.0, -1.0, 0.3, 0.7], &[2, 2]).unwrap();
        ActivationProfiler::new(4)
            .unwrap()
            .profile(&mut net, &inputs)
            .unwrap();
        assert_eq!(net.snapshot(), before);
    }

    #[test]
    fn invalid_configuration_rejected() {
        assert!(ActivationProfiler::new(0).is_err());
        let mut net = network_with_known_weights();
        let profiler = ActivationProfiler::new(2).unwrap();
        assert!(profiler.profile(&mut net, &Tensor::zeros(&[0, 2])).is_err());
    }

    #[test]
    fn histogram_is_a_density() {
        let slot = SlotProfile {
            label: "x".into(),
            feature_shape: vec![4],
            per_neuron_max: vec![0.5, 1.0, 1.5, 2.0],
            layer_max: 2.0,
        };
        let hist = slot.histogram(4);
        assert_eq!(hist.len(), 4);
        let width = 0.5f32;
        let integral: f32 = hist.iter().map(|(_, d)| d * width).sum();
        assert!((integral - 1.0).abs() < 1e-5);
        // Degenerate cases.
        assert!(slot.histogram(0).is_empty());
        let empty = SlotProfile {
            label: "e".into(),
            feature_shape: vec![],
            per_neuron_max: vec![],
            layer_max: 0.0,
        };
        assert!(empty.histogram(10).is_empty());
        assert!(ActivationProfile::default().is_empty());
    }

    #[test]
    fn neurons_that_never_fire_have_zero_maximum() {
        let mut net = network_with_known_weights();
        // x1 always negative → neuron 1 output (-x1) positive; neuron 0 sees
        // only negative x0 → never fires.
        let inputs = Tensor::from_vec(vec![-1.0, -2.0, -0.5, -4.0], &[2, 2]).unwrap();
        let profile = ActivationProfiler::new(2)
            .unwrap()
            .profile(&mut net, &inputs)
            .unwrap();
        assert_eq!(profile.slots[0].per_neuron_max[0], 0.0);
        assert!(profile.slots[0].per_neuron_max[1] > 0.0);
    }
}
