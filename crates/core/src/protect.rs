//! Applying protection schemes to a trained network.

use crate::activations::{ChannelRelu, FitRelu, FitReluNaive, GbRelu, Ranger, DEFAULT_SLOPE};
use crate::calibration::ActivationProfile;
use crate::FitActError;
use fitact_nn::{Network, ReLU};

/// Floor applied to calibrated bounds so that a neuron that never fired during
/// calibration is not forced to output exactly zero forever.
pub const BOUND_FLOOR: f32 = 1e-3;

/// The protection schemes compared in the paper's evaluation (Figs. 5/6 and
/// Table I).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ProtectionScheme {
    /// Plain ReLU — no protection.
    Unprotected,
    /// Ranger: one bound per layer, out-of-range values truncated to the bound.
    Ranger,
    /// Clip-Act: one bound per layer, out-of-range values squashed to zero
    /// (GBReLU, paper Eq. 4).
    ClipAct,
    /// Ablation granularity between Clip-Act and FitAct: one bound per
    /// channel, out-of-range values squashed to zero.
    ClipActPerChannel,
    /// FitAct: one trainable bound per neuron, smooth squash (paper Eq. 6).
    FitAct {
        /// Slope coefficient `k` of the sigmoid gate.
        slope: f32,
    },
    /// FitAct deployed with the hard per-neuron clamp of Eq. 5 (an inference
    /// variant: exact cutoff, no exponentials).
    FitActNaive,
}

impl ProtectionScheme {
    /// The four schemes of the paper's comparison, in plot order.
    pub fn paper_schemes() -> [ProtectionScheme; 4] {
        [
            ProtectionScheme::FitAct {
                slope: DEFAULT_SLOPE,
            },
            ProtectionScheme::ClipAct,
            ProtectionScheme::Ranger,
            ProtectionScheme::Unprotected,
        ]
    }

    /// Short name used in tables and CSV output.
    pub fn name(&self) -> &'static str {
        match self {
            ProtectionScheme::Unprotected => "unprotected",
            ProtectionScheme::Ranger => "ranger",
            ProtectionScheme::ClipAct => "clipact",
            ProtectionScheme::ClipActPerChannel => "clipact_per_channel",
            ProtectionScheme::FitAct { .. } => "fitact",
            ProtectionScheme::FitActNaive => "fitact_naive",
        }
    }

    /// Whether this scheme adds per-neuron bound parameters to the model.
    pub fn has_per_neuron_bounds(&self) -> bool {
        matches!(
            self,
            ProtectionScheme::FitAct { .. } | ProtectionScheme::FitActNaive
        )
    }

    /// Encodes the scheme as a stable `(tag, slope)` pair for on-disk
    /// artifacts. The slope is meaningful only for `FitAct` (0 otherwise);
    /// tags are append-only across format versions.
    pub fn to_tag(&self) -> (u8, f32) {
        match self {
            ProtectionScheme::Unprotected => (0, 0.0),
            ProtectionScheme::Ranger => (1, 0.0),
            ProtectionScheme::ClipAct => (2, 0.0),
            ProtectionScheme::ClipActPerChannel => (3, 0.0),
            ProtectionScheme::FitAct { slope } => (4, *slope),
            ProtectionScheme::FitActNaive => (5, 0.0),
        }
    }

    /// Decodes a `(tag, slope)` pair written by [`ProtectionScheme::to_tag`];
    /// returns `None` for an unknown tag.
    pub fn from_tag(tag: u8, slope: f32) -> Option<ProtectionScheme> {
        match tag {
            0 => Some(ProtectionScheme::Unprotected),
            1 => Some(ProtectionScheme::Ranger),
            2 => Some(ProtectionScheme::ClipAct),
            3 => Some(ProtectionScheme::ClipActPerChannel),
            4 => Some(ProtectionScheme::FitAct { slope }),
            5 => Some(ProtectionScheme::FitActNaive),
            _ => None,
        }
    }
}

impl std::fmt::Display for ProtectionScheme {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Replaces every activation slot of `network` according to `scheme`, using
/// the calibrated activation maxima in `profile`.
///
/// * `Unprotected` installs plain ReLU,
/// * `Ranger` / `ClipAct` install one layer-wide bound (the slot's maximum),
/// * `FitAct` / `FitActNaive` install one bound per neuron (the neuron's
///   maximum, floored at [`BOUND_FLOOR`]).
///
/// # Errors
///
/// Returns [`FitActError::ProfileMismatch`] if the profile was taken from a
/// network with a different activation-slot structure.
pub fn apply_protection(
    network: &mut Network,
    profile: &ActivationProfile,
    scheme: ProtectionScheme,
) -> Result<(), FitActError> {
    let slots = network.activation_slots();
    if slots.len() != profile.slots.len() {
        return Err(FitActError::ProfileMismatch(format!(
            "network has {} activation slots but the profile has {}",
            slots.len(),
            profile.slots.len()
        )));
    }
    for (slot, slot_profile) in slots.into_iter().zip(&profile.slots) {
        if slot.num_neurons() != slot_profile.num_neurons() {
            return Err(FitActError::ProfileMismatch(format!(
                "slot `{}` has {} neurons but the profile records {}",
                slot.label(),
                slot.num_neurons(),
                slot_profile.num_neurons()
            )));
        }
        let layer_bound = slot_profile.layer_max.max(BOUND_FLOOR);
        match scheme {
            ProtectionScheme::Unprotected => {
                slot.replace_activation(Box::new(ReLU::new()));
            }
            ProtectionScheme::Ranger => {
                slot.replace_activation(Box::new(Ranger::new(layer_bound)));
            }
            ProtectionScheme::ClipAct => {
                slot.replace_activation(Box::new(GbRelu::new(layer_bound)));
            }
            ProtectionScheme::ClipActPerChannel => {
                // One bound per leading feature dimension (the channel for
                // conv feature maps, the neuron itself for dense layers).
                let channels = slot_profile
                    .feature_shape
                    .first()
                    .copied()
                    .unwrap_or(1)
                    .max(1);
                let plane = (slot_profile.num_neurons() / channels).max(1);
                let mut bounds = vec![BOUND_FLOOR; channels];
                for (i, &v) in slot_profile.per_neuron_max.iter().enumerate() {
                    let channel = (i / plane).min(channels - 1);
                    bounds[channel] = bounds[channel].max(v);
                }
                slot.replace_activation(Box::new(ChannelRelu::from_bounds(&bounds, plane)));
            }
            ProtectionScheme::FitAct { slope } => {
                let bounds = floored_bounds(&slot_profile.per_neuron_max);
                slot.replace_activation(Box::new(FitRelu::from_bounds(&bounds, slope)));
            }
            ProtectionScheme::FitActNaive => {
                let bounds = floored_bounds(&slot_profile.per_neuron_max);
                slot.replace_activation(Box::new(FitReluNaive::from_bounds(&bounds)));
            }
        }
    }
    Ok(())
}

fn floored_bounds(maxima: &[f32]) -> Vec<f32> {
    maxima.iter().map(|&v| v.max(BOUND_FLOOR)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calibration::{ActivationProfiler, SlotProfile};
    use fitact_nn::layers::{ActivationLayer, Linear, Sequential};
    use fitact_nn::Mode;
    use fitact_tensor::{init, Tensor};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small_network() -> Network {
        let mut rng = StdRng::seed_from_u64(0);
        Network::new(
            "mlp",
            Sequential::new()
                .with(Box::new(Linear::new(4, 6, &mut rng)))
                .with(Box::new(ActivationLayer::relu("h1", &[6])))
                .with(Box::new(Linear::new(6, 6, &mut rng)))
                .with(Box::new(ActivationLayer::relu("h2", &[6])))
                .with(Box::new(Linear::new(6, 3, &mut rng))),
        )
    }

    fn calibrated(network: &mut Network) -> ActivationProfile {
        let mut rng = StdRng::seed_from_u64(1);
        let inputs = init::uniform(&[32, 4], -1.0, 1.0, &mut rng);
        ActivationProfiler::new(8)
            .unwrap()
            .profile(network, &inputs)
            .unwrap()
    }

    #[test]
    fn scheme_names_and_helpers() {
        assert_eq!(ProtectionScheme::Unprotected.name(), "unprotected");
        assert_eq!(ProtectionScheme::ClipAct.to_string(), "clipact");
        assert_eq!(ProtectionScheme::paper_schemes().len(), 4);
        assert!(ProtectionScheme::FitAct { slope: 8.0 }.has_per_neuron_bounds());
        assert!(ProtectionScheme::FitActNaive.has_per_neuron_bounds());
        assert!(!ProtectionScheme::Ranger.has_per_neuron_bounds());
    }

    #[test]
    fn each_scheme_installs_its_activation() {
        let mut net = small_network();
        let profile = calibrated(&mut net);
        for (scheme, expected) in [
            (ProtectionScheme::Ranger, "ranger"),
            (ProtectionScheme::ClipAct, "gbrelu"),
            (ProtectionScheme::FitAct { slope: 8.0 }, "fitrelu"),
            (ProtectionScheme::FitActNaive, "fitrelu_naive"),
            (ProtectionScheme::Unprotected, "relu"),
        ] {
            apply_protection(&mut net, &profile, scheme).unwrap();
            for slot in net.activation_slots() {
                assert_eq!(slot.activation().name(), expected, "scheme {scheme}");
            }
            // The protected network still runs.
            let y = net.forward(&Tensor::zeros(&[2, 4]), Mode::Eval).unwrap();
            assert_eq!(y.dims(), &[2, 3]);
        }
    }

    #[test]
    fn per_channel_scheme_installs_channel_relu_with_channel_count_bounds() {
        let mut net = small_network();
        let profile = calibrated(&mut net);
        apply_protection(&mut net, &profile, ProtectionScheme::ClipActPerChannel).unwrap();
        let before_lambda_words: usize = net
            .param_info()
            .iter()
            .filter(|i| i.path.ends_with("lambda"))
            .map(|i| i.numel)
            .sum();
        // Dense layers: channels == neurons, so the bound count equals the
        // feature count (6 per slot, 2 slots).
        assert_eq!(before_lambda_words, 12);
        for slot in net.activation_slots() {
            assert_eq!(slot.activation().name(), "channel_relu");
        }
        let y = net.forward(&Tensor::zeros(&[1, 4]), Mode::Eval).unwrap();
        assert_eq!(y.dims(), &[1, 3]);
    }

    #[test]
    fn fitact_adds_per_neuron_parameters() {
        let mut net = small_network();
        let profile = calibrated(&mut net);
        let before = net.num_parameters();
        apply_protection(&mut net, &profile, ProtectionScheme::FitAct { slope: 8.0 }).unwrap();
        let after = net.num_parameters();
        assert_eq!(after, before + profile.total_neurons());
        // Clip-Act adds no parameters (its bound is a constant, not a tensor).
        apply_protection(&mut net, &profile, ProtectionScheme::ClipAct).unwrap();
        assert_eq!(net.num_parameters(), before);
    }

    #[test]
    fn mismatched_profile_is_rejected() {
        let mut net = small_network();
        let profile = calibrated(&mut net);
        // Too few slots.
        let truncated = ActivationProfile {
            slots: profile.slots[..1].to_vec(),
        };
        assert!(matches!(
            apply_protection(&mut net, &truncated, ProtectionScheme::ClipAct),
            Err(FitActError::ProfileMismatch(_))
        ));
        // Wrong neuron count in a slot.
        let mut wrong = profile.clone();
        wrong.slots[0] = SlotProfile {
            label: "h1".into(),
            feature_shape: vec![2],
            per_neuron_max: vec![1.0, 1.0],
            layer_max: 1.0,
        };
        assert!(matches!(
            apply_protection(&mut net, &wrong, ProtectionScheme::FitActNaive),
            Err(FitActError::ProfileMismatch(_))
        ));
    }

    #[test]
    fn bounds_are_floored_for_dead_neurons() {
        let mut net = small_network();
        let mut profile = calibrated(&mut net);
        // Pretend every neuron in the first slot never fired.
        for v in &mut profile.slots[0].per_neuron_max {
            *v = 0.0;
        }
        profile.slots[0].layer_max = 0.0;
        apply_protection(&mut net, &profile, ProtectionScheme::FitAct { slope: 8.0 }).unwrap();
        // The installed activation still lets small values through (bound is
        // the floor, not zero), so the network is not structurally dead.
        let slots = net.activation_slots();
        let act = slots[0].activation();
        assert!(act.eval_scalar(BOUND_FLOOR * 0.5, 0) > 0.0);
    }

    #[test]
    fn protected_network_controls_huge_activations() {
        let mut net = small_network();
        let profile = calibrated(&mut net);
        apply_protection(&mut net, &profile, ProtectionScheme::ClipAct).unwrap();
        // Evaluating the activation far above the calibrated maximum gives 0.
        let slots = net.activation_slots();
        assert_eq!(slots[0].activation().eval_scalar(1e4, 0), 0.0);
    }
}
