//! Rebuilding protected activations from their serialized descriptors.
//!
//! [`fitact_nn::spec::LayerSpec`] describes network topology generically; the
//! activation hosted by each slot is an open-ended
//! [`fitact_nn::spec::ActivationSpec`] record that needs a builder which
//! knows the concrete implementations. [`ProtectedActivations`] is that
//! builder for this workspace: the plain ReLU baseline plus every protected
//! activation of the paper's evaluation.
//!
//! Per-neuron bound *values* are not part of the spec — they live in the
//! activations' `lambda` parameter tensors and are restored through the
//! normal parameter traversal after construction. The builder therefore
//! instantiates bound-carrying activations with placeholder zeros of the
//! recorded size.

use crate::activations::{ChannelRelu, FitRelu, FitReluNaive, GbRelu, Ranger};
use fitact_nn::spec::{ActivationBuilder, ActivationSpec};
use fitact_nn::{Activation, NnError, ReLU};

/// An [`ActivationBuilder`] covering every activation in this workspace.
///
/// | kind | payload |
/// |---|---|
/// | `relu` | — |
/// | `gbrelu` | `floats[0]` = layer bound λ |
/// | `ranger` | `floats[0]` = layer bound λ |
/// | `channel_relu` | `ints[0]` = channels, `ints[1]` = plane size |
/// | `fitrelu` | `floats[0]` = slope k, `ints[0]` = neurons |
/// | `fitrelu_naive` | `ints[0]` = neurons |
#[derive(Debug, Clone, Copy, Default)]
pub struct ProtectedActivations;

impl ActivationBuilder for ProtectedActivations {
    fn build_activation(&self, spec: &ActivationSpec) -> Result<Box<dyn Activation>, NnError> {
        match spec.kind.as_str() {
            "relu" => Ok(Box::new(ReLU::new())),
            "gbrelu" => Ok(Box::new(GbRelu::new(finite_bound(spec, 0)?))),
            "ranger" => Ok(Box::new(Ranger::new(finite_bound(spec, 0)?))),
            "channel_relu" => {
                let channels = nonzero_count(spec, 0, "channels")?;
                let plane = nonzero_count(spec, 1, "plane")?;
                Ok(Box::new(ChannelRelu::from_bounds(
                    &vec![0.0; channels],
                    plane,
                )))
            }
            "fitrelu" => {
                let slope = spec.float(0)?;
                if !(slope.is_finite() && slope > 0.0) {
                    return Err(NnError::InvalidConfig(format!(
                        "fitrelu spec has non-positive slope {slope}"
                    )));
                }
                let neurons = nonzero_count(spec, 0, "neurons")?;
                Ok(Box::new(FitRelu::from_bounds(&vec![0.0; neurons], slope)))
            }
            "fitrelu_naive" => {
                let neurons = nonzero_count(spec, 0, "neurons")?;
                Ok(Box::new(FitReluNaive::from_bounds(&vec![0.0; neurons])))
            }
            other => Err(NnError::InvalidConfig(format!(
                "unknown activation kind `{other}`"
            ))),
        }
    }
}

/// Reads `spec.floats[i]` and validates it as a finite non-negative bound
/// (what [`GbRelu::new`] / [`Ranger::new`] would otherwise panic on).
fn finite_bound(spec: &ActivationSpec, i: usize) -> Result<f32, NnError> {
    let bound = spec.float(i)?;
    if !(bound.is_finite() && bound >= 0.0) {
        return Err(NnError::InvalidConfig(format!(
            "activation spec `{}` has invalid bound {bound}",
            spec.kind
        )));
    }
    Ok(bound)
}

/// Reads `spec.ints[i]` and validates it as a non-zero in-address-space count.
fn nonzero_count(spec: &ActivationSpec, i: usize, what: &str) -> Result<usize, NnError> {
    let raw = spec.int(i)?;
    let count = usize::try_from(raw).map_err(|_| {
        NnError::InvalidConfig(format!(
            "activation spec `{}` {what} count {raw} exceeds the address space",
            spec.kind
        ))
    })?;
    if count == 0 {
        return Err(NnError::InvalidConfig(format!(
            "activation spec `{}` has a zero {what} count",
            spec.kind
        )));
    }
    Ok(count)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Round-trips every activation kind through spec → build and checks the
    /// rebuilt activation reports the same spec (bounds travel via params, so
    /// value equality is checked by the io crate's artifact tests).
    #[test]
    fn builder_reconstructs_every_kind() {
        let originals: Vec<Box<dyn Activation>> = vec![
            Box::new(ReLU::new()),
            Box::new(GbRelu::new(3.5)),
            Box::new(Ranger::new(2.25)),
            Box::new(ChannelRelu::from_bounds(&[1.0, 2.0], 4)),
            Box::new(FitRelu::from_bounds(&[1.0, 2.0, 3.0], 8.0)),
            Box::new(FitReluNaive::from_bounds(&[0.5])),
        ];
        for original in originals {
            let spec = original.spec().unwrap();
            let rebuilt = ProtectedActivations.build_activation(&spec).unwrap();
            assert_eq!(rebuilt.name(), original.name());
            assert_eq!(rebuilt.spec().unwrap(), spec);
            // Parameter shapes must match so the loader can restore values.
            let shapes = |a: &dyn Activation| -> Vec<usize> {
                a.params().iter().map(|p| p.numel()).collect()
            };
            assert_eq!(shapes(rebuilt.as_ref()), shapes(original.as_ref()));
        }
    }

    #[test]
    fn layer_bounds_round_trip_through_the_spec_bit_exactly() {
        let bound = f32::from_bits(0x4049_0FDB); // π, not representable in short decimal
        let spec = GbRelu::new(bound).spec().unwrap();
        let rebuilt = ProtectedActivations.build_activation(&spec).unwrap();
        assert_eq!(rebuilt.eval_scalar(bound, 0), bound);
        assert_eq!(
            rebuilt.eval_scalar(f32::from_bits(bound.to_bits() + 1), 0),
            0.0
        );
    }

    #[test]
    fn malformed_specs_yield_typed_errors() {
        let cases = vec![
            ActivationSpec::tagged("no_such_activation"),
            ActivationSpec::tagged("gbrelu"), // missing bound
            ActivationSpec {
                kind: "gbrelu".into(),
                floats: vec![f32::NAN],
                ints: vec![],
            },
            ActivationSpec {
                kind: "fitrelu".into(),
                floats: vec![-1.0],
                ints: vec![4],
            },
            ActivationSpec {
                kind: "fitrelu".into(),
                floats: vec![8.0],
                ints: vec![0],
            },
            ActivationSpec {
                kind: "channel_relu".into(),
                floats: vec![],
                ints: vec![2], // missing plane
            },
        ];
        for spec in cases {
            assert!(
                matches!(
                    ProtectedActivations.build_activation(&spec),
                    Err(NnError::InvalidConfig(_))
                ),
                "spec {spec:?} should be rejected"
            );
        }
    }
}
