//! Wire types and the blocking client for distributed campaigns.
//!
//! The coordinator/worker protocol rides the crate's HTTP/1.1 codec with
//! `Connection: close` framing. Control messages (unit grants, results,
//! status) are JSON; accuracies travel as **`f32` bit patterns encoded as
//! integers** so the determinism contract survives text transport exactly.
//! Campaign identity (config, dataset provenance, fingerprints) travels as a
//! binary [`fitact_io::CampaignSpec`] because JSON text does not round-trip
//! `f64` rates and `u64` seeds bit-exactly. Unit ids are
//! `(round << 32) | index`, so a re-executed or duplicate unit resolves
//! idempotently to the same id on any coordinator incarnation.

use crate::http::{encode_request, read_response, Response};
use fitact_faults::{FaultModel, TransientBitFlip, TrialPoint};
use fitact_io::JsonValue;
use std::io::Write;
use std::net::{Shutdown, TcpStream};
use std::time::Duration;

/// Largest control-message body either side accepts (units and results are
/// tiny; this bounds a misbehaving peer).
pub const MAX_CONTROL_BODY: usize = 4 * 1024 * 1024;

/// Largest binary payload (model artifact / campaign spec) a worker accepts.
pub const MAX_BINARY_BODY: usize = 256 * 1024 * 1024;

/// Composes a work-unit id from the round it belongs to and its index within
/// that round's unit list.
pub fn unit_id(round: usize, index: usize) -> u64 {
    ((round as u64) << 32) | index as u64
}

/// The round a unit id belongs to (inverse of [`unit_id`]).
pub fn unit_round(id: u64) -> usize {
    (id >> 32) as usize
}

/// One re-executable shard of a campaign round: `count` consecutive trials
/// of `stratum` starting at trial index `start`. Trials are deterministic
/// functions of `(seed, stratum, index)`, so any worker executes the unit
/// bit-identically.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkUnit {
    /// Stable unit id ([`unit_id`]).
    pub id: u64,
    /// Stratum the trials belong to.
    pub stratum: usize,
    /// First trial index of the unit.
    pub start: usize,
    /// Number of consecutive trials.
    pub count: usize,
}

/// Coordinator's answer to a unit request.
#[derive(Debug, Clone, PartialEq)]
pub enum Grant {
    /// A unit lease: execute and report within `lease_ms`.
    Unit {
        /// The leased unit.
        unit: WorkUnit,
        /// Lease duration before the coordinator may re-dispatch.
        lease_ms: u64,
    },
    /// Nothing to hand out right now (all units leased, or the campaign is
    /// paused); poll again after `retry_ms`.
    Wait {
        /// Suggested poll delay.
        retry_ms: u64,
    },
    /// The campaign is complete; the worker should exit.
    Done,
}

fn num(v: f64) -> JsonValue {
    JsonValue::Number(v)
}

fn obj(entries: Vec<(&str, JsonValue)>) -> JsonValue {
    JsonValue::Object(
        entries
            .into_iter()
            .map(|(k, v)| (k.to_owned(), v))
            .collect(),
    )
}

fn as_u64(value: Option<&JsonValue>, what: &str) -> Result<u64, String> {
    let raw = value
        .and_then(JsonValue::as_f64)
        .ok_or_else(|| format!("missing or non-numeric `{what}`"))?;
    if raw < 0.0 || raw.fract() != 0.0 || raw > 9_007_199_254_740_992.0 {
        return Err(format!("`{what}` is not an exact non-negative integer"));
    }
    Ok(raw as u64)
}

impl Grant {
    /// Encodes the grant as a JSON control message.
    pub fn to_json(&self) -> String {
        match self {
            Grant::Unit { unit, lease_ms } => obj(vec![
                ("status", JsonValue::String("unit".into())),
                ("id", num(unit.id as f64)),
                ("stratum", num(unit.stratum as f64)),
                ("start", num(unit.start as f64)),
                ("count", num(unit.count as f64)),
                ("lease_ms", num(*lease_ms as f64)),
            ])
            .to_string(),
            Grant::Wait { retry_ms } => obj(vec![
                ("status", JsonValue::String("wait".into())),
                ("retry_ms", num(*retry_ms as f64)),
            ])
            .to_string(),
            Grant::Done => obj(vec![("status", JsonValue::String("done".into()))]).to_string(),
        }
    }

    /// Decodes a grant control message.
    ///
    /// # Errors
    ///
    /// Returns a description of the malformation.
    pub fn from_json(text: &str) -> Result<Grant, String> {
        let value = JsonValue::parse(text)?;
        match value.get("status").and_then(JsonValue::as_str) {
            Some("unit") => Ok(Grant::Unit {
                unit: WorkUnit {
                    id: as_u64(value.get("id"), "id")?,
                    stratum: as_u64(value.get("stratum"), "stratum")? as usize,
                    start: as_u64(value.get("start"), "start")? as usize,
                    count: as_u64(value.get("count"), "count")? as usize,
                },
                lease_ms: as_u64(value.get("lease_ms"), "lease_ms")?,
            }),
            Some("wait") => Ok(Grant::Wait {
                retry_ms: as_u64(value.get("retry_ms"), "retry_ms")?,
            }),
            Some("done") => Ok(Grant::Done),
            other => Err(format!("unknown grant status {other:?}")),
        }
    }
}

/// A completed unit's results, reported by a worker.
#[derive(Debug, Clone, PartialEq)]
pub struct UnitResult {
    /// Reporting worker's id (observability only; results are validated by
    /// content, not provenance).
    pub worker: String,
    /// The unit the results belong to.
    pub unit: WorkUnit,
    /// One point per trial, in index order (`unit.start ..`).
    pub points: Vec<TrialPoint>,
}

impl UnitResult {
    /// Encodes the result; accuracies as `f32` bit patterns.
    pub fn to_json(&self) -> String {
        let points: Vec<JsonValue> = self
            .points
            .iter()
            .map(|p| {
                JsonValue::Array(vec![
                    num(f64::from(p.accuracy.to_bits())),
                    num(p.faults as f64),
                ])
            })
            .collect();
        obj(vec![
            ("worker", JsonValue::String(self.worker.clone())),
            ("id", num(self.unit.id as f64)),
            ("stratum", num(self.unit.stratum as f64)),
            ("start", num(self.unit.start as f64)),
            ("count", num(self.unit.count as f64)),
            ("points", JsonValue::Array(points)),
        ])
        .to_string()
    }

    /// Decodes a result report.
    ///
    /// # Errors
    ///
    /// Returns a description of the malformation (including a point count
    /// that disagrees with the declared unit size).
    pub fn from_json(text: &str) -> Result<UnitResult, String> {
        let value = JsonValue::parse(text)?;
        let unit = WorkUnit {
            id: as_u64(value.get("id"), "id")?,
            stratum: as_u64(value.get("stratum"), "stratum")? as usize,
            start: as_u64(value.get("start"), "start")? as usize,
            count: as_u64(value.get("count"), "count")? as usize,
        };
        let raw_points = value
            .get("points")
            .and_then(JsonValue::as_array)
            .ok_or("missing `points` array")?;
        if raw_points.len() != unit.count {
            return Err(format!(
                "unit declares {} trials but carries {} points",
                unit.count,
                raw_points.len()
            ));
        }
        let mut points = Vec::with_capacity(raw_points.len());
        for entry in raw_points {
            let pair = entry.as_array().ok_or("non-array point entry")?;
            if pair.len() != 2 {
                return Err("point entry is not a [bits, faults] pair".into());
            }
            let bits = as_u64(Some(&pair[0]), "accuracy bits")?;
            let bits = u32::try_from(bits).map_err(|_| "accuracy bits exceed u32".to_owned())?;
            points.push(TrialPoint {
                accuracy: f32::from_bits(bits),
                faults: as_u64(Some(&pair[1]), "faults")?,
            });
        }
        Ok(UnitResult {
            worker: value
                .get("worker")
                .and_then(JsonValue::as_str)
                .unwrap_or("unknown")
                .to_owned(),
            unit,
            points,
        })
    }
}

/// Resolves a fault-model name from a campaign spec to an injectable model.
/// Only parameterless models can travel by name; `None` means the worker
/// must refuse the campaign.
pub fn fault_model_by_name(name: &str) -> Option<Box<dyn FaultModel>> {
    match name {
        "bitflip" => Some(Box::new(TransientBitFlip)),
        _ => None,
    }
}

/// One blocking `Connection: close` HTTP exchange.
///
/// The client half-closes (FIN) right after sending the request, so the
/// **client** side of every exchange is the active closer and `TIME_WAIT`
/// accumulates on workers' ephemeral ports — never on the coordinator's
/// listening address, which must stay immediately re-bindable across
/// coordinator restarts.
///
/// # Errors
///
/// Returns a human-readable description for connect/read/write failures and
/// malformed responses. HTTP error statuses are NOT errors here — callers
/// inspect [`Response::status`].
pub fn http_call(
    addr: &str,
    method: &str,
    target: &str,
    body: &[u8],
    timeout: Duration,
    max_body: usize,
) -> Result<Response, String> {
    let mut stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    stream
        .set_read_timeout(Some(timeout))
        .and_then(|()| stream.set_write_timeout(Some(timeout)))
        .map_err(|e| format!("socket setup: {e}"))?;
    stream
        .write_all(&encode_request(method, target, body))
        .and_then(|()| stream.flush())
        .map_err(|e| format!("write: {e}"))?;
    let _ = stream.shutdown(Shutdown::Write);
    read_response(&mut stream, max_body)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_ids_compose_round_and_index() {
        assert_eq!(unit_id(0, 0), 0);
        assert_eq!(unit_id(3, 7), (3 << 32) | 7);
        assert_eq!(unit_round(unit_id(41, 5)), 41);
        // Ids stay exactly representable as JSON numbers (f64) for any
        // plausible round count.
        assert!(unit_id(1 << 19, u32::MAX as usize) < 1u64 << 53);
    }

    #[test]
    fn grants_round_trip() {
        for grant in [
            Grant::Unit {
                unit: WorkUnit {
                    id: unit_id(2, 1),
                    stratum: 1,
                    start: 16,
                    count: 8,
                },
                lease_ms: 30_000,
            },
            Grant::Wait { retry_ms: 250 },
            Grant::Done,
        ] {
            assert_eq!(Grant::from_json(&grant.to_json()).unwrap(), grant);
        }
        assert!(Grant::from_json("{\"status\":\"nope\"}").is_err());
        assert!(Grant::from_json("{\"status\":\"unit\",\"id\":1.5}").is_err());
    }

    #[test]
    fn results_round_trip_bit_exactly() {
        let result = UnitResult {
            worker: "w0".into(),
            unit: WorkUnit {
                id: unit_id(1, 0),
                stratum: 0,
                start: 8,
                count: 3,
            },
            points: vec![
                TrialPoint {
                    accuracy: -0.0,
                    faults: 0,
                },
                TrialPoint {
                    accuracy: f32::NAN,
                    faults: 2,
                },
                TrialPoint {
                    accuracy: 0.7231445,
                    faults: 17,
                },
            ],
        };
        let decoded = UnitResult::from_json(&result.to_json()).unwrap();
        assert_eq!(decoded.worker, result.worker);
        assert_eq!(decoded.unit, result.unit);
        for (a, b) in decoded.points.iter().zip(&result.points) {
            assert!(a.same_bits(b), "{a:?} != {b:?}");
        }
        // A point-count/unit-size disagreement is rejected at decode time.
        let mut short = result.clone();
        short.points.pop();
        assert!(UnitResult::from_json(&short.to_json()).is_err());
    }

    #[test]
    fn model_names_resolve() {
        assert_eq!(fault_model_by_name("bitflip").unwrap().name(), "bitflip");
        assert!(fault_model_by_name("burst").is_none());
        assert!(fault_model_by_name("").is_none());
    }
}
