//! Micro-batched HTTP inference serving for `.fitact` model artifacts.
//!
//! The FitAct paper motivates protected activations for *deployed*,
//! safety-critical inference; this crate supplies the deployment half of the
//! reproduction: a std-only (no tokio, no hyper — the build environment is
//! offline) HTTP/1.1 server that loads a protected model from a `.fitact`
//! artifact and serves JSON predict requests through a **dynamic
//! micro-batching scheduler**:
//!
//! * requests queue in a [`BatchQueue`]; a batch launches when `max_batch`
//!   rows are pending or the oldest row has waited `max_wait`,
//! * a pool of worker threads executes batches on warm per-worker network
//!   clones, staging each batch through a reusable [`fitact_tensor::TensorArena`]
//!   slot (allocation-free at steady state),
//! * responses are **bit-identical** to evaluating each sample alone —
//!   batching is a pure throughput optimisation, never a numerics change
//!   (see `docs/serving.md` for why this holds and where it is pinned).
//!
//! Connections run through a single **event-driven** I/O thread (epoll on
//! Linux, poll(2) on other Unixes) with opt-in HTTP/1.1 keep-alive, request
//! pipelining, per-connection idle/I-O deadlines and `503` + `Retry-After`
//! load-shedding past `max_connections`; model parameters are served from
//! one shared read-only mapping ([`fitact_io::MappedArtifact`]) instead of
//! per-worker copies. See `docs/serving.md` for the connection model.
//!
//! # Endpoints
//!
//! | Route | Method | Purpose |
//! |---|---|---|
//! | `/predict` | POST | `{"inputs": [[…], …]}` → logits + classes |
//! | `/healthz` | GET | liveness + model identity |
//! | `/metrics` | GET | request counters, batch-size histogram, latency percentiles, violation/recovery/canary telemetry |
//! | `/admin/reload` | POST | hot-swap the artifact from disk |
//! | `/admin/metrics/reset` | POST | empty the latency window (counters untouched) |
//! | `/admin/shutdown` | POST | graceful drain + stop |
//!
//! Protected activations double as fault detectors: every forward runs
//! under a per-batch [`fitact_nn::ViolationTrace`], `--retry-policy retry`
//! re-executes suspect batches from their last clean layer boundary, and
//! `--canary-rate` runs a fault-injected shadow replica over a copy of live
//! traffic to measure detection coverage (see `docs/recovery.md`).
//!
//! The same HTTP substrate also carries the **distributed fault campaign**:
//! a [`Coordinator`] shards a campaign's trial space into leased work units
//! served at `/campaign/spec`, `/campaign/model`, `/campaign/unit`,
//! `/campaign/result` and `/campaign/status`, and workers
//! ([`run_worker`]) pull, execute and report units with exponential-backoff
//! retries. Leases expire and re-dispatch, duplicates merge idempotently,
//! and the coordinator checkpoints for crash-safe resume — the final report
//! stays bit-identical to a single-process run (see `docs/distributed.md`).
//!
//! The `fitact serve` CLI subcommand (see `docs/cli.md`) wraps
//! [`Server::start`]; tests drive the same API in-process:
//!
//! ```no_run
//! use fitact_serve::{ServeConfig, Server};
//!
//! # fn main() -> Result<(), fitact_serve::ServeError> {
//! let server = Server::start("model.fitact", &ServeConfig::default())?;
//! println!("listening on {}", server.addr());
//! let final_metrics = server.join(); // blocks until POST /admin/shutdown
//! println!("served {} rows", final_metrics.responses_total);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod backoff;
pub mod batcher;
pub mod coordinator;
pub mod http;
pub mod metrics;
#[cfg(unix)]
mod poller;
pub mod protocol;
pub mod recovery;
pub mod server;
pub mod worker;

pub use backoff::Backoff;
pub use batcher::{BatchQueue, PendingRow, PushRejected, RowOutput, RowResult};
pub use coordinator::{Coordinator, CoordinatorConfig};
pub use metrics::{
    CanarySnapshot, ConnectionsSnapshot, LatencyPercentiles, LayerViolations, Metrics,
    MetricsSnapshot, RecoverySnapshot,
};
pub use protocol::{Grant, UnitResult, WorkUnit};
pub use recovery::RetryPolicy;
pub use server::{ServeConfig, Server};
pub use worker::{run_worker, run_worker_until, WorkerConfig, WorkerSummary};

use std::error::Error;
use std::fmt;

/// Errors produced while starting or running the server.
#[derive(Debug)]
pub enum ServeError {
    /// Socket or filesystem failure.
    Io(std::io::Error),
    /// The model artifact failed to load, decode or instantiate.
    Artifact(fitact_io::IoError),
    /// The server configuration is unusable (zero workers, empty input
    /// shape, uninferable input shape, …).
    InvalidConfig(String),
    /// A distributed campaign aborted: determinism conflict, incompatible
    /// coordinator, exhausted retry budget or lost checkpointability.
    Campaign(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Io(e) => write!(f, "I/O error: {e}"),
            ServeError::Artifact(e) => write!(f, "model artifact error: {e}"),
            ServeError::InvalidConfig(msg) => write!(f, "invalid serve configuration: {msg}"),
            ServeError::Campaign(msg) => write!(f, "distributed campaign failed: {msg}"),
        }
    }
}

impl Error for ServeError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ServeError::Io(e) => Some(e),
            ServeError::Artifact(e) => Some(e),
            ServeError::InvalidConfig(_) | ServeError::Campaign(_) => None,
        }
    }
}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e)
    }
}

impl From<fitact_io::IoError> for ServeError {
    fn from(e: fitact_io::IoError) -> Self {
        ServeError::Artifact(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_and_source() {
        let io = ServeError::from(std::io::Error::other("x"));
        assert!(io.to_string().contains("I/O"));
        assert!(Error::source(&io).is_some());
        let artifact = ServeError::from(fitact_io::IoError::BadMagic);
        assert!(artifact.to_string().contains("artifact"));
        assert!(Error::source(&artifact).is_some());
        let config = ServeError::InvalidConfig("bad".into());
        assert!(config.to_string().contains("bad"));
        assert!(Error::source(&config).is_none());
        let campaign = ServeError::Campaign("lease lost".into());
        assert!(campaign.to_string().contains("distributed campaign"));
        assert!(campaign.to_string().contains("lease lost"));
        assert!(Error::source(&campaign).is_none());
    }
}
