//! Readiness polling without the `libc` crate: epoll(7) on Linux, a
//! poll(2) shim on other Unixes.
//!
//! The serving tier's event loop needs exactly four operations — register,
//! re-arm, deregister, wait — over a level-triggered readiness set, so only
//! those are wrapped. File descriptors come from the standard library's
//! safe-by-construction [`std::os::fd`] types; the raw syscalls are
//! declared directly against the platform C ABI.
//!
//! Both backends are **level-triggered**: an event keeps firing while the
//! condition holds, so the event loop may do partial reads/writes and
//! simply wait again.

use std::os::raw::c_int;
use std::time::Duration;

/// One readiness event: the registered token plus what the fd is ready for.
#[derive(Debug, Clone, Copy)]
pub(crate) struct PollEvent {
    /// The token supplied at registration.
    pub token: u64,
    /// Readable (or a peer hangup, which reads as EOF).
    pub readable: bool,
    /// Writable. The event loop services pending output on *any* event for
    /// a connection, so this is informational (and exercised in tests).
    #[allow(dead_code)]
    pub writable: bool,
    /// Error/hangup condition; the fd should be serviced and closed.
    pub hangup: bool,
}

/// Clamps a wait timeout to the `c_int` milliseconds both syscalls take
/// (`None` = block indefinitely).
fn timeout_ms(timeout: Option<Duration>) -> c_int {
    match timeout {
        None => -1,
        Some(t) => c_int::try_from(t.as_millis().min(i32::MAX as u128)).unwrap_or(i32::MAX),
    }
}

#[cfg(target_os = "linux")]
mod imp {
    use super::{timeout_ms, PollEvent};
    use std::io;
    use std::os::fd::RawFd;
    use std::os::raw::{c_int, c_void};
    use std::time::Duration;

    const EPOLLIN: u32 = 0x001;
    const EPOLLOUT: u32 = 0x004;
    const EPOLLERR: u32 = 0x008;
    const EPOLLHUP: u32 = 0x010;
    /// Peer closed its write half — surfaces as readable EOF.
    const EPOLLRDHUP: u32 = 0x2000;

    const EPOLL_CTL_ADD: c_int = 1;
    const EPOLL_CTL_DEL: c_int = 2;
    const EPOLL_CTL_MOD: c_int = 3;
    const EPOLL_CLOEXEC: c_int = 0o200_0000;

    /// Mirror of `struct epoll_event`; packed on x86-64 (the kernel ABI
    /// packs it there so 32- and 64-bit layouts agree).
    #[repr(C)]
    #[cfg_attr(target_arch = "x86_64", repr(packed))]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    extern "C" {
        fn epoll_create1(flags: c_int) -> c_int;
        fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut c_void) -> c_int;
        fn epoll_wait(epfd: c_int, events: *mut c_void, maxevents: c_int, timeout: c_int) -> c_int;
        fn close(fd: c_int) -> c_int;
    }

    /// The Linux backend: one epoll instance.
    #[derive(Debug)]
    pub(crate) struct Poller {
        epfd: c_int,
        /// Scratch buffer reused across waits.
        buf: Vec<u64>,
    }

    fn interest(readable: bool, writable: bool) -> u32 {
        let mut events = EPOLLRDHUP;
        if readable {
            events |= EPOLLIN;
        }
        if writable {
            events |= EPOLLOUT;
        }
        events
    }

    impl Poller {
        pub(crate) fn new() -> io::Result<Poller> {
            // SAFETY: plain syscall; the return value is checked.
            let epfd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
            if epfd < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(Poller {
                epfd,
                buf: vec![0u64; 2 * 256],
            })
        }

        fn ctl(&self, op: c_int, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
            let mut ev = EpollEvent {
                events,
                data: token,
            };
            // SAFETY: `ev` outlives the call; DEL ignores the event pointer.
            let rc = unsafe { epoll_ctl(self.epfd, op, fd, (&mut ev as *mut EpollEvent).cast()) };
            if rc < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(())
        }

        pub(crate) fn register(
            &mut self,
            fd: RawFd,
            token: u64,
            readable: bool,
            writable: bool,
        ) -> io::Result<()> {
            self.ctl(EPOLL_CTL_ADD, fd, interest(readable, writable), token)
        }

        pub(crate) fn modify(
            &mut self,
            fd: RawFd,
            token: u64,
            readable: bool,
            writable: bool,
        ) -> io::Result<()> {
            self.ctl(EPOLL_CTL_MOD, fd, interest(readable, writable), token)
        }

        pub(crate) fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
            self.ctl(EPOLL_CTL_DEL, fd, 0, 0)
        }

        pub(crate) fn wait(
            &mut self,
            timeout: Option<Duration>,
            out: &mut Vec<PollEvent>,
        ) -> io::Result<()> {
            out.clear();
            let max = (self.buf.len() / 2) as c_int;
            // SAFETY: `buf` provides `max` EpollEvent slots (12 bytes each on
            // x86-64, 16 elsewhere — 2 u64s always cover one) for the kernel
            // to fill; the count of filled slots is checked below.
            let n = unsafe {
                epoll_wait(
                    self.epfd,
                    self.buf.as_mut_ptr().cast(),
                    max,
                    timeout_ms(timeout),
                )
            };
            if n < 0 {
                let e = io::Error::last_os_error();
                if e.kind() == io::ErrorKind::Interrupted {
                    return Ok(());
                }
                return Err(e);
            }
            let base = self.buf.as_ptr().cast::<EpollEvent>();
            for i in 0..n as usize {
                // SAFETY: the kernel wrote `n` contiguous events at `base`.
                let ev = unsafe { std::ptr::read_unaligned(base.add(i)) };
                out.push(PollEvent {
                    token: ev.data,
                    readable: ev.events & (EPOLLIN | EPOLLRDHUP | EPOLLHUP) != 0,
                    writable: ev.events & EPOLLOUT != 0,
                    hangup: ev.events & (EPOLLERR | EPOLLHUP) != 0,
                });
            }
            Ok(())
        }
    }

    impl Drop for Poller {
        fn drop(&mut self) {
            // SAFETY: `epfd` is the epoll fd this struct owns.
            unsafe {
                close(self.epfd);
            }
        }
    }
}

#[cfg(all(unix, not(target_os = "linux")))]
mod imp {
    use super::{timeout_ms, PollEvent};
    use std::io;
    use std::os::fd::RawFd;
    use std::os::raw::{c_int, c_short, c_uint};
    use std::time::Duration;

    const POLLIN: c_short = 0x001;
    const POLLOUT: c_short = 0x004;
    const POLLERR: c_short = 0x008;
    const POLLHUP: c_short = 0x010;

    #[repr(C)]
    #[derive(Clone, Copy)]
    struct PollFd {
        fd: c_int,
        events: c_short,
        revents: c_short,
    }

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: c_uint, timeout: c_int) -> c_int;
    }

    /// The portable Unix backend: a registration list handed to poll(2)
    /// each wait. O(n) per wait, which is fine for the connection counts
    /// the shim targets (the Linux path is the production one).
    #[derive(Debug)]
    pub(crate) struct Poller {
        regs: Vec<(RawFd, u64, bool, bool)>,
    }

    impl Poller {
        pub(crate) fn new() -> io::Result<Poller> {
            Ok(Poller { regs: Vec::new() })
        }

        pub(crate) fn register(
            &mut self,
            fd: RawFd,
            token: u64,
            readable: bool,
            writable: bool,
        ) -> io::Result<()> {
            if self.regs.iter().any(|&(f, ..)| f == fd) {
                return Err(io::Error::new(
                    io::ErrorKind::AlreadyExists,
                    "fd already registered",
                ));
            }
            self.regs.push((fd, token, readable, writable));
            Ok(())
        }

        pub(crate) fn modify(
            &mut self,
            fd: RawFd,
            token: u64,
            readable: bool,
            writable: bool,
        ) -> io::Result<()> {
            match self.regs.iter_mut().find(|(f, ..)| *f == fd) {
                Some(reg) => {
                    *reg = (fd, token, readable, writable);
                    Ok(())
                }
                None => Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered")),
            }
        }

        pub(crate) fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
            let before = self.regs.len();
            self.regs.retain(|&(f, ..)| f != fd);
            if self.regs.len() == before {
                return Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered"));
            }
            Ok(())
        }

        pub(crate) fn wait(
            &mut self,
            timeout: Option<Duration>,
            out: &mut Vec<PollEvent>,
        ) -> io::Result<()> {
            out.clear();
            let mut fds: Vec<PollFd> = self
                .regs
                .iter()
                .map(|&(fd, _, readable, writable)| PollFd {
                    fd,
                    events: if readable { POLLIN } else { 0 } | if writable { POLLOUT } else { 0 },
                    revents: 0,
                })
                .collect();
            // SAFETY: `fds` is a live array of `len` pollfd records.
            let n = unsafe { poll(fds.as_mut_ptr(), fds.len() as c_uint, timeout_ms(timeout)) };
            if n < 0 {
                let e = io::Error::last_os_error();
                if e.kind() == io::ErrorKind::Interrupted {
                    return Ok(());
                }
                return Err(e);
            }
            for (pfd, &(_, token, ..)) in fds.iter().zip(&self.regs) {
                if pfd.revents == 0 {
                    continue;
                }
                out.push(PollEvent {
                    token,
                    readable: pfd.revents & (POLLIN | POLLHUP) != 0,
                    writable: pfd.revents & POLLOUT != 0,
                    hangup: pfd.revents & (POLLERR | POLLHUP) != 0,
                });
            }
            Ok(())
        }
    }
}

#[cfg(unix)]
pub(crate) use imp::Poller;

#[cfg(all(unix, test))]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::os::fd::AsRawFd;
    use std::os::unix::net::UnixStream;

    #[test]
    fn readiness_tracks_pipe_state() {
        let (mut a, mut b) = UnixStream::pair().unwrap();
        a.set_nonblocking(true).unwrap();
        b.set_nonblocking(true).unwrap();
        let mut poller = Poller::new().unwrap();
        poller.register(a.as_raw_fd(), 7, true, false).unwrap();
        let mut events = Vec::new();

        // Nothing to read yet.
        poller
            .wait(Some(Duration::from_millis(0)), &mut events)
            .unwrap();
        assert!(events.iter().all(|e| e.token != 7 || !e.readable));

        // A write on the peer makes it readable.
        b.write_all(b"x").unwrap();
        poller
            .wait(Some(Duration::from_millis(1000)), &mut events)
            .unwrap();
        assert!(events.iter().any(|e| e.token == 7 && e.readable));

        // Level-triggered: still readable until drained.
        poller
            .wait(Some(Duration::from_millis(0)), &mut events)
            .unwrap();
        assert!(events.iter().any(|e| e.token == 7 && e.readable));
        let mut buf = [0u8; 8];
        let _ = a.read(&mut buf);

        // Write interest reports writable on an open socket.
        poller.modify(a.as_raw_fd(), 7, true, true).unwrap();
        poller
            .wait(Some(Duration::from_millis(1000)), &mut events)
            .unwrap();
        assert!(events.iter().any(|e| e.token == 7 && e.writable));

        // Peer hangup surfaces as readable (EOF) and/or hangup.
        drop(b);
        poller
            .wait(Some(Duration::from_millis(1000)), &mut events)
            .unwrap();
        assert!(events
            .iter()
            .any(|e| e.token == 7 && (e.readable || e.hangup)));

        poller.deregister(a.as_raw_fd()).unwrap();
        poller
            .wait(Some(Duration::from_millis(0)), &mut events)
            .unwrap();
        assert!(events.is_empty());
    }
}
