//! The dynamic micro-batching queue.
//!
//! Requests from any number of connection threads enqueue individual sample
//! rows; worker threads drain them in coalesced batches. The scheduling rule
//! is the classic dynamic-batching trade-off:
//!
//! * a worker that finds the queue non-empty waits until either
//!   `max_batch` rows are pending **or** the oldest pending row has waited
//!   `max_wait`, whichever comes first, then drains up to `max_batch` rows
//!   in arrival order;
//! * an idle worker blocks on the queue condition variable, so an empty
//!   server burns no CPU.
//!
//! `max_wait` therefore bounds the queueing latency a lone request can pay
//! waiting for company, while `max_batch` bounds how much work one forward
//! pass coalesces. See `docs/serving.md` for the latency/throughput model.
//!
//! The queue is also the shutdown rendezvous: [`BatchQueue::shutdown`] wakes
//! every waiter, rejects new rows, and lets workers drain what is already
//! queued — so an in-flight request is either answered or explicitly
//! rejected, never dropped silently.

use std::collections::VecDeque;
use std::sync::mpsc;
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// One enqueued sample row awaiting execution.
#[derive(Debug)]
pub struct PendingRow {
    /// Flattened input features (row-major, `features` elements).
    pub input: Vec<f32>,
    /// Index of this row inside its originating request, echoed back so the
    /// connection thread can reassemble multi-row responses in order.
    pub row: usize,
    /// When the row entered the queue (end-to-end latency measurement).
    pub enqueued: Instant,
    /// Where the executing worker sends the outcome.
    pub responder: mpsc::Sender<RowResult>,
}

/// The outcome of one row, fanned back to its connection thread.
#[derive(Debug, Clone)]
pub struct RowResult {
    /// Index of the row inside its originating request.
    pub row: usize,
    /// The forward pass outcome: logits, or a worker-side error message.
    pub outcome: Result<RowOutput, String>,
    /// Size of the micro-batch the row was executed in.
    pub batch_size: usize,
}

/// A successfully executed row.
#[derive(Debug, Clone)]
pub struct RowOutput {
    /// The network's output row (logits).
    pub logits: Vec<f32>,
    /// `argmax` of the logits (predicted class index).
    pub class: usize,
}

#[derive(Debug, Default)]
struct QueueState {
    pending: VecDeque<PendingRow>,
    shutdown: bool,
}

/// Why [`BatchQueue::push`] refused a request (the rows come back so the
/// connection thread can answer 503 instead of waiting forever).
#[derive(Debug)]
pub enum PushRejected {
    /// The queue is shutting down.
    ShuttingDown(Vec<PendingRow>),
    /// The queue is at its depth cap — backpressure, not failure; the
    /// client should retry.
    Overloaded(Vec<PendingRow>),
}

/// The shared micro-batching queue between connection threads and workers.
#[derive(Debug)]
pub struct BatchQueue {
    state: Mutex<QueueState>,
    cond: Condvar,
    max_batch: usize,
    max_wait: Duration,
    max_queue: usize,
}

impl BatchQueue {
    /// Creates a queue that coalesces up to `max_batch` rows, holding the
    /// first row of a batch at most `max_wait`, and refusing new work
    /// beyond `max_queue` pending rows (backpressure — an unbounded queue
    /// would just convert overload into unbounded latency and memory).
    ///
    /// # Panics
    ///
    /// Panics if `max_batch == 0` or `max_queue == 0` (the server validates
    /// its configuration before construction).
    pub fn new(max_batch: usize, max_wait: Duration, max_queue: usize) -> Self {
        assert!(max_batch > 0, "max_batch must be non-zero");
        assert!(max_queue > 0, "max_queue must be non-zero");
        BatchQueue {
            state: Mutex::new(QueueState::default()),
            cond: Condvar::new(),
            max_batch,
            max_wait,
            max_queue,
        }
    }

    /// The configured batch-size cap.
    pub fn max_batch(&self) -> usize {
        self.max_batch
    }

    /// Enqueues all rows of one request atomically (a worker can never
    /// observe half a request).
    ///
    /// # Errors
    ///
    /// Returns the rows back to the caller when the queue is shutting down
    /// or already holds `max_queue` pending rows.
    pub fn push(&self, rows: Vec<PendingRow>) -> Result<(), PushRejected> {
        let mut state = self.state.lock().expect("queue lock poisoned");
        if state.shutdown {
            return Err(PushRejected::ShuttingDown(rows));
        }
        if state.pending.len().saturating_add(rows.len()) > self.max_queue {
            return Err(PushRejected::Overloaded(rows));
        }
        state.pending.extend(rows);
        drop(state);
        self.cond.notify_all();
        Ok(())
    }

    /// Blocks until a batch is ready and drains it (arrival order, at most
    /// `max_batch` rows). Returns `None` once the queue is shut down *and*
    /// drained — the worker's signal to exit.
    pub fn next_batch(&self) -> Option<Vec<PendingRow>> {
        let mut state = self.state.lock().expect("queue lock poisoned");
        loop {
            // Phase 1: wait for the queue to be non-empty (or shutdown).
            while state.pending.is_empty() {
                if state.shutdown {
                    return None;
                }
                state = self.cond.wait(state).expect("queue lock poisoned");
            }
            // Phase 2: the batch window. Wait for the batch to fill, but no
            // longer than `max_wait` past the oldest row's enqueue time.
            let deadline = state.pending[0].enqueued + self.max_wait;
            loop {
                if state.pending.len() >= self.max_batch || state.shutdown {
                    break;
                }
                let now = Instant::now();
                let Some(remaining) = deadline
                    .checked_duration_since(now)
                    .filter(|d| !d.is_zero())
                else {
                    break;
                };
                let (next, _) = self
                    .cond
                    .wait_timeout(state, remaining)
                    .expect("queue lock poisoned");
                state = next;
                if state.pending.is_empty() {
                    // Another worker drained the batch while this one slept;
                    // go back to waiting for fresh rows.
                    break;
                }
            }
            if state.pending.is_empty() {
                continue;
            }
            let take = self.max_batch.min(state.pending.len());
            return Some(state.pending.drain(..take).collect());
        }
    }

    /// Rejects new rows and wakes every waiter. Workers drain what is
    /// already queued, then exit.
    pub fn shutdown(&self) {
        self.state.lock().expect("queue lock poisoned").shutdown = true;
        self.cond.notify_all();
    }

    /// Number of rows currently waiting (diagnostics / `/metrics`).
    pub fn depth(&self) -> usize {
        self.state
            .lock()
            .expect("queue lock poisoned")
            .pending
            .len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn row(i: usize, tx: &mpsc::Sender<RowResult>) -> PendingRow {
        PendingRow {
            input: vec![i as f32],
            row: i,
            enqueued: Instant::now(),
            responder: tx.clone(),
        }
    }

    #[test]
    fn full_batch_drains_without_waiting_out_the_window() {
        let queue = BatchQueue::new(4, Duration::from_secs(60), 64);
        let (tx, _rx) = mpsc::channel();
        queue.push((0..4).map(|i| row(i, &tx)).collect()).unwrap();
        let start = Instant::now();
        let batch = queue.next_batch().unwrap();
        assert_eq!(batch.len(), 4);
        assert!(
            start.elapsed() < Duration::from_secs(10),
            "a full batch must not wait for the window"
        );
        assert_eq!(queue.depth(), 0);
    }

    #[test]
    fn partial_batch_released_at_deadline() {
        let queue = BatchQueue::new(8, Duration::from_millis(30), 64);
        let (tx, _rx) = mpsc::channel();
        queue.push(vec![row(0, &tx), row(1, &tx)]).unwrap();
        let start = Instant::now();
        let batch = queue.next_batch().unwrap();
        assert_eq!(batch.len(), 2);
        assert!(
            start.elapsed() >= Duration::from_millis(25),
            "a partial batch waits for the window to close"
        );
    }

    #[test]
    fn oversized_request_splits_into_max_batch_chunks() {
        let queue = BatchQueue::new(4, Duration::from_millis(5), 64);
        let (tx, _rx) = mpsc::channel();
        queue.push((0..10).map(|i| row(i, &tx)).collect()).unwrap();
        let sizes: Vec<usize> = (0..3).map(|_| queue.next_batch().unwrap().len()).collect();
        assert_eq!(sizes, vec![4, 4, 2]);
        // Arrival order is preserved across the split.
    }

    #[test]
    fn shutdown_drains_then_stops() {
        let queue = BatchQueue::new(4, Duration::from_secs(60), 64);
        let (tx, _rx) = mpsc::channel();
        queue.push(vec![row(0, &tx)]).unwrap();
        queue.shutdown();
        // Push after shutdown is rejected, handing the rows back.
        match queue.push(vec![row(1, &tx)]) {
            Err(PushRejected::ShuttingDown(rows)) => assert_eq!(rows.len(), 1),
            other => panic!("expected a shutdown rejection, got {other:?}"),
        }
        // The queued row is still served (shutdown short-circuits the window).
        assert_eq!(queue.next_batch().unwrap().len(), 1);
        assert!(queue.next_batch().is_none());
    }

    #[test]
    fn full_queue_rejects_with_backpressure() {
        let queue = BatchQueue::new(4, Duration::from_millis(5), 3);
        let (tx, _rx) = mpsc::channel();
        queue.push(vec![row(0, &tx), row(1, &tx)]).unwrap();
        // Atomic: a request that would cross the cap is refused whole.
        match queue.push(vec![row(2, &tx), row(3, &tx)]) {
            Err(PushRejected::Overloaded(rows)) => assert_eq!(rows.len(), 2),
            other => panic!("expected an overload rejection, got {other:?}"),
        }
        // A request that fits is still accepted.
        queue.push(vec![row(4, &tx)]).unwrap();
        assert_eq!(queue.depth(), 3);
        // Draining frees capacity again.
        assert_eq!(queue.next_batch().unwrap().len(), 3);
        queue.push(vec![row(5, &tx)]).unwrap();
    }

    #[test]
    fn blocked_worker_wakes_on_shutdown() {
        let queue = Arc::new(BatchQueue::new(4, Duration::from_secs(60), 64));
        let worker = {
            let queue = Arc::clone(&queue);
            std::thread::spawn(move || queue.next_batch().is_none())
        };
        std::thread::sleep(Duration::from_millis(20));
        queue.shutdown();
        assert!(worker.join().unwrap(), "an idle worker exits on shutdown");
    }

    #[test]
    fn two_workers_split_a_large_backlog() {
        let queue = Arc::new(BatchQueue::new(4, Duration::from_millis(5), 64));
        let (tx, _rx) = mpsc::channel();
        queue.push((0..16).map(|i| row(i, &tx)).collect()).unwrap();
        let workers: Vec<_> = (0..2)
            .map(|_| {
                let queue = Arc::clone(&queue);
                std::thread::spawn(move || {
                    let mut rows = 0;
                    while let Some(batch) = queue.next_batch() {
                        assert!(batch.len() <= 4);
                        rows += batch.len();
                    }
                    rows
                })
            })
            .collect();
        std::thread::sleep(Duration::from_millis(50));
        queue.shutdown();
        let total: usize = workers.into_iter().map(|w| w.join().unwrap()).sum();
        assert_eq!(total, 16, "every row is executed exactly once");
    }
}
