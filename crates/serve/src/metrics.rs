//! Lock-light serving metrics: request counters, a batch-size histogram and
//! end-to-end latency percentiles.
//!
//! Counters are atomics touched on every request; latencies go into a
//! bounded ring (the most recent [`LATENCY_WINDOW`] samples) behind a mutex
//! that is held only for a push or a snapshot copy. The `/metrics` endpoint
//! renders a [`MetricsSnapshot`] as one JSON object — the same report CI
//! uploads as a workflow artifact from the `serve-smoke` job.

use fitact_io::JsonValue;
use fitact_nn::ViolationTrace;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Number of most-recent per-row latency samples kept for the percentile
/// estimates.
pub const LATENCY_WINDOW: usize = 4096;

/// The serving-metrics registry shared by every connection and worker
/// thread.
#[derive(Debug)]
pub struct Metrics {
    started: Instant,
    /// Rows accepted into the queue.
    rows_total: AtomicU64,
    /// Rows answered successfully.
    responses_total: AtomicU64,
    /// Rows answered with an error (bad input, worker failure, shutdown).
    errors_total: AtomicU64,
    /// Micro-batches executed.
    batches_total: AtomicU64,
    /// `histogram[s]` counts batches that executed exactly `s` rows
    /// (`s ∈ 1..=max_batch`; slot 0 is unused).
    batch_histogram: Vec<AtomicU64>,
    /// Model reloads performed via the admin endpoint.
    reloads_total: AtomicU64,
    latencies: Mutex<LatencyRing>,
    /// Latency-window resets via `/admin/metrics/reset`.
    latency_resets_total: AtomicU64,
    /// Live batches whose violation trace was non-empty.
    violation_batches_total: AtomicU64,
    /// Per-layer violation telemetry, keyed by activation-slot label.
    layer_violations: Mutex<Vec<LayerViolations>>,
    /// Suspect batches counted (but not retried) under `--retry-policy flag`.
    flagged_batches_total: AtomicU64,
    /// Suspect batches re-executed under `--retry-policy retry`.
    retried_batches_total: AtomicU64,
    /// Retried rows whose re-execution differed (confirmed transient).
    retry_transient_rows: AtomicU64,
    /// Retried rows that reproduced bit-identically (persistent violation).
    retry_persistent_rows: AtomicU64,
    /// Batches mirrored through the canary shadow replica.
    canary_batches_total: AtomicU64,
    /// Faults the canary injector actually flipped into shadow traffic.
    canary_faults_injected_total: AtomicU64,
    /// Violations the shadow replica's trace recorded.
    canary_violations_total: AtomicU64,
    /// Canary batches that received at least one injected fault.
    canary_injected_batches_total: AtomicU64,
    /// Fault-carrying canary batches whose trace fired (the coverage
    /// numerator; the denominator is `canary_injected_batches_total`).
    canary_detected_batches_total: AtomicU64,
    /// Batches the canary mirror dropped because its queue was full.
    canary_dropped_total: AtomicU64,
    /// Canary rows whose retry reproduced the clean replica bit-for-bit.
    canary_retry_clean_match_rows: AtomicU64,
    /// Canary rows whose retry still differed from the clean replica.
    canary_retry_mismatch_rows: AtomicU64,
    /// Canary rows whose retry differed from the faulted forward
    /// (confirmed transient, mirroring `retry_transient_rows`).
    canary_retry_transient_rows: AtomicU64,
    /// Connections accepted by the event loop.
    connections_accepted_total: AtomicU64,
    /// Connections refused with `503 + Retry-After` at the connection cap.
    load_shed_total: AtomicU64,
    /// Additional requests served on an already-open keep-alive connection.
    keepalive_reuses_total: AtomicU64,
    /// Connections closed (408) because a request stalled past the I/O
    /// deadline mid-read or mid-write.
    io_timeouts_total: AtomicU64,
    /// Idle keep-alive connections reaped by the idle deadline.
    idle_closed_total: AtomicU64,
    /// Connections dropped because socket setup (non-blocking mode,
    /// poller registration) failed — previously swallowed silently.
    io_setup_failures_total: AtomicU64,
}

/// Accumulated violation telemetry for one activation slot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LayerViolations {
    /// The activation slot's diagnostic label.
    pub label: String,
    /// Total over-bound pre-activation values observed.
    pub violations: u64,
    /// Total pre-activation values inspected.
    pub elements: u64,
}

#[derive(Debug)]
struct LatencyRing {
    samples_us: Vec<u64>,
    next: usize,
}

/// A point-in-time copy of every metric, renderable as JSON.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    /// Seconds since the server started.
    pub uptime_seconds: f64,
    /// Rows accepted into the queue.
    pub rows_total: u64,
    /// Rows answered successfully.
    pub responses_total: u64,
    /// Rows answered with an error.
    pub errors_total: u64,
    /// Micro-batches executed.
    pub batches_total: u64,
    /// Model reloads performed.
    pub reloads_total: u64,
    /// `(batch_size, count)` pairs for every batch size that occurred.
    pub batch_histogram: Vec<(usize, u64)>,
    /// Latency percentiles over the recent window, in microseconds
    /// (`None` until the first response).
    pub latency_us: Option<LatencyPercentiles>,
    /// Latency-window resets performed.
    pub latency_resets_total: u64,
    /// Live batches whose violation trace was non-empty.
    pub violation_batches_total: u64,
    /// Per-slot violation telemetry (insertion order = first occurrence).
    pub layer_violations: Vec<LayerViolations>,
    /// Recovery-loop counters (flag / retry outcomes).
    pub recovery: RecoverySnapshot,
    /// Canary shadow-replica counters.
    pub canary: CanarySnapshot,
    /// Connection-layer counters (accepts, load-shedding, keep-alive
    /// reuse, timeout reaping).
    pub connections: ConnectionsSnapshot,
}

/// Counters for the detect-and-retry recovery loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RecoverySnapshot {
    /// Suspect batches counted under `--retry-policy flag`.
    pub flagged_batches_total: u64,
    /// Suspect batches re-executed under `--retry-policy retry`.
    pub retried_batches_total: u64,
    /// Retried rows whose re-execution differed (confirmed transient).
    pub retry_transient_rows: u64,
    /// Retried rows that reproduced bit-identically (persistent).
    pub retry_persistent_rows: u64,
}

/// Counters for the canary fault-injection shadow replica.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CanarySnapshot {
    /// Batches mirrored through the shadow replica.
    pub batches_total: u64,
    /// Faults injected into shadow traffic.
    pub faults_injected_total: u64,
    /// Violations the shadow trace recorded.
    pub violations_total: u64,
    /// Shadow batches that received at least one fault.
    pub injected_batches_total: u64,
    /// Fault-carrying shadow batches whose trace fired.
    pub detected_batches_total: u64,
    /// Batches dropped because the canary queue was full.
    pub dropped_total: u64,
    /// Shadow retry rows matching the clean replica bit-for-bit.
    pub retry_clean_match_rows: u64,
    /// Shadow retry rows still differing from the clean replica.
    pub retry_mismatch_rows: u64,
    /// Shadow retry rows differing from the faulted forward (transient).
    pub retry_transient_rows: u64,
}

/// Counters for the event-driven connection layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ConnectionsSnapshot {
    /// Connections accepted.
    pub accepted_total: u64,
    /// Connections refused with `503 + Retry-After` at the connection cap.
    pub load_shed_total: u64,
    /// Additional requests served on already-open keep-alive connections.
    pub keepalive_reuses_total: u64,
    /// Connections timed out (408) mid-request.
    pub io_timeouts_total: u64,
    /// Idle keep-alive connections reaped.
    pub idle_closed_total: u64,
    /// Connections dropped because socket setup failed.
    pub setup_failures_total: u64,
}

impl CanarySnapshot {
    /// Measured detection coverage: the fraction of fault-carrying shadow
    /// batches whose violation trace fired. `None` until the injector has
    /// hit at least one batch.
    pub fn detection_coverage(&self) -> Option<f64> {
        (self.injected_batches_total > 0)
            .then(|| self.detected_batches_total as f64 / self.injected_batches_total as f64)
    }
}

/// End-to-end (enqueue → response ready) latency percentiles.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyPercentiles {
    /// Number of samples in the window.
    pub count: usize,
    /// Median.
    pub p50: u64,
    /// 90th percentile.
    pub p90: u64,
    /// 99th percentile.
    pub p99: u64,
    /// Maximum in the window.
    pub max: u64,
}

impl Metrics {
    /// Creates an empty registry for a server with the given batch cap.
    pub fn new(max_batch: usize) -> Self {
        Metrics {
            started: Instant::now(),
            rows_total: AtomicU64::new(0),
            responses_total: AtomicU64::new(0),
            errors_total: AtomicU64::new(0),
            batches_total: AtomicU64::new(0),
            batch_histogram: (0..=max_batch).map(|_| AtomicU64::new(0)).collect(),
            reloads_total: AtomicU64::new(0),
            latencies: Mutex::new(LatencyRing {
                samples_us: Vec::new(),
                next: 0,
            }),
            latency_resets_total: AtomicU64::new(0),
            violation_batches_total: AtomicU64::new(0),
            layer_violations: Mutex::new(Vec::new()),
            flagged_batches_total: AtomicU64::new(0),
            retried_batches_total: AtomicU64::new(0),
            retry_transient_rows: AtomicU64::new(0),
            retry_persistent_rows: AtomicU64::new(0),
            canary_batches_total: AtomicU64::new(0),
            canary_faults_injected_total: AtomicU64::new(0),
            canary_violations_total: AtomicU64::new(0),
            canary_injected_batches_total: AtomicU64::new(0),
            canary_detected_batches_total: AtomicU64::new(0),
            canary_dropped_total: AtomicU64::new(0),
            canary_retry_clean_match_rows: AtomicU64::new(0),
            canary_retry_mismatch_rows: AtomicU64::new(0),
            canary_retry_transient_rows: AtomicU64::new(0),
            connections_accepted_total: AtomicU64::new(0),
            load_shed_total: AtomicU64::new(0),
            keepalive_reuses_total: AtomicU64::new(0),
            io_timeouts_total: AtomicU64::new(0),
            idle_closed_total: AtomicU64::new(0),
            io_setup_failures_total: AtomicU64::new(0),
        }
    }

    /// Records rows accepted into the queue.
    pub fn on_rows_accepted(&self, rows: usize) {
        self.rows_total.fetch_add(rows as u64, Ordering::Relaxed);
    }

    /// Records one executed micro-batch of `size` rows.
    pub fn on_batch(&self, size: usize) {
        self.batches_total.fetch_add(1, Ordering::Relaxed);
        if let Some(slot) = self.batch_histogram.get(size) {
            slot.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Records one successfully answered row and its end-to-end latency.
    pub fn on_response(&self, latency: Duration) {
        self.responses_total.fetch_add(1, Ordering::Relaxed);
        let us = u64::try_from(latency.as_micros()).unwrap_or(u64::MAX);
        let mut ring = self.latencies.lock().expect("metrics lock poisoned");
        if ring.samples_us.len() < LATENCY_WINDOW {
            ring.samples_us.push(us);
        } else {
            let next = ring.next;
            ring.samples_us[next] = us;
        }
        ring.next = (ring.next + 1) % LATENCY_WINDOW;
    }

    /// Records one row answered with an error.
    pub fn on_error(&self) {
        self.errors_total.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one model reload.
    pub fn on_reload(&self) {
        self.reloads_total.fetch_add(1, Ordering::Relaxed);
    }

    /// Empties the latency ring so percentiles reflect only traffic after
    /// this point (`/admin/metrics/reset`; counters are left untouched).
    pub fn reset_latency_window(&self) {
        let mut ring = self.latencies.lock().expect("metrics lock poisoned");
        ring.samples_us.clear();
        ring.next = 0;
        self.latency_resets_total.fetch_add(1, Ordering::Relaxed);
    }

    /// Folds one batch's violation trace into the per-layer telemetry.
    pub fn on_trace(&self, trace: &ViolationTrace) {
        if trace.total() > 0 {
            self.violation_batches_total.fetch_add(1, Ordering::Relaxed);
        }
        let mut layers = self.layer_violations.lock().expect("metrics lock poisoned");
        for slot in trace.slots() {
            match layers.iter_mut().find(|l| l.label == slot.label) {
                Some(layer) => {
                    layer.violations += slot.violations;
                    layer.elements += slot.elements;
                }
                None => layers.push(LayerViolations {
                    label: slot.label.clone(),
                    violations: slot.violations,
                    elements: slot.elements,
                }),
            }
        }
    }

    /// Records one suspect batch under `--retry-policy flag`.
    pub fn on_flagged(&self) {
        self.flagged_batches_total.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one retried batch and its per-row verdicts.
    pub fn on_retry(&self, transient_rows: u64, persistent_rows: u64) {
        self.retried_batches_total.fetch_add(1, Ordering::Relaxed);
        self.retry_transient_rows
            .fetch_add(transient_rows, Ordering::Relaxed);
        self.retry_persistent_rows
            .fetch_add(persistent_rows, Ordering::Relaxed);
    }

    /// Records one canary shadow batch: how many faults the injector flipped
    /// into it and how many violations the shadow trace recorded.
    pub fn on_canary_batch(&self, faults_injected: u64, violations_detected: u64) {
        self.canary_batches_total.fetch_add(1, Ordering::Relaxed);
        self.canary_faults_injected_total
            .fetch_add(faults_injected, Ordering::Relaxed);
        self.canary_violations_total
            .fetch_add(violations_detected, Ordering::Relaxed);
        if faults_injected > 0 {
            self.canary_injected_batches_total
                .fetch_add(1, Ordering::Relaxed);
            if violations_detected > 0 {
                self.canary_detected_batches_total
                    .fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Records one batch the canary mirror had to drop (queue full).
    pub fn on_canary_dropped(&self) {
        self.canary_dropped_total.fetch_add(1, Ordering::Relaxed);
    }

    /// Records the per-row outcome of one canary shadow retry.
    pub fn on_canary_retry(&self, clean_match_rows: u64, mismatch_rows: u64, transient_rows: u64) {
        self.canary_retry_clean_match_rows
            .fetch_add(clean_match_rows, Ordering::Relaxed);
        self.canary_retry_mismatch_rows
            .fetch_add(mismatch_rows, Ordering::Relaxed);
        self.canary_retry_transient_rows
            .fetch_add(transient_rows, Ordering::Relaxed);
    }

    /// Records one accepted connection.
    pub fn on_connection_accepted(&self) {
        self.connections_accepted_total
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Records one connection refused at the connection cap.
    pub fn on_load_shed(&self) {
        self.load_shed_total.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one additional request served on an open keep-alive
    /// connection (the first request on a connection is not a reuse).
    pub fn on_keepalive_reuse(&self) {
        self.keepalive_reuses_total.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one connection timed out (408) mid-request.
    pub fn on_io_timeout(&self) {
        self.io_timeouts_total.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one idle keep-alive connection reaped.
    pub fn on_idle_closed(&self) {
        self.idle_closed_total.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one connection dropped because socket setup failed.
    pub fn on_io_setup_failure(&self) {
        self.io_setup_failures_total.fetch_add(1, Ordering::Relaxed);
    }

    /// Copies every metric into a snapshot.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let batch_histogram = self
            .batch_histogram
            .iter()
            .enumerate()
            .skip(1)
            .map(|(size, count)| (size, count.load(Ordering::Relaxed)))
            .filter(|&(_, count)| count > 0)
            .collect();
        let latency_us = {
            let ring = self.latencies.lock().expect("metrics lock poisoned");
            percentiles(&ring.samples_us)
        };
        let layer_violations = self
            .layer_violations
            .lock()
            .expect("metrics lock poisoned")
            .clone();
        MetricsSnapshot {
            uptime_seconds: self.started.elapsed().as_secs_f64(),
            rows_total: self.rows_total.load(Ordering::Relaxed),
            responses_total: self.responses_total.load(Ordering::Relaxed),
            errors_total: self.errors_total.load(Ordering::Relaxed),
            batches_total: self.batches_total.load(Ordering::Relaxed),
            reloads_total: self.reloads_total.load(Ordering::Relaxed),
            batch_histogram,
            latency_us,
            latency_resets_total: self.latency_resets_total.load(Ordering::Relaxed),
            violation_batches_total: self.violation_batches_total.load(Ordering::Relaxed),
            layer_violations,
            recovery: RecoverySnapshot {
                flagged_batches_total: self.flagged_batches_total.load(Ordering::Relaxed),
                retried_batches_total: self.retried_batches_total.load(Ordering::Relaxed),
                retry_transient_rows: self.retry_transient_rows.load(Ordering::Relaxed),
                retry_persistent_rows: self.retry_persistent_rows.load(Ordering::Relaxed),
            },
            canary: CanarySnapshot {
                batches_total: self.canary_batches_total.load(Ordering::Relaxed),
                faults_injected_total: self.canary_faults_injected_total.load(Ordering::Relaxed),
                violations_total: self.canary_violations_total.load(Ordering::Relaxed),
                injected_batches_total: self.canary_injected_batches_total.load(Ordering::Relaxed),
                detected_batches_total: self.canary_detected_batches_total.load(Ordering::Relaxed),
                dropped_total: self.canary_dropped_total.load(Ordering::Relaxed),
                retry_clean_match_rows: self.canary_retry_clean_match_rows.load(Ordering::Relaxed),
                retry_mismatch_rows: self.canary_retry_mismatch_rows.load(Ordering::Relaxed),
                retry_transient_rows: self.canary_retry_transient_rows.load(Ordering::Relaxed),
            },
            connections: ConnectionsSnapshot {
                accepted_total: self.connections_accepted_total.load(Ordering::Relaxed),
                load_shed_total: self.load_shed_total.load(Ordering::Relaxed),
                keepalive_reuses_total: self.keepalive_reuses_total.load(Ordering::Relaxed),
                io_timeouts_total: self.io_timeouts_total.load(Ordering::Relaxed),
                idle_closed_total: self.idle_closed_total.load(Ordering::Relaxed),
                setup_failures_total: self.io_setup_failures_total.load(Ordering::Relaxed),
            },
        }
    }
}

/// Nearest-rank percentiles over an unordered sample window.
fn percentiles(samples: &[u64]) -> Option<LatencyPercentiles> {
    if samples.is_empty() {
        return None;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    let rank = |q: f64| -> u64 {
        let idx = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len()) - 1;
        sorted[idx]
    };
    Some(LatencyPercentiles {
        count: sorted.len(),
        p50: rank(0.50),
        p90: rank(0.90),
        p99: rank(0.99),
        max: *sorted.last().expect("non-empty"),
    })
}

impl MetricsSnapshot {
    /// Renders the snapshot as the `/metrics` JSON object.
    pub fn to_json(&self) -> JsonValue {
        let histogram = JsonValue::Object(
            self.batch_histogram
                .iter()
                .map(|&(size, count)| (size.to_string(), JsonValue::Number(count as f64)))
                .collect(),
        );
        let latency = match &self.latency_us {
            None => JsonValue::Null,
            Some(p) => JsonValue::Object(vec![
                ("count".into(), JsonValue::Number(p.count as f64)),
                ("p50".into(), JsonValue::Number(p.p50 as f64)),
                ("p90".into(), JsonValue::Number(p.p90 as f64)),
                ("p99".into(), JsonValue::Number(p.p99 as f64)),
                ("max".into(), JsonValue::Number(p.max as f64)),
            ]),
        };
        JsonValue::Object(vec![
            (
                "uptime_seconds".into(),
                JsonValue::Number(self.uptime_seconds),
            ),
            (
                "rows_total".into(),
                JsonValue::Number(self.rows_total as f64),
            ),
            (
                "responses_total".into(),
                JsonValue::Number(self.responses_total as f64),
            ),
            (
                "errors_total".into(),
                JsonValue::Number(self.errors_total as f64),
            ),
            (
                "batches_total".into(),
                JsonValue::Number(self.batches_total as f64),
            ),
            (
                "reloads_total".into(),
                JsonValue::Number(self.reloads_total as f64),
            ),
            ("batch_size_histogram".into(), histogram),
            ("latency_us".into(), latency),
            (
                "latency_resets_total".into(),
                JsonValue::Number(self.latency_resets_total as f64),
            ),
            (
                "violations".into(),
                JsonValue::Object(vec![
                    (
                        "batches_total".into(),
                        JsonValue::Number(self.violation_batches_total as f64),
                    ),
                    (
                        "layers".into(),
                        JsonValue::Object(
                            self.layer_violations
                                .iter()
                                .map(|l| {
                                    let rate = if l.elements > 0 {
                                        l.violations as f64 / l.elements as f64
                                    } else {
                                        0.0
                                    };
                                    (
                                        l.label.clone(),
                                        JsonValue::Object(vec![
                                            (
                                                "violations".into(),
                                                JsonValue::Number(l.violations as f64),
                                            ),
                                            (
                                                "elements".into(),
                                                JsonValue::Number(l.elements as f64),
                                            ),
                                            ("rate".into(), JsonValue::Number(rate)),
                                        ]),
                                    )
                                })
                                .collect(),
                        ),
                    ),
                ]),
            ),
            (
                "recovery".into(),
                JsonValue::Object(vec![
                    (
                        "flagged_batches_total".into(),
                        JsonValue::Number(self.recovery.flagged_batches_total as f64),
                    ),
                    (
                        "retried_batches_total".into(),
                        JsonValue::Number(self.recovery.retried_batches_total as f64),
                    ),
                    (
                        "retry_transient_rows".into(),
                        JsonValue::Number(self.recovery.retry_transient_rows as f64),
                    ),
                    (
                        "retry_persistent_rows".into(),
                        JsonValue::Number(self.recovery.retry_persistent_rows as f64),
                    ),
                ]),
            ),
            (
                "canary".into(),
                JsonValue::Object(vec![
                    (
                        "batches_total".into(),
                        JsonValue::Number(self.canary.batches_total as f64),
                    ),
                    (
                        "faults_injected_total".into(),
                        JsonValue::Number(self.canary.faults_injected_total as f64),
                    ),
                    (
                        "violations_total".into(),
                        JsonValue::Number(self.canary.violations_total as f64),
                    ),
                    (
                        "injected_batches_total".into(),
                        JsonValue::Number(self.canary.injected_batches_total as f64),
                    ),
                    (
                        "detected_batches_total".into(),
                        JsonValue::Number(self.canary.detected_batches_total as f64),
                    ),
                    (
                        "dropped_total".into(),
                        JsonValue::Number(self.canary.dropped_total as f64),
                    ),
                    (
                        "detection_coverage".into(),
                        match self.canary.detection_coverage() {
                            Some(coverage) => JsonValue::Number(coverage),
                            None => JsonValue::Null,
                        },
                    ),
                    (
                        "retry_clean_match_rows".into(),
                        JsonValue::Number(self.canary.retry_clean_match_rows as f64),
                    ),
                    (
                        "retry_mismatch_rows".into(),
                        JsonValue::Number(self.canary.retry_mismatch_rows as f64),
                    ),
                    (
                        "retry_transient_rows".into(),
                        JsonValue::Number(self.canary.retry_transient_rows as f64),
                    ),
                ]),
            ),
            (
                "connections".into(),
                JsonValue::Object(vec![
                    (
                        "accepted_total".into(),
                        JsonValue::Number(self.connections.accepted_total as f64),
                    ),
                    (
                        "load_shed_total".into(),
                        JsonValue::Number(self.connections.load_shed_total as f64),
                    ),
                    (
                        "keepalive_reuses_total".into(),
                        JsonValue::Number(self.connections.keepalive_reuses_total as f64),
                    ),
                    (
                        "io_timeouts_total".into(),
                        JsonValue::Number(self.connections.io_timeouts_total as f64),
                    ),
                    (
                        "idle_closed_total".into(),
                        JsonValue::Number(self.connections.idle_closed_total as f64),
                    ),
                    (
                        "setup_failures_total".into(),
                        JsonValue::Number(self.connections.setup_failures_total as f64),
                    ),
                ]),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_histogram_accumulate() {
        let m = Metrics::new(8);
        m.on_rows_accepted(5);
        m.on_batch(4);
        m.on_batch(4);
        m.on_batch(1);
        m.on_response(Duration::from_micros(100));
        m.on_response(Duration::from_micros(300));
        m.on_error();
        m.on_reload();
        let snap = m.snapshot();
        assert_eq!(snap.rows_total, 5);
        assert_eq!(snap.responses_total, 2);
        assert_eq!(snap.errors_total, 1);
        assert_eq!(snap.batches_total, 3);
        assert_eq!(snap.reloads_total, 1);
        assert_eq!(snap.batch_histogram, vec![(1, 1), (4, 2)]);
        let lat = snap.latency_us.unwrap();
        assert_eq!(lat.count, 2);
        assert_eq!(lat.p50, 100);
        assert_eq!(lat.max, 300);
    }

    #[test]
    fn out_of_range_batch_sizes_do_not_panic() {
        let m = Metrics::new(2);
        m.on_batch(99);
        assert_eq!(m.snapshot().batches_total, 1);
        assert!(m.snapshot().batch_histogram.is_empty());
    }

    #[test]
    fn percentile_ranks_are_nearest_rank() {
        let samples: Vec<u64> = (1..=100).collect();
        let p = percentiles(&samples).unwrap();
        assert_eq!((p.p50, p.p90, p.p99, p.max), (50, 90, 99, 100));
        assert!(percentiles(&[]).is_none());
    }

    #[test]
    fn latency_ring_is_bounded() {
        let m = Metrics::new(1);
        for i in 0..(LATENCY_WINDOW + 10) {
            m.on_response(Duration::from_micros(i as u64));
        }
        let lat = m.snapshot().latency_us.unwrap();
        assert_eq!(lat.count, LATENCY_WINDOW);
        // The oldest samples were overwritten.
        assert!(lat.max >= LATENCY_WINDOW as u64);
    }

    #[test]
    fn latency_reset_empties_the_window_and_counts_itself() {
        let m = Metrics::new(1);
        for i in 0..100 {
            m.on_response(Duration::from_micros(i));
        }
        assert_eq!(m.snapshot().latency_us.unwrap().count, 100);
        m.reset_latency_window();
        let snap = m.snapshot();
        assert!(snap.latency_us.is_none(), "percentiles reset");
        assert_eq!(snap.latency_resets_total, 1);
        assert_eq!(snap.responses_total, 100, "counters are untouched");
        // The ring refills from the start after a reset.
        m.on_response(Duration::from_micros(7));
        assert_eq!(m.snapshot().latency_us.unwrap().p50, 7);
    }

    #[test]
    fn traces_fold_into_per_layer_telemetry() {
        let m = Metrics::new(4);
        let mut trace = ViolationTrace::new();
        fitact_nn::trace::capture(&mut trace, || {
            fitact_nn::trace::record("fc1", 3, 100);
            fitact_nn::trace::record("fc2", 0, 50);
        });
        m.on_trace(&trace);
        m.on_trace(&trace);
        let snap = m.snapshot();
        assert_eq!(snap.violation_batches_total, 2);
        assert_eq!(
            snap.layer_violations,
            vec![
                LayerViolations {
                    label: "fc1".into(),
                    violations: 6,
                    elements: 200
                },
                LayerViolations {
                    label: "fc2".into(),
                    violations: 0,
                    elements: 100
                },
            ]
        );
        // A clean trace does not count as a violation batch.
        let mut clean = ViolationTrace::new();
        fitact_nn::trace::capture(&mut clean, || {
            fitact_nn::trace::record("fc1", 0, 100);
        });
        m.on_trace(&clean);
        assert_eq!(m.snapshot().violation_batches_total, 2);
    }

    #[test]
    fn connection_counters_accumulate_and_render() {
        let m = Metrics::new(4);
        m.on_connection_accepted();
        m.on_connection_accepted();
        m.on_load_shed();
        m.on_keepalive_reuse();
        m.on_keepalive_reuse();
        m.on_keepalive_reuse();
        m.on_io_timeout();
        m.on_idle_closed();
        m.on_io_setup_failure();
        let snap = m.snapshot();
        assert_eq!(
            snap.connections,
            ConnectionsSnapshot {
                accepted_total: 2,
                load_shed_total: 1,
                keepalive_reuses_total: 3,
                io_timeouts_total: 1,
                idle_closed_total: 1,
                setup_failures_total: 1,
            }
        );
        let json = snap.to_json().to_string();
        let parsed = JsonValue::parse(&json).unwrap();
        assert_eq!(
            parsed
                .path(&["connections", "load_shed_total"])
                .unwrap()
                .as_f64(),
            Some(1.0)
        );
        assert_eq!(
            parsed
                .path(&["connections", "keepalive_reuses_total"])
                .unwrap()
                .as_f64(),
            Some(3.0)
        );
    }

    #[test]
    fn recovery_and_canary_counters_accumulate() {
        let m = Metrics::new(4);
        m.on_flagged();
        m.on_retry(3, 1);
        m.on_canary_batch(0, 0); // mirrored, no fault landed
        m.on_canary_batch(5, 12); // fault landed and was detected
        m.on_canary_batch(2, 0); // fault landed, slipped through
        m.on_canary_dropped();
        m.on_canary_retry(4, 0, 4);
        let snap = m.snapshot();
        assert_eq!(snap.recovery.flagged_batches_total, 1);
        assert_eq!(snap.recovery.retried_batches_total, 1);
        assert_eq!(snap.recovery.retry_transient_rows, 3);
        assert_eq!(snap.recovery.retry_persistent_rows, 1);
        assert_eq!(snap.canary.batches_total, 3);
        assert_eq!(snap.canary.faults_injected_total, 7);
        assert_eq!(snap.canary.violations_total, 12);
        assert_eq!(snap.canary.injected_batches_total, 2);
        assert_eq!(snap.canary.detected_batches_total, 1);
        assert_eq!(snap.canary.dropped_total, 1);
        assert_eq!(snap.canary.detection_coverage(), Some(0.5));
        assert_eq!(snap.canary.retry_clean_match_rows, 4);
        assert_eq!(snap.canary.retry_transient_rows, 4);
        // Coverage is undefined until a fault has actually landed.
        assert_eq!(Metrics::new(1).snapshot().canary.detection_coverage(), None);
    }

    #[test]
    fn violation_and_canary_blocks_render_as_json() {
        let m = Metrics::new(4);
        let mut trace = ViolationTrace::new();
        fitact_nn::trace::capture(&mut trace, || {
            fitact_nn::trace::record("conv1", 1, 4);
        });
        m.on_trace(&trace);
        m.on_canary_batch(3, 2);
        let text = m.snapshot().to_json().to_string();
        let parsed = JsonValue::parse(&text).unwrap();
        assert_eq!(
            parsed
                .path(&["violations", "layers", "conv1", "rate"])
                .unwrap()
                .as_f64(),
            Some(0.25)
        );
        assert_eq!(
            parsed
                .path(&["canary", "detection_coverage"])
                .unwrap()
                .as_f64(),
            Some(1.0)
        );
        assert_eq!(
            parsed
                .path(&["recovery", "retried_batches_total"])
                .unwrap()
                .as_f64(),
            Some(0.0)
        );
        assert_eq!(
            parsed.path(&["latency_resets_total"]).unwrap().as_f64(),
            Some(0.0)
        );
        // No coverage yet → JSON null, not 0 (a zero would read as "measured
        // and found nothing detected").
        let empty = Metrics::new(1).snapshot().to_json().to_string();
        let empty = JsonValue::parse(&empty).unwrap();
        assert!(matches!(
            empty.path(&["canary", "detection_coverage"]),
            Some(&JsonValue::Null)
        ));
    }

    #[test]
    fn snapshot_renders_as_json() {
        let m = Metrics::new(4);
        m.on_batch(2);
        m.on_response(Duration::from_micros(42));
        let text = m.snapshot().to_json().to_string();
        let parsed = JsonValue::parse(&text).unwrap();
        assert_eq!(
            parsed
                .path(&["batch_size_histogram", "2"])
                .unwrap()
                .as_f64(),
            Some(1.0)
        );
        assert_eq!(
            parsed.path(&["latency_us", "p50"]).unwrap().as_f64(),
            Some(42.0)
        );
    }
}
