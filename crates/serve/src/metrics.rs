//! Lock-light serving metrics: request counters, a batch-size histogram and
//! end-to-end latency percentiles.
//!
//! Counters are atomics touched on every request; latencies go into a
//! bounded ring (the most recent [`LATENCY_WINDOW`] samples) behind a mutex
//! that is held only for a push or a snapshot copy. The `/metrics` endpoint
//! renders a [`MetricsSnapshot`] as one JSON object — the same report CI
//! uploads as a workflow artifact from the `serve-smoke` job.

use fitact_io::JsonValue;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Number of most-recent per-row latency samples kept for the percentile
/// estimates.
pub const LATENCY_WINDOW: usize = 4096;

/// The serving-metrics registry shared by every connection and worker
/// thread.
#[derive(Debug)]
pub struct Metrics {
    started: Instant,
    /// Rows accepted into the queue.
    rows_total: AtomicU64,
    /// Rows answered successfully.
    responses_total: AtomicU64,
    /// Rows answered with an error (bad input, worker failure, shutdown).
    errors_total: AtomicU64,
    /// Micro-batches executed.
    batches_total: AtomicU64,
    /// `histogram[s]` counts batches that executed exactly `s` rows
    /// (`s ∈ 1..=max_batch`; slot 0 is unused).
    batch_histogram: Vec<AtomicU64>,
    /// Model reloads performed via the admin endpoint.
    reloads_total: AtomicU64,
    latencies: Mutex<LatencyRing>,
}

#[derive(Debug)]
struct LatencyRing {
    samples_us: Vec<u64>,
    next: usize,
}

/// A point-in-time copy of every metric, renderable as JSON.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    /// Seconds since the server started.
    pub uptime_seconds: f64,
    /// Rows accepted into the queue.
    pub rows_total: u64,
    /// Rows answered successfully.
    pub responses_total: u64,
    /// Rows answered with an error.
    pub errors_total: u64,
    /// Micro-batches executed.
    pub batches_total: u64,
    /// Model reloads performed.
    pub reloads_total: u64,
    /// `(batch_size, count)` pairs for every batch size that occurred.
    pub batch_histogram: Vec<(usize, u64)>,
    /// Latency percentiles over the recent window, in microseconds
    /// (`None` until the first response).
    pub latency_us: Option<LatencyPercentiles>,
}

/// End-to-end (enqueue → response ready) latency percentiles.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyPercentiles {
    /// Number of samples in the window.
    pub count: usize,
    /// Median.
    pub p50: u64,
    /// 90th percentile.
    pub p90: u64,
    /// 99th percentile.
    pub p99: u64,
    /// Maximum in the window.
    pub max: u64,
}

impl Metrics {
    /// Creates an empty registry for a server with the given batch cap.
    pub fn new(max_batch: usize) -> Self {
        Metrics {
            started: Instant::now(),
            rows_total: AtomicU64::new(0),
            responses_total: AtomicU64::new(0),
            errors_total: AtomicU64::new(0),
            batches_total: AtomicU64::new(0),
            batch_histogram: (0..=max_batch).map(|_| AtomicU64::new(0)).collect(),
            reloads_total: AtomicU64::new(0),
            latencies: Mutex::new(LatencyRing {
                samples_us: Vec::new(),
                next: 0,
            }),
        }
    }

    /// Records rows accepted into the queue.
    pub fn on_rows_accepted(&self, rows: usize) {
        self.rows_total.fetch_add(rows as u64, Ordering::Relaxed);
    }

    /// Records one executed micro-batch of `size` rows.
    pub fn on_batch(&self, size: usize) {
        self.batches_total.fetch_add(1, Ordering::Relaxed);
        if let Some(slot) = self.batch_histogram.get(size) {
            slot.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Records one successfully answered row and its end-to-end latency.
    pub fn on_response(&self, latency: Duration) {
        self.responses_total.fetch_add(1, Ordering::Relaxed);
        let us = u64::try_from(latency.as_micros()).unwrap_or(u64::MAX);
        let mut ring = self.latencies.lock().expect("metrics lock poisoned");
        if ring.samples_us.len() < LATENCY_WINDOW {
            ring.samples_us.push(us);
        } else {
            let next = ring.next;
            ring.samples_us[next] = us;
        }
        ring.next = (ring.next + 1) % LATENCY_WINDOW;
    }

    /// Records one row answered with an error.
    pub fn on_error(&self) {
        self.errors_total.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one model reload.
    pub fn on_reload(&self) {
        self.reloads_total.fetch_add(1, Ordering::Relaxed);
    }

    /// Copies every metric into a snapshot.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let batch_histogram = self
            .batch_histogram
            .iter()
            .enumerate()
            .skip(1)
            .map(|(size, count)| (size, count.load(Ordering::Relaxed)))
            .filter(|&(_, count)| count > 0)
            .collect();
        let latency_us = {
            let ring = self.latencies.lock().expect("metrics lock poisoned");
            percentiles(&ring.samples_us)
        };
        MetricsSnapshot {
            uptime_seconds: self.started.elapsed().as_secs_f64(),
            rows_total: self.rows_total.load(Ordering::Relaxed),
            responses_total: self.responses_total.load(Ordering::Relaxed),
            errors_total: self.errors_total.load(Ordering::Relaxed),
            batches_total: self.batches_total.load(Ordering::Relaxed),
            reloads_total: self.reloads_total.load(Ordering::Relaxed),
            batch_histogram,
            latency_us,
        }
    }
}

/// Nearest-rank percentiles over an unordered sample window.
fn percentiles(samples: &[u64]) -> Option<LatencyPercentiles> {
    if samples.is_empty() {
        return None;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    let rank = |q: f64| -> u64 {
        let idx = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len()) - 1;
        sorted[idx]
    };
    Some(LatencyPercentiles {
        count: sorted.len(),
        p50: rank(0.50),
        p90: rank(0.90),
        p99: rank(0.99),
        max: *sorted.last().expect("non-empty"),
    })
}

impl MetricsSnapshot {
    /// Renders the snapshot as the `/metrics` JSON object.
    pub fn to_json(&self) -> JsonValue {
        let histogram = JsonValue::Object(
            self.batch_histogram
                .iter()
                .map(|&(size, count)| (size.to_string(), JsonValue::Number(count as f64)))
                .collect(),
        );
        let latency = match &self.latency_us {
            None => JsonValue::Null,
            Some(p) => JsonValue::Object(vec![
                ("count".into(), JsonValue::Number(p.count as f64)),
                ("p50".into(), JsonValue::Number(p.p50 as f64)),
                ("p90".into(), JsonValue::Number(p.p90 as f64)),
                ("p99".into(), JsonValue::Number(p.p99 as f64)),
                ("max".into(), JsonValue::Number(p.max as f64)),
            ]),
        };
        JsonValue::Object(vec![
            (
                "uptime_seconds".into(),
                JsonValue::Number(self.uptime_seconds),
            ),
            (
                "rows_total".into(),
                JsonValue::Number(self.rows_total as f64),
            ),
            (
                "responses_total".into(),
                JsonValue::Number(self.responses_total as f64),
            ),
            (
                "errors_total".into(),
                JsonValue::Number(self.errors_total as f64),
            ),
            (
                "batches_total".into(),
                JsonValue::Number(self.batches_total as f64),
            ),
            (
                "reloads_total".into(),
                JsonValue::Number(self.reloads_total as f64),
            ),
            ("batch_size_histogram".into(), histogram),
            ("latency_us".into(), latency),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_histogram_accumulate() {
        let m = Metrics::new(8);
        m.on_rows_accepted(5);
        m.on_batch(4);
        m.on_batch(4);
        m.on_batch(1);
        m.on_response(Duration::from_micros(100));
        m.on_response(Duration::from_micros(300));
        m.on_error();
        m.on_reload();
        let snap = m.snapshot();
        assert_eq!(snap.rows_total, 5);
        assert_eq!(snap.responses_total, 2);
        assert_eq!(snap.errors_total, 1);
        assert_eq!(snap.batches_total, 3);
        assert_eq!(snap.reloads_total, 1);
        assert_eq!(snap.batch_histogram, vec![(1, 1), (4, 2)]);
        let lat = snap.latency_us.unwrap();
        assert_eq!(lat.count, 2);
        assert_eq!(lat.p50, 100);
        assert_eq!(lat.max, 300);
    }

    #[test]
    fn out_of_range_batch_sizes_do_not_panic() {
        let m = Metrics::new(2);
        m.on_batch(99);
        assert_eq!(m.snapshot().batches_total, 1);
        assert!(m.snapshot().batch_histogram.is_empty());
    }

    #[test]
    fn percentile_ranks_are_nearest_rank() {
        let samples: Vec<u64> = (1..=100).collect();
        let p = percentiles(&samples).unwrap();
        assert_eq!((p.p50, p.p90, p.p99, p.max), (50, 90, 99, 100));
        assert!(percentiles(&[]).is_none());
    }

    #[test]
    fn latency_ring_is_bounded() {
        let m = Metrics::new(1);
        for i in 0..(LATENCY_WINDOW + 10) {
            m.on_response(Duration::from_micros(i as u64));
        }
        let lat = m.snapshot().latency_us.unwrap();
        assert_eq!(lat.count, LATENCY_WINDOW);
        // The oldest samples were overwritten.
        assert!(lat.max >= LATENCY_WINDOW as u64);
    }

    #[test]
    fn snapshot_renders_as_json() {
        let m = Metrics::new(4);
        m.on_batch(2);
        m.on_response(Duration::from_micros(42));
        let text = m.snapshot().to_json().to_string();
        let parsed = JsonValue::parse(&text).unwrap();
        assert_eq!(
            parsed
                .path(&["batch_size_histogram", "2"])
                .unwrap()
                .as_f64(),
            Some(1.0)
        );
        assert_eq!(
            parsed.path(&["latency_us", "p50"]).unwrap().as_f64(),
            Some(42.0)
        );
    }
}
