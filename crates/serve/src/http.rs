//! A minimal HTTP/1.1 server-side codec.
//!
//! The build environment is offline (no hyper/axum), and the server needs
//! only the subset a JSON inference API uses: request line + headers +
//! `Content-Length`-framed bodies in, status + JSON body out, one request
//! per connection (`Connection: close` is always sent, which every client
//! including `curl` handles). Chunked transfer encoding, pipelining and
//! upgrades are deliberately out of scope.
//!
//! Malformed input is a typed error that the connection handler converts to
//! a `400`; oversized headers/bodies are rejected before buffering them.

use std::io::{Read, Write};

/// Upper bound on the request line + headers.
const MAX_HEAD_BYTES: usize = 16 * 1024;

/// A parsed HTTP request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// The request method (`GET`, `POST`, …), uppercased by the client.
    pub method: String,
    /// The request target path (query strings are kept verbatim).
    pub target: String,
    /// Header name/value pairs in arrival order (names lowercased).
    pub headers: Vec<(String, String)>,
    /// The request body (empty when no `Content-Length` was sent).
    pub body: Vec<u8>,
}

impl Request {
    /// Case-insensitive header lookup (names are stored lowercased).
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Reads one request from the stream.
///
/// Returns `Ok(None)` on a clean EOF before any byte (the client connected
/// and went away — not an error).
///
/// # Errors
///
/// Returns a human-readable description for malformed framing, oversized
/// heads, or bodies larger than `max_body`; I/O errors (including read
/// timeouts) are formatted into the same error string.
pub fn read_request(stream: &mut impl Read, max_body: usize) -> Result<Option<Request>, String> {
    // Accumulate until the blank line that ends the head.
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let mut chunk = [0u8; 1024];
    let head_end = loop {
        if let Some(pos) = find_head_end(&buf) {
            break pos;
        }
        if buf.len() > MAX_HEAD_BYTES {
            return Err(format!("request head exceeds {MAX_HEAD_BYTES} bytes"));
        }
        let n = stream.read(&mut chunk).map_err(|e| format!("read: {e}"))?;
        if n == 0 {
            if buf.is_empty() {
                return Ok(None);
            }
            return Err("connection closed mid-request".into());
        }
        buf.extend_from_slice(&chunk[..n]);
    };
    let head = std::str::from_utf8(&buf[..head_end]).map_err(|_| "non-UTF-8 request head")?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().ok_or("empty request")?;
    let mut parts = request_line.split(' ');
    let method = parts.next().ok_or("missing method")?.to_owned();
    let target = parts.next().ok_or("missing request target")?.to_owned();
    let version = parts.next().ok_or("missing HTTP version")?;
    if !version.starts_with("HTTP/1.") {
        return Err(format!("unsupported protocol `{version}`"));
    }
    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| format!("malformed header line `{line}`"))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_owned()));
    }
    let mut request = Request {
        method,
        target,
        headers,
        body: Vec::new(),
    };
    let content_length = match request.header("content-length") {
        None => 0,
        Some(text) => text
            .parse::<usize>()
            .map_err(|_| format!("invalid Content-Length `{text}`"))?,
    };
    if content_length > max_body {
        return Err(format!(
            "request body of {content_length} bytes exceeds the {max_body}-byte limit"
        ));
    }
    // Body bytes already read past the head, then the remainder.
    let mut body = buf[head_end + 4..].to_vec();
    while body.len() < content_length {
        let n = stream.read(&mut chunk).map_err(|e| format!("read: {e}"))?;
        if n == 0 {
            return Err("connection closed mid-body".into());
        }
        body.extend_from_slice(&chunk[..n]);
    }
    body.truncate(content_length);
    request.body = body;
    Ok(Some(request))
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Writes a JSON response with `Connection: close` framing.
///
/// # Errors
///
/// Propagates stream write failures.
pub fn write_response(stream: &mut impl Write, status: u16, body: &str) -> std::io::Result<()> {
    let head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: application/json\r\nContent-Length: {len}\r\nConnection: close\r\n\r\n",
        reason = reason_phrase(status),
        len = body.len(),
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// The standard reason phrase for the status codes the server emits.
pub fn reason_phrase(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_post_with_body() {
        let raw = b"POST /predict HTTP/1.1\r\nHost: x\r\nContent-Length: 11\r\n\r\nhello world";
        let req = read_request(&mut &raw[..], 1024).unwrap().unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.target, "/predict");
        assert_eq!(req.header("HOST"), Some("x"));
        assert_eq!(req.body, b"hello world");
    }

    #[test]
    fn parses_get_without_body_and_eof() {
        let raw = b"GET /healthz HTTP/1.1\r\n\r\n";
        let req = read_request(&mut &raw[..], 1024).unwrap().unwrap();
        assert_eq!(req.method, "GET");
        assert!(req.body.is_empty());
        assert!(read_request(&mut &b""[..], 1024).unwrap().is_none());
    }

    #[test]
    fn rejects_malformed_framing() {
        for raw in [
            &b"GARBAGE\r\n\r\n"[..],
            b"GET /x SPDY/3\r\n\r\n",
            b"POST /x HTTP/1.1\r\nContent-Length: nope\r\n\r\n",
            b"POST /x HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort",
        ] {
            assert!(read_request(&mut &raw[..], 1024).is_err(), "{raw:?}");
        }
    }

    #[test]
    fn rejects_oversized_body_before_reading_it() {
        let raw = b"POST /x HTTP/1.1\r\nContent-Length: 99999\r\n\r\n";
        let err = read_request(&mut &raw[..], 1024).unwrap_err();
        assert!(err.contains("exceeds"), "{err}");
    }

    #[test]
    fn response_is_well_formed() {
        let mut out = Vec::new();
        write_response(&mut out, 200, "{\"ok\":true}").unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 11\r\n"));
        assert!(text.ends_with("{\"ok\":true}"));
    }
}
