//! A minimal HTTP/1.1 server-side codec.
//!
//! The build environment is offline (no hyper/axum), so this module hand-
//! rolls the subset a JSON inference API uses: request line + headers +
//! `Content-Length`-framed bodies in, status + JSON body out. The parser is
//! **incremental** — [`parse_request`] consumes a growing byte buffer and
//! either yields a complete request plus the number of bytes it occupied
//! (so pipelined requests queued behind it stay in the buffer), or reports
//! what it is still waiting for. Chunked transfer encoding and upgrades are
//! deliberately out of scope.
//!
//! Connection persistence is **opt-in**: a request is only treated as
//! keep-alive when it carries an explicit `Connection: keep-alive` header.
//! Plain HTTP/1.1 defaults persistence *on*, but every existing client of
//! this server (the pinned integration suites, the CI smoke scripts) frames
//! responses by reading to EOF, so the server closes unless asked not to;
//! `docs/serving.md` documents the deviation.
//!
//! Resource bounds are enforced *before* the offending bytes are buffered:
//! a head that has not terminated within [`MAX_HEAD_BYTES`] is rejected
//! (431) without accepting more input, and an oversized `Content-Length`
//! is rejected (413) before any body byte is read.

use std::io::{Read, Write};

/// Upper bound on the request line + headers, terminator included.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;

/// A parsed HTTP request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// The request method (`GET`, `POST`, …), uppercased by the client.
    pub method: String,
    /// The request target path (query strings are kept verbatim).
    pub target: String,
    /// Header name/value pairs in arrival order (names lowercased).
    pub headers: Vec<(String, String)>,
    /// The request body (empty when no `Content-Length` was sent).
    pub body: Vec<u8>,
}

impl Request {
    /// Case-insensitive header lookup, allocation-free.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// Whether the client explicitly asked for connection persistence
    /// (`Connection: keep-alive`; see the module docs for why absence
    /// means close).
    pub fn wants_keep_alive(&self) -> bool {
        self.header("connection")
            .is_some_and(|v| v.trim().eq_ignore_ascii_case("keep-alive"))
    }
}

/// A parse failure, carrying the HTTP status the server should answer with
/// (400 malformed, 413 oversized body, 431 oversized head).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Response status for this failure.
    pub status: u16,
    /// Human-readable description, returned to the client as JSON.
    pub message: String,
}

impl ParseError {
    fn bad(message: impl Into<String>) -> ParseError {
        ParseError {
            status: 400,
            message: message.into(),
        }
    }
}

/// What an incomplete buffer is still missing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Incomplete {
    /// The head terminator (`\r\n\r\n`) has not arrived yet. At most
    /// [`MAX_HEAD_BYTES`] may be buffered while in this state.
    Head,
    /// The head is complete; the request occupies `total` bytes and the
    /// buffer holds fewer.
    Body {
        /// Head + body length of the pending request.
        total: usize,
    },
}

/// Outcome of one [`parse_request`] call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Outcome {
    /// A full request was parsed; it occupied `consumed` bytes at the start
    /// of the buffer (drain them before parsing the next pipelined request).
    Complete {
        /// The parsed request.
        request: Request,
        /// Bytes of the buffer this request occupied.
        consumed: usize,
    },
    /// More bytes are needed.
    Partial(Incomplete),
}

/// Incrementally parses the request at the start of `buf`.
///
/// `scan_from` is the caller-held resume offset for the head-terminator
/// scan: pass `0` for a fresh request and hand the same variable back on
/// every retry with a grown buffer — each byte is then scanned **once**
/// across the whole feed (the naive rescan was quadratic in head size).
/// Reset it to `0` after draining a completed request.
///
/// # Errors
///
/// [`ParseError`] with status 431 when no head terminator appears within
/// [`MAX_HEAD_BYTES`], 413 when `Content-Length` exceeds `max_body`, and
/// 400 for malformed framing. Errors are final for the connection: the
/// buffer is left unusable for further parsing.
pub fn parse_request(
    buf: &[u8],
    scan_from: &mut usize,
    max_body: usize,
) -> Result<Outcome, ParseError> {
    // Never scan (nor accept) head bytes past the bound.
    let window = buf.len().min(MAX_HEAD_BYTES);
    let head_end = match find_head_end(&buf[..window], *scan_from) {
        Some(pos) => pos,
        None => {
            if buf.len() >= MAX_HEAD_BYTES {
                return Err(ParseError {
                    status: 431,
                    message: format!("request head exceeds {MAX_HEAD_BYTES} bytes"),
                });
            }
            // The terminator may straddle the next chunk boundary.
            *scan_from = buf.len().saturating_sub(3);
            return Ok(Outcome::Partial(Incomplete::Head));
        }
    };

    let head = std::str::from_utf8(&buf[..head_end])
        .map_err(|_| ParseError::bad("non-UTF-8 request head"))?;
    let mut lines = head.split("\r\n");
    let request_line = lines
        .next()
        .ok_or_else(|| ParseError::bad("empty request"))?;
    let mut parts = request_line.split(' ');
    let method = parts
        .next()
        .ok_or_else(|| ParseError::bad("missing method"))?
        .to_owned();
    let target = parts
        .next()
        .ok_or_else(|| ParseError::bad("missing request target"))?
        .to_owned();
    let version = parts
        .next()
        .ok_or_else(|| ParseError::bad("missing HTTP version"))?;
    if !version.starts_with("HTTP/1.") {
        return Err(ParseError::bad(format!("unsupported protocol `{version}`")));
    }
    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| ParseError::bad(format!("malformed header line `{line}`")))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_owned()));
    }
    let request = Request {
        method,
        target,
        headers,
        body: Vec::new(),
    };
    let content_length = match request.header("content-length") {
        None => 0,
        Some(text) => text
            .parse::<usize>()
            .map_err(|_| ParseError::bad(format!("invalid Content-Length `{text}`")))?,
    };
    if content_length > max_body {
        return Err(ParseError {
            status: 413,
            message: format!(
                "request body of {content_length} bytes exceeds the {max_body}-byte limit"
            ),
        });
    }
    let total = head_end + 4 + content_length;
    if buf.len() < total {
        return Ok(Outcome::Partial(Incomplete::Body { total }));
    }
    let mut request = request;
    request.body = buf[head_end + 4..total].to_vec();
    Ok(Outcome::Complete {
        request,
        consumed: total,
    })
}

/// Finds `\r\n\r\n` in `buf`, resuming at `from` (the terminator may start
/// up to 3 bytes before previously scanned input ended).
fn find_head_end(buf: &[u8], from: usize) -> Option<usize> {
    let from = from.min(buf.len());
    buf[from..]
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .map(|p| p + from)
}

/// Reads one request from a blocking stream (`Connection: close` usage —
/// trailing pipelined bytes are not read).
///
/// Returns `Ok(None)` on a clean EOF before any byte (the client connected
/// and went away — not an error). Bounds are enforced before buffering:
/// the buffer never grows past [`MAX_HEAD_BYTES`] while the head is
/// incomplete, and never past the framed request length afterwards.
///
/// # Errors
///
/// Returns a human-readable description for malformed framing, oversized
/// heads, or bodies larger than `max_body`; I/O errors (including read
/// timeouts) are formatted into the same error string.
pub fn read_request(stream: &mut impl Read, max_body: usize) -> Result<Option<Request>, String> {
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let mut chunk = [0u8; 1024];
    let mut scan_from = 0usize;
    loop {
        let budget = match parse_request(&buf, &mut scan_from, max_body) {
            Ok(Outcome::Complete { request, .. }) => return Ok(Some(request)),
            Ok(Outcome::Partial(Incomplete::Head)) => MAX_HEAD_BYTES - buf.len(),
            Ok(Outcome::Partial(Incomplete::Body { total })) => total - buf.len(),
            Err(e) => return Err(e.message),
        };
        let want = budget.min(chunk.len());
        let n = stream
            .read(&mut chunk[..want])
            .map_err(|e| format!("read: {e}"))?;
        if n == 0 {
            if buf.is_empty() {
                return Ok(None);
            }
            return Err("connection closed mid-request".into());
        }
        buf.extend_from_slice(&chunk[..n]);
    }
}

/// Encodes a JSON response head + body into one buffer.
///
/// `keep_alive` selects the `Connection` header; `retry_after` (seconds)
/// adds a `Retry-After` header — the load-shedding contract for 503/429.
pub fn encode_response(
    status: u16,
    body: &str,
    keep_alive: bool,
    retry_after: Option<u64>,
) -> Vec<u8> {
    let mut head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: application/json\r\nContent-Length: {len}\r\n",
        reason = reason_phrase(status),
        len = body.len(),
    );
    if let Some(secs) = retry_after {
        head.push_str(&format!("Retry-After: {secs}\r\n"));
    }
    head.push_str(if keep_alive {
        "Connection: keep-alive\r\n\r\n"
    } else {
        "Connection: close\r\n\r\n"
    });
    let mut out = head.into_bytes();
    out.extend_from_slice(body.as_bytes());
    out
}

/// Writes a JSON response with `Connection: close` framing.
///
/// # Errors
///
/// Propagates stream write failures.
pub fn write_response(stream: &mut impl Write, status: u16, body: &str) -> std::io::Result<()> {
    stream.write_all(&encode_response(status, body, false, None))?;
    stream.flush()
}

/// Encodes a binary (`application/octet-stream`) response head + body —
/// the framing the coordinator uses for model-artifact and campaign-spec
/// payloads. Always `Connection: close`.
pub fn encode_binary_response(status: u16, body: &[u8]) -> Vec<u8> {
    let head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: application/octet-stream\r\n\
         Content-Length: {len}\r\nConnection: close\r\n\r\n",
        reason = reason_phrase(status),
        len = body.len(),
    );
    let mut out = head.into_bytes();
    out.extend_from_slice(body);
    out
}

/// A parsed HTTP response (client side).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// The status code from the status line.
    pub status: u16,
    /// Header name/value pairs in arrival order (names lowercased).
    pub headers: Vec<(String, String)>,
    /// The response body.
    pub body: Vec<u8>,
}

impl Response {
    /// Case-insensitive header lookup, allocation-free.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }
}

/// Encodes a request head + body for a `Connection: close` exchange — the
/// client half of this codec, used by campaign workers talking to the
/// coordinator.
pub fn encode_request(method: &str, target: &str, body: &[u8]) -> Vec<u8> {
    let head = if body.is_empty() {
        format!("{method} {target} HTTP/1.1\r\nConnection: close\r\n\r\n")
    } else {
        format!(
            "{method} {target} HTTP/1.1\r\nContent-Type: application/json\r\n\
             Content-Length: {len}\r\nConnection: close\r\n\r\n",
            len = body.len(),
        )
    };
    let mut out = head.into_bytes();
    out.extend_from_slice(body);
    out
}

/// Reads one response from a blocking stream. The body is framed by
/// `Content-Length` when present, otherwise by EOF; either way it is
/// bounded by `max_body`.
///
/// # Errors
///
/// Returns a human-readable description for malformed framing, oversized
/// heads or bodies, and stream I/O failures (including read timeouts).
pub fn read_response(stream: &mut impl Read, max_body: usize) -> Result<Response, String> {
    // Accumulate until the head terminator, bounded like the server side.
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let mut chunk = [0u8; 1024];
    let mut scan_from = 0usize;
    let head_end = loop {
        if let Some(pos) = find_head_end(&buf, scan_from) {
            break pos;
        }
        if buf.len() >= MAX_HEAD_BYTES {
            return Err(format!("response head exceeds {MAX_HEAD_BYTES} bytes"));
        }
        scan_from = buf.len().saturating_sub(3);
        let want = (MAX_HEAD_BYTES - buf.len()).min(chunk.len());
        let n = stream
            .read(&mut chunk[..want])
            .map_err(|e| format!("read: {e}"))?;
        if n == 0 {
            return Err("connection closed mid-response head".into());
        }
        buf.extend_from_slice(&chunk[..n]);
    };

    let head = std::str::from_utf8(&buf[..head_end]).map_err(|_| "non-UTF-8 response head")?;
    let mut lines = head.split("\r\n");
    let status_line = lines.next().ok_or("empty response")?;
    let mut parts = status_line.split(' ');
    let version = parts.next().ok_or("missing HTTP version")?;
    if !version.starts_with("HTTP/1.") {
        return Err(format!("unsupported protocol `{version}`"));
    }
    let status: u16 = parts
        .next()
        .ok_or("missing status code")?
        .parse()
        .map_err(|_| "non-numeric status code".to_owned())?;
    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| format!("malformed header line `{line}`"))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_owned()));
    }
    let mut response = Response {
        status,
        headers,
        body: buf[head_end + 4..].to_vec(),
    };

    let content_length = match response.header("content-length") {
        None => None,
        Some(text) => Some(
            text.parse::<usize>()
                .map_err(|_| format!("invalid Content-Length `{text}`"))?,
        ),
    };
    if let Some(total) = content_length {
        if total > max_body {
            return Err(format!(
                "response body of {total} bytes exceeds the {max_body}-byte limit"
            ));
        }
        while response.body.len() < total {
            let want = (total - response.body.len()).min(chunk.len());
            let n = stream
                .read(&mut chunk[..want])
                .map_err(|e| format!("read: {e}"))?;
            if n == 0 {
                return Err("connection closed mid-response body".into());
            }
            response.body.extend_from_slice(&chunk[..n]);
        }
        response.body.truncate(total);
    } else {
        // EOF-framed: drain to close, bounded.
        loop {
            if response.body.len() > max_body {
                return Err(format!("response body exceeds the {max_body}-byte limit"));
            }
            let n = stream.read(&mut chunk).map_err(|e| format!("read: {e}"))?;
            if n == 0 {
                break;
            }
            response.body.extend_from_slice(&chunk[..n]);
        }
        if response.body.len() > max_body {
            return Err(format!("response body exceeds the {max_body}-byte limit"));
        }
    }
    Ok(response)
}

/// The standard reason phrase for the status codes the server emits.
pub fn reason_phrase(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        409 => "Conflict",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_post_with_body() {
        let raw = b"POST /predict HTTP/1.1\r\nHost: x\r\nContent-Length: 11\r\n\r\nhello world";
        let req = read_request(&mut &raw[..], 1024).unwrap().unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.target, "/predict");
        assert_eq!(req.header("HOST"), Some("x"));
        assert_eq!(req.body, b"hello world");
    }

    #[test]
    fn parses_get_without_body_and_eof() {
        let raw = b"GET /healthz HTTP/1.1\r\n\r\n";
        let req = read_request(&mut &raw[..], 1024).unwrap().unwrap();
        assert_eq!(req.method, "GET");
        assert!(req.body.is_empty());
        assert!(read_request(&mut &b""[..], 1024).unwrap().is_none());
    }

    #[test]
    fn rejects_malformed_framing() {
        for raw in [
            &b"GARBAGE\r\n\r\n"[..],
            b"GET /x SPDY/3\r\n\r\n",
            b"POST /x HTTP/1.1\r\nContent-Length: nope\r\n\r\n",
            b"POST /x HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort",
        ] {
            assert!(read_request(&mut &raw[..], 1024).is_err(), "{raw:?}");
        }
    }

    #[test]
    fn rejects_oversized_body_before_reading_it_with_413() {
        let raw = b"POST /x HTTP/1.1\r\nContent-Length: 99999\r\n\r\n";
        let err = read_request(&mut &raw[..], 1024).unwrap_err();
        assert!(err.contains("exceeds"), "{err}");
        let mut scan = 0;
        let err = parse_request(raw, &mut scan, 1024).unwrap_err();
        assert_eq!(err.status, 413);
    }

    /// The regression the rewrite pins: the old reader only checked the
    /// bound *after* appending a chunk, so a head of up to
    /// `MAX_HEAD_BYTES + 1024` bytes was accepted and fully buffered. Now
    /// not one byte past the bound is read off the stream.
    #[test]
    fn head_bound_is_enforced_before_buffering_past_it() {
        struct CountingReader<'a> {
            data: &'a [u8],
            pos: usize,
        }
        impl Read for CountingReader<'_> {
            fn read(&mut self, out: &mut [u8]) -> std::io::Result<usize> {
                let n = out.len().min(self.data.len() - self.pos);
                out[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
                self.pos += n;
                Ok(n)
            }
        }

        // A head 1 KiB past the limit: previously accepted, now rejected.
        let mut raw = b"GET /x HTTP/1.1\r\n".to_vec();
        while raw.len() < MAX_HEAD_BYTES + 1000 {
            raw.extend_from_slice(b"X-Pad: aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa\r\n");
        }
        raw.extend_from_slice(b"\r\n");
        let mut reader = CountingReader { data: &raw, pos: 0 };
        let err = read_request(&mut reader, 1024).unwrap_err();
        assert!(err.contains("exceeds"), "{err}");
        assert!(
            reader.pos <= MAX_HEAD_BYTES,
            "read {} bytes, past the {MAX_HEAD_BYTES}-byte bound",
            reader.pos
        );

        // And the incremental parser reports it as a 431.
        let mut scan = 0;
        let err = parse_request(&raw, &mut scan, 1024).unwrap_err();
        assert_eq!(err.status, 431);
    }

    /// A head exactly at the bound (terminator included) still parses.
    #[test]
    fn head_exactly_at_the_bound_is_accepted() {
        let mut raw = b"GET /x HTTP/1.1\r\n".to_vec();
        let pad = MAX_HEAD_BYTES - raw.len() - "X-Pad: \r\n".len() - "\r\n".len();
        raw.extend_from_slice(format!("X-Pad: {}\r\n", "a".repeat(pad)).as_bytes());
        raw.extend_from_slice(b"\r\n");
        assert_eq!(raw.len(), MAX_HEAD_BYTES);
        let mut scan = 0;
        match parse_request(&raw, &mut scan, 1024).unwrap() {
            Outcome::Complete { consumed, .. } => assert_eq!(consumed, MAX_HEAD_BYTES),
            other => panic!("expected completion, got {other:?}"),
        }
    }

    /// The scan offset advances monotonically so re-feeding a growing
    /// buffer never rescans old bytes, and a terminator straddling a chunk
    /// boundary is still found.
    #[test]
    fn incremental_parse_resumes_instead_of_rescanning() {
        let raw = b"POST /p HTTP/1.1\r\nContent-Length: 4\r\n\r\nbody";
        let mut scan = 0;
        let mut last_scan = 0;
        for split in 1..raw.len() {
            match parse_request(&raw[..split], &mut scan, 1024).unwrap() {
                Outcome::Partial(_) => {
                    assert!(scan >= last_scan, "scan offset moved backwards");
                    last_scan = scan;
                }
                Outcome::Complete { request, consumed } => {
                    assert_eq!(consumed, raw.len());
                    assert_eq!(request.body, b"body");
                    return;
                }
            }
        }
        // Terminator found once complete, even though earlier feeds ended
        // mid-terminator.
        match parse_request(raw, &mut scan, 1024).unwrap() {
            Outcome::Complete { request, .. } => assert_eq!(request.body, b"body"),
            other => panic!("expected completion, got {other:?}"),
        }
    }

    /// Two pipelined requests in one buffer parse back-to-back via the
    /// `consumed` cursor.
    #[test]
    fn pipelined_requests_parse_back_to_back() {
        let raw = b"POST /a HTTP/1.1\r\nContent-Length: 3\r\n\r\nabcGET /b HTTP/1.1\r\n\r\n";
        let mut scan = 0;
        let Outcome::Complete { request, consumed } = parse_request(raw, &mut scan, 1024).unwrap()
        else {
            panic!("first request incomplete");
        };
        assert_eq!(request.target, "/a");
        assert_eq!(request.body, b"abc");
        let mut scan = 0;
        let Outcome::Complete {
            request,
            consumed: c2,
        } = parse_request(&raw[consumed..], &mut scan, 1024).unwrap()
        else {
            panic!("second request incomplete");
        };
        assert_eq!(request.target, "/b");
        assert_eq!(consumed + c2, raw.len());
    }

    /// Keep-alive is strictly opt-in: only an explicit
    /// `Connection: keep-alive` (any case) persists.
    #[test]
    fn keep_alive_is_opt_in() {
        let parse = |head: &str| {
            let mut scan = 0;
            match parse_request(head.as_bytes(), &mut scan, 1024).unwrap() {
                Outcome::Complete { request, .. } => request,
                other => panic!("incomplete: {other:?}"),
            }
        };
        assert!(!parse("GET / HTTP/1.1\r\n\r\n").wants_keep_alive());
        assert!(!parse("GET / HTTP/1.1\r\nConnection: close\r\n\r\n").wants_keep_alive());
        assert!(parse("GET / HTTP/1.1\r\nConnection: keep-alive\r\n\r\n").wants_keep_alive());
        assert!(parse("GET / HTTP/1.1\r\nConnection: Keep-Alive\r\n\r\n").wants_keep_alive());
    }

    #[test]
    fn response_is_well_formed() {
        let mut out = Vec::new();
        write_response(&mut out, 200, "{\"ok\":true}").unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 11\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.ends_with("{\"ok\":true}"));

        let text = String::from_utf8(encode_response(503, "{}", true, Some(1))).unwrap();
        assert!(text.starts_with("HTTP/1.1 503 Service Unavailable\r\n"));
        assert!(text.contains("Retry-After: 1\r\n"));
        assert!(text.contains("Connection: keep-alive\r\n"));
    }

    #[test]
    fn reason_phrases_cover_the_emitted_statuses() {
        for status in [200, 400, 404, 405, 408, 409, 413, 429, 431, 500, 503] {
            assert_ne!(reason_phrase(status), "Unknown", "{status}");
        }
        assert_eq!(reason_phrase(418), "Unknown");
    }

    /// The client half round-trips through the server half: an encoded
    /// request parses, an encoded response reads back.
    #[test]
    fn client_and_server_codecs_round_trip() {
        let raw = encode_request("POST", "/campaign/result", b"{\"id\":3}");
        let req = read_request(&mut &raw[..], 1024).unwrap().unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.target, "/campaign/result");
        assert_eq!(req.body, b"{\"id\":3}");
        assert!(!req.wants_keep_alive());

        let raw = encode_request("GET", "/campaign/unit?worker=w0", b"");
        let req = read_request(&mut &raw[..], 1024).unwrap().unwrap();
        assert_eq!(req.method, "GET");
        assert!(req.body.is_empty());
        assert!(req.header("content-length").is_none());

        let raw = encode_response(200, "{\"ok\":true}", false, None);
        let resp = read_response(&mut &raw[..], 1024).unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(resp.header("content-type"), Some("application/json"));
        assert_eq!(resp.body, b"{\"ok\":true}");

        let payload: Vec<u8> = (0..=255).collect();
        let raw = encode_binary_response(200, &payload);
        let resp = read_response(&mut &raw[..], 1024).unwrap();
        assert_eq!(resp.body, payload);
        assert_eq!(
            resp.header("content-type"),
            Some("application/octet-stream")
        );
    }

    #[test]
    fn read_response_handles_eof_framing_and_bounds() {
        // No Content-Length: body framed by EOF.
        let raw = b"HTTP/1.1 200 OK\r\n\r\nhello";
        let resp = read_response(&mut &raw[..], 1024).unwrap();
        assert_eq!(resp.body, b"hello");

        // Oversized declared body rejected before reading it.
        let raw = b"HTTP/1.1 200 OK\r\nContent-Length: 99999\r\n\r\n";
        assert!(read_response(&mut &raw[..], 1024)
            .unwrap_err()
            .contains("exceeds"));

        // Truncated body is an error, not a short read.
        let raw = b"HTTP/1.1 200 OK\r\nContent-Length: 10\r\n\r\nshort";
        assert!(read_response(&mut &raw[..], 1024)
            .unwrap_err()
            .contains("mid-response"));

        // Malformed status lines are errors.
        for raw in [&b"SPDY/3 200 OK\r\n\r\n"[..], b"HTTP/1.1 abc OK\r\n\r\n"] {
            assert!(read_response(&mut &raw[..], 1024).is_err(), "{raw:?}");
        }
    }
}
