//! Detect-and-retry recovery: turn bound-violation telemetry into a serving
//! verdict.
//!
//! Bounded activations double as fault detectors: every clamped value is
//! evidence that something corrupted the forward pass (see
//! `fitact_nn::trace`). This module supplies the pieces the worker loop
//! composes into a recovery story, mirroring the checkpoint-resumed campaign
//! engine (`fitact_faults::CheckpointCache`) on the serving side:
//!
//! 1. [`forward_traced`] runs a batch forward under a
//!    [`ViolationTrace`], optionally snapshotting every top-level layer
//!    boundary the way `CheckpointCache` snapshots clean activations,
//! 2. [`last_clean_boundary`] locates the resume point from the per-boundary
//!    violation totals,
//! 3. the worker re-executes from that boundary with
//!    `Network::forward_from`, compares bit-for-bit, and serves the verdict
//!    (see `docs/recovery.md` for the full state machine).
//!
//! The policy knob is [`RetryPolicy`]; with the default
//! [`RetryPolicy::Off`] nothing here changes a response byte.

use fitact_nn::trace::{self, ViolationTrace};
use fitact_nn::{Mode, Network, NnError};
use fitact_tensor::Tensor;

/// What the server does when a batch's violation trace crosses the
/// configured threshold (`--retry-policy`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RetryPolicy {
    /// Count violations in `/metrics` but never act on them. Responses are
    /// byte-identical to a server without recovery. The default.
    #[default]
    Off,
    /// Additionally count suspect batches (`flagged_batches_total`), still
    /// without touching responses.
    Flag,
    /// Re-execute suspect batches from the last clean layer boundary,
    /// compare bit-for-bit, and serve the re-executed rows (identical bits
    /// when the violation was persistent rather than transient).
    Retry,
}

impl RetryPolicy {
    /// Parses the CLI spelling (`off` / `flag` / `retry`).
    ///
    /// # Errors
    ///
    /// Returns a usage message naming the accepted values.
    pub fn parse(text: &str) -> Result<Self, String> {
        match text {
            "off" => Ok(RetryPolicy::Off),
            "flag" => Ok(RetryPolicy::Flag),
            "retry" => Ok(RetryPolicy::Retry),
            other => Err(format!(
                "unknown retry policy `{other}` (expected off, flag or retry)"
            )),
        }
    }

    /// The CLI spelling.
    pub fn as_str(&self) -> &'static str {
        match self {
            RetryPolicy::Off => "off",
            RetryPolicy::Flag => "flag",
            RetryPolicy::Retry => "retry",
        }
    }
}

/// One traced batch forward: the output, and (when requested) the layer
/// boundaries and the violation totals observed entering each boundary.
#[derive(Debug)]
pub struct TracedForward {
    /// The batch logits — bit-identical to an untraced forward.
    pub output: Tensor,
    /// Boundary `k` (the input to top-level layer `k`) for `k in 0..depth`;
    /// empty unless boundaries were requested.
    pub boundaries: Vec<Tensor>,
    /// Violation total observed entering boundary `k`, for `k in 0..=depth`
    /// (the last entry is the whole-batch total); empty unless boundaries
    /// were requested.
    pub layer_totals: Vec<u64>,
}

/// Runs one eval-mode batch forward under `trace` (cleared first, so counts
/// are per-batch). With `snapshot_boundaries`, every top-level layer
/// boundary is cloned — the same snapshots `CheckpointCache` keeps — so a
/// violating batch can be re-executed from its last clean boundary.
///
/// # Errors
///
/// Propagates any forward error unchanged.
pub fn forward_traced(
    network: &mut Network,
    input: &Tensor,
    trace: &mut ViolationTrace,
    snapshot_boundaries: bool,
) -> Result<TracedForward, NnError> {
    trace.clear();
    if !snapshot_boundaries {
        let output = trace::capture(trace, || network.forward(input, Mode::Eval))?;
        return Ok(TracedForward {
            output,
            boundaries: Vec::new(),
            layer_totals: Vec::new(),
        });
    }
    let depth = network.depth();
    let mut boundaries: Vec<Tensor> = Vec::with_capacity(depth);
    let mut layer_totals: Vec<u64> = Vec::with_capacity(depth + 1);
    let output = trace::capture(trace, || {
        network.forward_inspect(input, Mode::Eval, &mut |k, boundary| {
            layer_totals.push(trace::active_total().unwrap_or(0));
            if k < depth {
                boundaries.push(boundary.clone());
            }
        })
    })?;
    Ok(TracedForward {
        output,
        boundaries,
        layer_totals,
    })
}

/// Indices of the top-level layers that carry activation slots — the
/// detection checkpoints a retry can resume from. Computed once per loaded
/// model.
pub fn activation_layer_indices(network: &mut Network) -> Vec<usize> {
    network
        .root_mut()
        .layers_mut()
        .iter_mut()
        .enumerate()
        .filter_map(|(k, layer)| (!layer.activation_slots().is_empty()).then_some(k))
        .collect()
}

/// The boundary to re-execute a suspect batch from.
///
/// The first violating layer `k_v` is the first whose traced total grows —
/// its *input* already carried over-bound values, so the fault struck
/// somewhere after the previous detection checkpoint. Under the
/// single-transient-fault model the input to the last activation layer
/// before `k_v` was certified clean by that layer's own zero count, so the
/// retry resumes there (re-running that layer too, which covers corruption
/// of its own output); with no earlier checkpoint — or no violation at all —
/// the only safe resume point is 0, a full re-execution.
///
/// A sub-bound corruption *before* the resume point is undetectable by
/// construction and survives the retry; that residual is exactly what the
/// canary's measured detection coverage quantifies.
pub fn last_clean_boundary(layer_totals: &[u64], activation_layers: &[usize]) -> usize {
    let first_violating = (1..layer_totals.len())
        .find(|&k| layer_totals[k] > layer_totals[k - 1])
        .map(|k| k - 1);
    match first_violating {
        None => 0,
        Some(k_v) => activation_layers
            .iter()
            .copied()
            .rev()
            .find(|&a| a < k_v)
            .unwrap_or(0),
    }
}

/// Compares two batch outputs row by row, bit-for-bit. Returns
/// `(differing_rows, identical_rows)` — a differing row after a retry is a
/// confirmed transient (the re-execution did not reproduce it), an identical
/// row means the violation is persistent (input-driven, or a fault the
/// resume boundary already contained).
pub fn compare_rows(original: &Tensor, retried: &Tensor, rows: usize) -> (u64, u64) {
    let width = original.numel() / rows.max(1);
    let a = original.as_slice();
    let b = retried.as_slice();
    let mut differing = 0;
    let mut identical = 0;
    for i in 0..rows {
        let range = i * width..(i + 1) * width;
        // Bit-level comparison: -0.0 vs 0.0 or NaN payloads count as a
        // difference, exactly like the identity suites.
        let same = a[range.clone()]
            .iter()
            .zip(&b[range])
            .all(|(x, y)| x.to_bits() == y.to_bits());
        if same {
            identical += 1;
        } else {
            differing += 1;
        }
    }
    (differing, identical)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fitact_nn::layers::{ActivationLayer, Linear, Sequential};
    use fitact_nn::Activation;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn retry_policy_parses_and_round_trips() {
        for (text, policy) in [
            ("off", RetryPolicy::Off),
            ("flag", RetryPolicy::Flag),
            ("retry", RetryPolicy::Retry),
        ] {
            assert_eq!(RetryPolicy::parse(text).unwrap(), policy);
            assert_eq!(policy.as_str(), text);
        }
        assert!(RetryPolicy::parse("maybe").unwrap_err().contains("maybe"));
        assert_eq!(RetryPolicy::default(), RetryPolicy::Off);
    }

    #[test]
    fn last_clean_boundary_picks_the_checkpoint_before_the_first_violation() {
        // Activation layers at 1 and 3; totals grow entering boundary 4, so
        // layer 3 first saw violations and the resume point is layer 1... no:
        // totals[4] > totals[3] means layer 3's *input* was clean-counted and
        // the violation was recorded *by* layer 3 — k_v = 3, resume at 1.
        assert_eq!(last_clean_boundary(&[0, 0, 0, 0, 2, 2], &[1, 3]), 1);
        // Violation recorded by the first activation layer: no earlier
        // checkpoint, full re-execution.
        assert_eq!(last_clean_boundary(&[0, 2, 2, 2, 2, 2], &[0, 2]), 0);
        assert_eq!(last_clean_boundary(&[0, 0, 2, 2], &[1]), 0);
        // No violation anywhere: 0 by convention (callers never retry then).
        assert_eq!(last_clean_boundary(&[0, 0, 0], &[1]), 0);
        assert_eq!(last_clean_boundary(&[], &[]), 0);
    }

    #[test]
    fn compare_rows_is_bitwise() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
        let mut b = a.clone();
        assert_eq!(compare_rows(&a, &b, 2), (0, 2));
        b.as_mut_slice()[3] = 4.5;
        assert_eq!(compare_rows(&a, &b, 2), (1, 1));
        // Sign-of-zero differences count.
        let z1 = Tensor::from_vec(vec![0.0], &[1, 1]).unwrap();
        let z2 = Tensor::from_vec(vec![-0.0], &[1, 1]).unwrap();
        assert_eq!(compare_rows(&z1, &z2, 1), (1, 0));
    }

    /// A hard-bounded test activation so this crate's unit tests need no
    /// dependency on the protection schemes in `fitact` (core).
    #[derive(Debug, Clone)]
    struct ClampAct {
        bound: f32,
    }

    impl Activation for ClampAct {
        fn name(&self) -> &str {
            "clamp"
        }
        fn forward(&mut self, input: &Tensor) -> Result<Tensor, NnError> {
            let bound = self.bound;
            Ok(input.map(|x| if x > 0.0 && x <= bound { x } else { 0.0 }))
        }
        fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor, NnError> {
            Ok(grad_output.clone())
        }
        fn eval_scalar(&self, x: f32, _neuron: usize) -> f32 {
            if x > 0.0 && x <= self.bound {
                x
            } else {
                0.0
            }
        }
        fn count_violations(&self, input: &Tensor) -> u64 {
            let bound = self.bound;
            input.as_slice().iter().filter(|&&x| x > bound).count() as u64
        }
        fn clone_box(&self) -> Box<dyn Activation> {
            Box::new(self.clone())
        }
    }

    /// Wraps an activation and adds a large spike to element 0 of its output
    /// on the first forward only — a deterministic transient fault.
    #[derive(Debug, Clone)]
    struct TransientSpike {
        inner: Box<dyn Activation>,
        fired: bool,
        magnitude: f32,
    }

    impl Activation for TransientSpike {
        fn name(&self) -> &str {
            "transient_spike"
        }
        fn forward(&mut self, input: &Tensor) -> Result<Tensor, NnError> {
            let mut out = self.inner.forward(input)?;
            if !self.fired {
                self.fired = true;
                out.as_mut_slice()[0] += self.magnitude;
            }
            Ok(out)
        }
        fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor, NnError> {
            self.inner.backward(grad_output)
        }
        fn eval_scalar(&self, x: f32, neuron: usize) -> f32 {
            self.inner.eval_scalar(x, neuron)
        }
        fn count_violations(&self, input: &Tensor) -> u64 {
            self.inner.count_violations(input)
        }
        fn clone_box(&self) -> Box<dyn Activation> {
            Box::new(self.clone())
        }
    }

    fn bounded_mlp(rng: &mut StdRng) -> Network {
        Network::new(
            "mlp",
            Sequential::new()
                .with(Box::new(Linear::new(4, 8, rng)))
                .with(Box::new(ActivationLayer::with_activation(
                    "h1",
                    &[8],
                    Box::new(ClampAct { bound: 4.0 }),
                )))
                .with(Box::new(Linear::new(8, 8, rng)))
                .with(Box::new(ActivationLayer::with_activation(
                    "h2",
                    &[8],
                    Box::new(ClampAct { bound: 4.0 }),
                )))
                .with(Box::new(Linear::new(8, 2, rng))),
        )
    }

    #[test]
    fn traced_forward_is_bit_identical_and_counts_nothing_when_clean() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut net = bounded_mlp(&mut rng);
        let x = Tensor::from_vec((0..8).map(|i| i as f32 * 0.1).collect(), &[2, 4]).unwrap();
        let clean = net.forward(&x, Mode::Eval).unwrap();
        let mut trace = ViolationTrace::new();
        let traced = forward_traced(&mut net, &x, &mut trace, true).unwrap();
        assert_eq!(traced.output.as_slice(), clean.as_slice());
        assert_eq!(trace.total(), 0);
        assert_eq!(traced.boundaries.len(), net.depth());
        assert_eq!(traced.layer_totals, vec![0; net.depth() + 1]);
        assert_eq!(activation_layer_indices(&mut net), vec![1, 3]);
    }

    /// The end-to-end recovery semantics, deterministically: a transient
    /// spike inside layer `h1` is detected by `h2`'s violation count, the
    /// resume point is `h1`'s own boundary, and re-execution from the
    /// snapshot reproduces the clean output bit-for-bit.
    #[test]
    fn detect_locate_retry_recovers_a_transient_bitwise() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut net = bounded_mlp(&mut rng);
        let x = Tensor::from_vec((0..8).map(|i| i as f32 * 0.1).collect(), &[2, 4]).unwrap();
        let clean = net.forward(&x, Mode::Eval).unwrap();

        // Install the one-shot fault inside h1 (top-level layer 1).
        let slots = net.activation_slots();
        let spike = TransientSpike {
            inner: Box::new(ClampAct { bound: 4.0 }),
            fired: false,
            magnitude: 1000.0,
        };
        let h1 = slots
            .into_iter()
            .find(|s| s.label() == "h1")
            .expect("h1 slot");
        h1.replace_activation(Box::new(spike));

        let mut trace = ViolationTrace::new();
        let traced = forward_traced(&mut net, &x, &mut trace, true).unwrap();
        assert!(trace.total() > 0, "the spike must be detected downstream");
        assert_ne!(traced.output.as_slice(), clean.as_slice());
        // h2 (layer 3) saw the violations, h1 (layer 1) counted clean input.
        let by_label: Vec<_> = trace
            .slots()
            .iter()
            .map(|s| (s.label.as_str(), s.violations))
            .collect();
        assert_eq!(by_label[0], ("h1", 0));
        assert!(by_label[1].0 == "h2" && by_label[1].1 > 0);

        let resume = last_clean_boundary(&traced.layer_totals, &[1, 3]);
        assert_eq!(resume, 1, "resume at h1, whose input was certified clean");

        // The spike has fired; re-execution from the snapshot is clean and
        // must reproduce the original forward bit-for-bit.
        let retried = net
            .forward_from(resume, &traced.boundaries[resume], Mode::Eval)
            .unwrap();
        assert_eq!(retried.as_slice(), clean.as_slice());
        let (transient, persistent) = compare_rows(&traced.output, &retried, 2);
        assert!(transient >= 1, "at least the spiked row differs");
        assert_eq!(transient + persistent, 2);
    }

    #[test]
    fn persistent_violations_reproduce_identically_on_retry() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut net = bounded_mlp(&mut rng);
        // An out-of-distribution input large enough to violate h1's bound on
        // every forward: the retry reproduces the same bits.
        let x = Tensor::from_vec(vec![50.0; 8], &[2, 4]).unwrap();
        let mut trace = ViolationTrace::new();
        let traced = forward_traced(&mut net, &x, &mut trace, true).unwrap();
        if trace.total() == 0 {
            // Random weights could map 50s below the bound; make the input
            // violate h1 directly instead of relying on the seed.
            panic!("seed no longer produces violations; adjust the test input");
        }
        let resume = last_clean_boundary(&traced.layer_totals, &[1, 3]);
        let retried = net
            .forward_from(resume, &traced.boundaries[resume], Mode::Eval)
            .unwrap();
        assert_eq!(compare_rows(&traced.output, &retried, 2), (0, 2));
    }

    #[test]
    fn activation_layer_indices_sees_only_slot_layers() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut plain = Network::new(
            "linear-only",
            Sequential::new().with(Box::new(Linear::new(4, 2, &mut rng))),
        );
        assert!(activation_layer_indices(&mut plain).is_empty());
    }
}
