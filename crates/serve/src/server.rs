//! The HTTP server: model loading, worker pool, routing, admin plane.
//!
//! # Threading model
//!
//! * one **accept** thread owns the `TcpListener`,
//! * one short-lived **connection** thread per accepted socket parses the
//!   request, enqueues rows and waits on a private channel for its results,
//! * `workers` long-lived **worker** threads drain the [`BatchQueue`],
//!   stage each micro-batch into a [`TensorArena`] slot (one contiguous
//!   row copy per request — the same staging discipline as
//!   `Network::evaluate`) and run one eval-mode forward per batch.
//!
//! Workers wrap their loop in [`fitact_tensor::matmul::serial_scope`]: the
//! worker pool *is* the coarse parallel decomposition, so the matmul
//! kernel's internal row fan-out is disabled to avoid oversubscription —
//! which does not change results, because the threaded split is
//! bit-identical to the serial loop.
//!
//! # Bit-identity
//!
//! A response's logits are bit-identical to `Network::forward` on that
//! sample alone, no matter which micro-batch the scheduler packed it into:
//! eval-mode layers are row-local, and the one batch-shaped matmul in the
//! forward path (`Linear`, `x·Wᵀ`) always takes the packed kernel whose
//! per-row arithmetic is independent of the row count (pinned by
//! `nt_rows_are_independent_of_row_count` in `fitact_tensor` and
//! `forward_is_batch_invariant` in `fitact_nn`). See `docs/serving.md`.
//!
//! # Hot reload
//!
//! `POST /admin/reload` re-reads the artifact from disk, validates it
//! (decode + instantiate) and atomically swaps it in under a generation
//! counter; workers notice the bumped generation at their next batch and
//! re-clone the template network. In-flight batches finish on the old
//! model — a request is never served half-and-half.

use crate::batcher::{BatchQueue, PendingRow, RowOutput, RowResult};
use crate::http::{read_request, write_response, Request};
use crate::metrics::{Metrics, MetricsSnapshot};
use crate::recovery::{self, RetryPolicy};
use crate::ServeError;
use fitact_data::DataSpec;
use fitact_faults::CanaryInjector;
use fitact_io::{JsonValue, ModelArtifact};
use fitact_nn::spec::LayerSpec;
use fitact_nn::{Mode, Network, ViolationTrace};
use fitact_tensor::matmul::serial_scope;
use fitact_tensor::{Tensor, TensorArena};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Base RNG seed for the canary injector; XORed with the model generation so
/// each reload gets a fresh, still-reproducible fault stream.
const CANARY_SEED: u64 = 0x00F1_7AC7;

/// Depth of the canary mirror queue. Shadow batches beyond this are dropped
/// (and counted) rather than back-pressuring live traffic.
const CANARY_QUEUE_DEPTH: usize = 64;

/// Server configuration. `Default` gives the documented CLI defaults.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeConfig {
    /// Bind address; port 0 picks an ephemeral port (tests, CI).
    pub addr: String,
    /// Maximum rows coalesced into one forward pass.
    pub max_batch: usize,
    /// How long the oldest queued row may wait for its batch to fill.
    pub max_wait: Duration,
    /// Number of worker threads (each owns a warm clone of the network).
    pub workers: usize,
    /// Per-sample input shape override; by default it is inferred from the
    /// artifact's dataset metadata or its first `Linear` layer.
    pub input_shape: Option<Vec<usize>>,
    /// Maximum accepted request-body size in bytes.
    pub max_body_bytes: usize,
    /// Maximum rows waiting in the batch queue before new requests are
    /// rejected with 503 (backpressure instead of unbounded latency).
    pub max_queue: usize,
    /// Maximum concurrently served connections; excess connections are
    /// answered 503 inline instead of spawning a thread each.
    pub max_connections: usize,
    /// What to do when a batch's violation trace crosses
    /// `violation_threshold` (`--retry-policy`). The default
    /// [`RetryPolicy::Off`] keeps responses byte-identical to a server
    /// without recovery.
    pub retry_policy: RetryPolicy,
    /// Minimum per-batch violation count that makes a batch suspect
    /// (`--violation-threshold`; clamped to at least 1).
    pub violation_threshold: u64,
    /// Per-bit fault rate for the canary shadow replica (`--canary-rate`);
    /// 0 disables the canary entirely.
    pub canary_rate: f64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            max_batch: 8,
            max_wait: Duration::from_millis(5),
            workers: 2,
            input_shape: None,
            max_body_bytes: 8 * 1024 * 1024,
            max_queue: 1024,
            max_connections: 256,
            retry_policy: RetryPolicy::Off,
            violation_threshold: 1,
            canary_rate: 0.0,
        }
    }
}

/// A model instance ready to serve: the instantiated network template plus
/// everything request validation needs.
#[derive(Debug)]
struct LoadedModel {
    template: Network,
    input_shape: Vec<usize>,
    features: usize,
    name: String,
    scheme: Option<String>,
    num_parameters: usize,
    /// Top-level layers carrying activation slots — the detection
    /// checkpoints the retry loop can resume from.
    activation_layers: Vec<usize>,
}

fn load_model(path: &Path, override_shape: Option<&[usize]>) -> Result<LoadedModel, ServeError> {
    let artifact = ModelArtifact::load(path)?;
    let mut template = artifact.instantiate()?;
    let activation_layers = recovery::activation_layer_indices(&mut template);
    let input_shape = match override_shape {
        Some(shape) if !shape.is_empty() => shape.to_vec(),
        Some(_) => return Err(ServeError::InvalidConfig("input shape is empty".into())),
        None => infer_input_shape(&artifact)?,
    };
    let features = input_shape.iter().product::<usize>();
    if features == 0 {
        return Err(ServeError::InvalidConfig(format!(
            "input shape {input_shape:?} has zero elements"
        )));
    }
    Ok(LoadedModel {
        features,
        input_shape,
        name: artifact.name.clone(),
        scheme: artifact.scheme.map(|s| s.name().to_owned()),
        num_parameters: artifact.num_parameters(),
        activation_layers,
        template,
    })
}

/// Per-sample input shape: the artifact's dataset metadata when present
/// (every `fitact train` artifact carries it), else the in-features of the
/// leading `Linear` layer.
fn infer_input_shape(artifact: &ModelArtifact) -> Result<Vec<usize>, ServeError> {
    if let Some(spec) = DataSpec::from_meta(|k| artifact.meta(k)) {
        return Ok(spec.input_shape());
    }
    fn first_linear(specs: &[LayerSpec]) -> Option<usize> {
        for spec in specs {
            match spec {
                LayerSpec::Linear { in_features, .. } => return Some(*in_features),
                // Shape-preserving layers a model may start with.
                LayerSpec::Flatten | LayerSpec::Dropout { .. } | LayerSpec::Activation { .. } => {}
                LayerSpec::Sequential(children) => return first_linear(children),
                // Spatial layers need H×W, which the topology does not carry.
                _ => return None,
            }
        }
        None
    }
    first_linear(&artifact.layers)
        .map(|in_features| vec![in_features])
        .ok_or_else(|| {
            ServeError::InvalidConfig(
                "cannot infer the model input shape (no dataset metadata, no leading Linear \
                 layer); pass an explicit --input-shape"
                    .into(),
            )
        })
}

/// Everything shared between the accept, connection and worker threads.
#[derive(Debug)]
struct Shared {
    queue: BatchQueue,
    metrics: Metrics,
    model: RwLock<Arc<LoadedModel>>,
    generation: AtomicU64,
    model_path: PathBuf,
    input_shape_override: Option<Vec<usize>>,
    stopping: AtomicBool,
    addr: SocketAddr,
    max_body: usize,
    workers: usize,
    /// Live connection-thread count, bounded by `max_connections`.
    connections: AtomicUsize,
    max_connections: usize,
    retry_policy: RetryPolicy,
    /// Per-batch violation count at which a batch becomes suspect (≥ 1).
    violation_threshold: u64,
    /// Per-bit fault rate of the canary shadow replica (0 = no canary).
    canary_rate: f64,
}

impl Shared {
    fn current_model(&self) -> Arc<LoadedModel> {
        Arc::clone(&self.model.read().expect("model lock poisoned"))
    }

    /// Idempotent graceful-shutdown trigger: stop accepting, let workers
    /// drain the queue, unblock the accept thread.
    fn begin_shutdown(&self) {
        if self.stopping.swap(true, Ordering::SeqCst) {
            return;
        }
        self.queue.shutdown();
        // The accept thread blocks in `accept`; a throwaway connection wakes
        // it so it can observe the flag.
        let _ = TcpStream::connect(self.addr);
    }
}

/// A running inference server. Dropping the handle does **not** stop the
/// server; call [`Server::shutdown`] (or hit `POST /admin/shutdown`) and
/// then [`Server::join`].
#[derive(Debug)]
pub struct Server {
    shared: Arc<Shared>,
    addr: SocketAddr,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    /// The canary shadow thread (present when `canary_rate > 0`); exits on
    /// its own once every worker has dropped its mirror sender.
    canary: Option<JoinHandle<()>>,
}

impl Server {
    /// Loads the artifact at `model_path` and starts serving.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Artifact`] when the artifact fails to decode or
    /// instantiate (a corrupt file is a typed error, never a panic),
    /// [`ServeError::InvalidConfig`] for unusable configuration and
    /// [`ServeError::Io`] for bind failures.
    pub fn start(model_path: impl AsRef<Path>, config: &ServeConfig) -> Result<Server, ServeError> {
        if config.workers == 0 {
            return Err(ServeError::InvalidConfig("workers must be non-zero".into()));
        }
        if config.max_batch == 0 {
            return Err(ServeError::InvalidConfig(
                "max_batch must be non-zero".into(),
            ));
        }
        if config.max_queue == 0 || config.max_connections == 0 {
            return Err(ServeError::InvalidConfig(
                "max_queue and max_connections must be non-zero".into(),
            ));
        }
        if !(config.canary_rate.is_finite() && (0.0..=1.0).contains(&config.canary_rate)) {
            return Err(ServeError::InvalidConfig(format!(
                "canary_rate must be a per-bit probability in [0, 1], got {}",
                config.canary_rate
            )));
        }
        let model_path = model_path.as_ref().to_path_buf();
        let model = load_model(&model_path, config.input_shape.as_deref())?;
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            queue: BatchQueue::new(config.max_batch, config.max_wait, config.max_queue),
            metrics: Metrics::new(config.max_batch),
            model: RwLock::new(Arc::new(model)),
            generation: AtomicU64::new(1),
            model_path,
            input_shape_override: config.input_shape.clone(),
            stopping: AtomicBool::new(false),
            addr,
            max_body: config.max_body_bytes,
            workers: config.workers,
            connections: AtomicUsize::new(0),
            max_connections: config.max_connections,
            retry_policy: config.retry_policy,
            violation_threshold: config.violation_threshold.max(1),
            canary_rate: config.canary_rate,
        });
        // The mirror senders live only inside worker closures: when the last
        // worker exits, the channel disconnects and the canary thread ends.
        let (canary_tx, canary) = if config.canary_rate > 0.0 {
            let (tx, rx) = mpsc::sync_channel::<CanaryJob>(CANARY_QUEUE_DEPTH);
            let canary_shared = Arc::clone(&shared);
            let handle = std::thread::Builder::new()
                .name("fitact-serve-canary".into())
                .spawn(move || canary_loop(&canary_shared, &rx))
                .expect("canary thread spawns");
            (Some(tx), Some(handle))
        } else {
            (None, None)
        };
        let workers = (0..config.workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                let canary_tx = canary_tx.clone();
                std::thread::Builder::new()
                    .name(format!("fitact-serve-worker-{i}"))
                    .spawn(move || worker_loop(&shared, canary_tx))
                    .expect("worker thread spawns")
            })
            .collect();
        let accept = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("fitact-serve-accept".into())
                .spawn(move || accept_loop(&listener, &shared))
                .expect("accept thread spawns")
        };
        Ok(Server {
            shared,
            addr,
            accept: Some(accept),
            workers,
            canary,
        })
    }

    /// The bound address (resolves the ephemeral port of `addr: …:0`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Triggers graceful shutdown: stop accepting, drain queued requests,
    /// stop workers. Idempotent; returns immediately — use [`Server::join`]
    /// to wait.
    pub fn shutdown(&self) {
        self.shared.begin_shutdown();
    }

    /// Blocks until the server has shut down (via [`Server::shutdown`] or
    /// `POST /admin/shutdown`) and every worker has exited, then returns the
    /// final metrics snapshot.
    pub fn join(mut self) -> MetricsSnapshot {
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        // All mirror senders are gone once the workers have exited, so the
        // canary sees a disconnect and drains to completion.
        if let Some(canary) = self.canary.take() {
            let _ = canary.join();
        }
        self.shared.metrics.snapshot()
    }

    /// The live metrics registry (what `/metrics` snapshots).
    pub fn metrics(&self) -> MetricsSnapshot {
        self.shared.metrics.snapshot()
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    for stream in listener.incoming() {
        if shared.stopping.load(Ordering::SeqCst) {
            break;
        }
        let Ok(mut stream) = stream else { continue };
        // Backpressure at the connection level: beyond the cap (or if the
        // OS refuses a thread), answer 503 inline from the accept thread
        // instead of letting the socket die without a response. The
        // handler work per connection is bounded, so this also bounds the
        // thread count.
        if shared.connections.load(Ordering::Acquire) >= shared.max_connections {
            let _ = write_response(
                &mut stream,
                503,
                &error_json("server is at its connection limit; retry").to_string(),
            );
            continue;
        }
        shared.connections.fetch_add(1, Ordering::AcqRel);
        let conn_shared = Arc::clone(shared);
        let spawned = std::thread::Builder::new()
            .name("fitact-serve-conn".into())
            .spawn(move || {
                // Decrement even if the handler panics.
                struct Guard<'a>(&'a AtomicUsize);
                impl Drop for Guard<'_> {
                    fn drop(&mut self) {
                        self.0.fetch_sub(1, Ordering::AcqRel);
                    }
                }
                let _guard = Guard(&conn_shared.connections);
                handle_connection(&conn_shared, stream);
            });
        if let Err(e) = spawned {
            // The closure (and the stream with it) was dropped; all that is
            // left is restoring the counter. `e` is an OS resource failure.
            shared.connections.fetch_sub(1, Ordering::AcqRel);
            let _ = e;
        }
    }
}

/// One live batch mirrored to the canary shadow replica.
struct CanaryJob {
    input: Tensor,
    generation: u64,
}

fn worker_loop(shared: &Arc<Shared>, canary: Option<mpsc::SyncSender<CanaryJob>>) {
    serial_scope(|| {
        let mut generation = shared.generation.load(Ordering::Acquire);
        let mut model = shared.current_model();
        let mut network = model.template.clone();
        let mut arena = TensorArena::new();
        let mut dims: Vec<usize> = Vec::new();
        let mut trace = ViolationTrace::new();
        // Boundary snapshots are only worth their clones when a retry could
        // consume them.
        let snapshot_boundaries = shared.retry_policy == RetryPolicy::Retry;
        while let Some(batch) = shared.queue.next_batch() {
            let current = shared.generation.load(Ordering::Acquire);
            if current != generation {
                generation = current;
                model = shared.current_model();
                network = model.template.clone();
            }
            // Rows were length-validated against the model that was current
            // at enqueue time; a hot reload between then and now may have
            // changed the feature count. Those rows get a typed error — a
            // length-mismatched copy below would panic and kill the worker.
            let (batch, stale): (Vec<_>, Vec<_>) = batch
                .into_iter()
                .partition(|row| row.input.len() == model.features);
            for row in stale {
                shared.metrics.on_error();
                let _ = row.responder.send(RowResult {
                    row: row.row,
                    outcome: Err(format!(
                        "the model was reloaded with a different input shape \
                         ({} features) while this request was queued; resubmit",
                        model.features
                    )),
                    batch_size: 0,
                });
            }
            if batch.is_empty() {
                continue;
            }
            let n = batch.len();
            shared.metrics.on_batch(n);
            // Stage the batch: one warm TensorArena slot, one contiguous
            // row copy per request — zero allocations once the shapes have
            // stabilised, exactly like `Network::evaluate`'s staging.
            let mut staging = arena.take(0);
            dims.clear();
            dims.push(n);
            dims.extend_from_slice(&model.input_shape);
            staging.ensure_shape(&dims);
            let features = model.features;
            {
                let dst = staging.as_mut_slice();
                for (i, row) in batch.iter().enumerate() {
                    dst[i * features..(i + 1) * features].copy_from_slice(&row.input);
                }
            }
            // Mirror the staged batch to the canary shadow replica before
            // executing it; a full mirror queue drops the copy (counted)
            // rather than delaying live traffic.
            if let Some(tx) = &canary {
                match tx.try_send(CanaryJob {
                    input: staging.clone(),
                    generation,
                }) {
                    Ok(()) => {}
                    Err(mpsc::TrySendError::Full(_)) => shared.metrics.on_canary_dropped(),
                    Err(mpsc::TrySendError::Disconnected(_)) => {}
                }
            }
            match recovery::forward_traced(&mut network, &staging, &mut trace, snapshot_boundaries)
            {
                Ok(mut traced) => {
                    shared.metrics.on_trace(&trace);
                    if trace.total() >= shared.violation_threshold {
                        match shared.retry_policy {
                            RetryPolicy::Off => {}
                            RetryPolicy::Flag => shared.metrics.on_flagged(),
                            RetryPolicy::Retry => {
                                let resume = recovery::last_clean_boundary(
                                    &traced.layer_totals,
                                    &model.activation_layers,
                                );
                                // Re-execute from the snapshot *without* trace
                                // capture, so the retry never double-counts
                                // into the violation telemetry.
                                if let Ok(retried) = network.forward_from(
                                    resume,
                                    &traced.boundaries[resume],
                                    Mode::Eval,
                                ) {
                                    let (transient, persistent) =
                                        recovery::compare_rows(&traced.output, &retried, n);
                                    shared.metrics.on_retry(transient, persistent);
                                    if transient > 0 {
                                        // The violation did not reproduce:
                                        // serve the re-execution (identical
                                        // rows carry identical bits anyway).
                                        traced.output = retried;
                                    }
                                }
                            }
                        }
                    }
                    let logits = traced.output;
                    let width = logits.numel() / n.max(1);
                    let classes = logits.argmax_rows().unwrap_or_default();
                    let values = logits.as_slice();
                    for (i, row) in batch.iter().enumerate() {
                        let outcome = RowOutput {
                            logits: values[i * width..(i + 1) * width].to_vec(),
                            class: classes.get(i).copied().unwrap_or(0),
                        };
                        shared.metrics.on_response(row.enqueued.elapsed());
                        let _ = row.responder.send(RowResult {
                            row: row.row,
                            outcome: Ok(outcome),
                            batch_size: n,
                        });
                    }
                }
                Err(e) => {
                    let message = format!("forward pass failed: {e}");
                    for row in &batch {
                        shared.metrics.on_error();
                        let _ = row.responder.send(RowResult {
                            row: row.row,
                            outcome: Err(message.clone()),
                            batch_size: n,
                        });
                    }
                }
            }
            arena.put(0, staging);
        }
    });
}

/// The canary shadow replica: re-runs a copy of live traffic through a
/// fault-injected clone of the worker network and measures how often the
/// violation telemetry catches the injected faults — a live estimate of the
/// protection scheme's detection coverage, reported under `/metrics`
/// `canary`. Never touches live responses.
fn canary_loop(shared: &Arc<Shared>, jobs: &mpsc::Receiver<CanaryJob>) {
    serial_scope(|| {
        let bits: Vec<u32> = (0..32).collect();
        let mut generation = 0u64;
        let mut model = shared.current_model();
        let mut clean = model.template.clone();
        let mut faulty = model.template.clone();
        let mut injector: Option<CanaryInjector> = None;
        let mut seen_faults = 0u64;
        let mut trace = ViolationTrace::new();
        while let Ok(job) = jobs.recv() {
            if injector.is_none() || job.generation != generation {
                generation = job.generation;
                model = shared.current_model();
                clean = model.template.clone();
                faulty = model.template.clone();
                injector = Some(CanaryInjector::install(
                    &mut faulty,
                    shared.canary_rate,
                    &bits,
                    CANARY_SEED ^ generation,
                ));
                seen_faults = 0;
            }
            let Ok(clean_out) = clean.forward(&job.input, Mode::Eval) else {
                continue;
            };
            let Ok(traced) = recovery::forward_traced(&mut faulty, &job.input, &mut trace, true)
            else {
                continue;
            };
            let total_faults = injector
                .as_ref()
                .expect("injector installed above")
                .faults_injected();
            let injected = total_faults - seen_faults;
            seen_faults = total_faults;
            let detected = trace.total();
            shared.metrics.on_canary_batch(injected, detected);
            // Exercise the same recovery path the live workers run, against
            // ground truth: the retry resumes on the *clean* replica, which
            // models a transient that does not recur on re-execution.
            if shared.retry_policy == RetryPolicy::Retry && detected >= shared.violation_threshold {
                let rows = job.input.dims().first().copied().unwrap_or(1);
                let resume =
                    recovery::last_clean_boundary(&traced.layer_totals, &model.activation_layers);
                if let Ok(retried) =
                    clean.forward_from(resume, &traced.boundaries[resume], Mode::Eval)
                {
                    // vs. ground truth: a mismatch means a fault upstream of
                    // the resume point slipped under every bound.
                    let (mismatch_rows, clean_match_rows) =
                        recovery::compare_rows(&clean_out, &retried, rows);
                    // vs. the faulted forward: differing rows are the
                    // confirmed transients the retry actually repaired.
                    let (transient_rows, _) =
                        recovery::compare_rows(&traced.output, &retried, rows);
                    shared
                        .metrics
                        .on_canary_retry(clean_match_rows, mismatch_rows, transient_rows);
                }
            }
        }
    });
}

fn handle_connection(shared: &Arc<Shared>, mut stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(30)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(30)));
    let request = match read_request(&mut stream, shared.max_body) {
        Ok(Some(request)) => request,
        Ok(None) => return,
        Err(message) => {
            let _ = write_response(&mut stream, 400, &error_json(&message).to_string());
            return;
        }
    };
    let (status, body, then_shutdown) = route(shared, &request);
    let _ = write_response(&mut stream, status, &body.to_string());
    if then_shutdown {
        // The response is on the wire before the listener goes away, so the
        // admin client always learns the shutdown was accepted.
        shared.begin_shutdown();
    }
}

fn error_json(message: &str) -> JsonValue {
    JsonValue::Object(vec![(
        "error".into(),
        JsonValue::String(message.to_owned()),
    )])
}

fn route(shared: &Arc<Shared>, request: &Request) -> (u16, JsonValue, bool) {
    match (request.method.as_str(), request.target.as_str()) {
        ("GET", "/healthz") => (200, health_json(shared), false),
        ("GET", "/metrics") => (200, shared.metrics.snapshot().to_json(), false),
        ("POST", "/predict") => {
            let (status, body) = predict(shared, &request.body);
            (status, body, false)
        }
        ("POST", "/admin/reload") => {
            let (status, body) = reload(shared);
            (status, body, false)
        }
        ("POST", "/admin/metrics/reset") => {
            // Empties the latency ring so post-reload (or post-warmup)
            // percentiles are not polluted by earlier traffic; cumulative
            // counters are deliberately left untouched.
            shared.metrics.reset_latency_window();
            (
                200,
                JsonValue::Object(vec![(
                    "status".into(),
                    JsonValue::String("latency window reset".into()),
                )]),
                false,
            )
        }
        ("POST", "/admin/shutdown") => (
            200,
            JsonValue::Object(vec![(
                "status".into(),
                JsonValue::String("shutting down".into()),
            )]),
            true,
        ),
        (
            _,
            "/healthz"
            | "/metrics"
            | "/predict"
            | "/admin/reload"
            | "/admin/metrics/reset"
            | "/admin/shutdown",
        ) => (
            405,
            error_json(&format!("method {} not allowed here", request.method)),
            false,
        ),
        (_, target) => (404, error_json(&format!("no route for `{target}`")), false),
    }
}

fn health_json(shared: &Arc<Shared>) -> JsonValue {
    let model = shared.current_model();
    JsonValue::Object(vec![
        ("status".into(), JsonValue::String("ok".into())),
        ("model".into(), JsonValue::String(model.name.clone())),
        (
            "scheme".into(),
            model
                .scheme
                .clone()
                .map(JsonValue::String)
                .unwrap_or(JsonValue::Null),
        ),
        (
            "input_shape".into(),
            JsonValue::Array(
                model
                    .input_shape
                    .iter()
                    .map(|&d| JsonValue::Number(d as f64))
                    .collect(),
            ),
        ),
        (
            "num_parameters".into(),
            JsonValue::Number(model.num_parameters as f64),
        ),
        (
            "generation".into(),
            JsonValue::Number(shared.generation.load(Ordering::Acquire) as f64),
        ),
        ("workers".into(), JsonValue::Number(shared.workers as f64)),
        (
            "queue_depth".into(),
            JsonValue::Number(shared.queue.depth() as f64),
        ),
        (
            "max_batch".into(),
            JsonValue::Number(shared.queue.max_batch() as f64),
        ),
    ])
}

/// Parses a predict body into flattened sample rows. Accepts
/// `{"inputs": [[…], …]}` (a batch) or `{"input": […]}` (one sample).
fn parse_rows(body: &[u8], features: usize) -> Result<Vec<Vec<f32>>, String> {
    let text = std::str::from_utf8(body).map_err(|_| "body is not UTF-8".to_owned())?;
    let value = JsonValue::parse(text).map_err(|e| format!("invalid JSON body: {e}"))?;
    let rows_json: Vec<&JsonValue> = if let Some(inputs) = value.get("inputs") {
        inputs
            .as_array()
            .ok_or("`inputs` must be an array of sample rows")?
            .iter()
            .collect()
    } else if let Some(input) = value.get("input") {
        vec![input]
    } else {
        return Err("body must carry `inputs` (batch) or `input` (one sample)".into());
    };
    if rows_json.is_empty() {
        return Err("`inputs` is empty".into());
    }
    let mut rows = Vec::with_capacity(rows_json.len());
    for (i, row_json) in rows_json.iter().enumerate() {
        let numbers = row_json
            .as_array()
            .ok_or_else(|| format!("row {i} is not an array"))?;
        if numbers.len() != features {
            return Err(format!(
                "row {i} has {} values but the model takes {features}",
                numbers.len()
            ));
        }
        let mut row = Vec::with_capacity(features);
        for (j, n) in numbers.iter().enumerate() {
            let v = n
                .as_f64()
                .ok_or_else(|| format!("row {i} value {j} is not a number"))?;
            row.push(v as f32);
        }
        rows.push(row);
    }
    Ok(rows)
}

fn predict(shared: &Arc<Shared>, body: &[u8]) -> (u16, JsonValue) {
    if shared.stopping.load(Ordering::SeqCst) {
        return (503, error_json("server is shutting down"));
    }
    let model = shared.current_model();
    let rows = match parse_rows(body, model.features) {
        Ok(rows) => rows,
        Err(message) => return (400, error_json(&message)),
    };
    let n = rows.len();
    let (tx, rx) = mpsc::channel();
    let enqueued = Instant::now();
    let pending: Vec<PendingRow> = rows
        .into_iter()
        .enumerate()
        .map(|(row, input)| PendingRow {
            input,
            row,
            enqueued,
            responder: tx.clone(),
        })
        .collect();
    drop(tx);
    match shared.queue.push(pending) {
        Ok(()) => {}
        Err(crate::batcher::PushRejected::ShuttingDown(_)) => {
            return (503, error_json("server is shutting down"));
        }
        Err(crate::batcher::PushRejected::Overloaded(_)) => {
            return (503, error_json("server is overloaded (queue full); retry"));
        }
    }
    shared.metrics.on_rows_accepted(n);
    let mut results: Vec<Option<RowResult>> = (0..n).map(|_| None).collect();
    for _ in 0..n {
        match rx.recv_timeout(Duration::from_secs(60)) {
            Ok(result) => {
                let slot = result.row;
                results[slot] = Some(result);
            }
            Err(_) => return (500, error_json("timed out waiting for execution")),
        }
    }
    let mut outputs = Vec::with_capacity(n);
    let mut classes = Vec::with_capacity(n);
    let mut batch_sizes = Vec::with_capacity(n);
    for result in results.into_iter().flatten() {
        match result.outcome {
            Ok(output) => {
                outputs.push(JsonValue::Array(
                    output
                        .logits
                        .iter()
                        .map(|&v| JsonValue::Number(f64::from(v)))
                        .collect(),
                ));
                classes.push(JsonValue::Number(output.class as f64));
                batch_sizes.push(JsonValue::Number(result.batch_size as f64));
            }
            Err(message) => return (500, error_json(&message)),
        }
    }
    (
        200,
        JsonValue::Object(vec![
            ("model".into(), JsonValue::String(model.name.clone())),
            ("outputs".into(), JsonValue::Array(outputs)),
            ("classes".into(), JsonValue::Array(classes)),
            ("batch_sizes".into(), JsonValue::Array(batch_sizes)),
        ]),
    )
}

fn reload(shared: &Arc<Shared>) -> (u16, JsonValue) {
    match load_model(&shared.model_path, shared.input_shape_override.as_deref()) {
        Ok(model) => {
            let num_parameters = model.num_parameters;
            *shared.model.write().expect("model lock poisoned") = Arc::new(model);
            let generation = shared.generation.fetch_add(1, Ordering::AcqRel) + 1;
            shared.metrics.on_reload();
            (
                200,
                JsonValue::Object(vec![
                    ("status".into(), JsonValue::String("reloaded".into())),
                    ("generation".into(), JsonValue::Number(generation as f64)),
                    (
                        "num_parameters".into(),
                        JsonValue::Number(num_parameters as f64),
                    ),
                ]),
            )
        }
        Err(e) => (500, error_json(&format!("reload failed: {e}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_rows_accepts_batch_and_single_forms() {
        let rows = parse_rows(br#"{"inputs": [[1, 2], [3, 4]]}"#, 2).unwrap();
        assert_eq!(rows, vec![vec![1.0, 2.0], vec![3.0, 4.0]]);
        let rows = parse_rows(br#"{"input": [5, 6]}"#, 2).unwrap();
        assert_eq!(rows, vec![vec![5.0, 6.0]]);
    }

    #[test]
    fn parse_rows_rejects_bad_bodies() {
        for (body, needle) in [
            (&b"not json"[..], "invalid JSON"),
            (br#"{"other": 1}"#, "must carry"),
            (br#"{"inputs": []}"#, "empty"),
            (br#"{"inputs": [1]}"#, "not an array"),
            (br#"{"inputs": [[1]]}"#, "the model takes 2"),
            (br#"{"inputs": [["x", 1]]}"#, "not a number"),
            (b"\xff\xfe", "UTF-8"),
        ] {
            let err = parse_rows(body, 2).unwrap_err();
            assert!(err.contains(needle), "{err}");
        }
    }

    #[test]
    fn input_shape_inference_prefers_dataset_metadata() {
        use fitact_nn::layers::{Linear, Sequential};
        use fitact_nn::Network;
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(0);
        let net = Network::new(
            "m",
            Sequential::new().with(Box::new(Linear::new(4, 2, &mut rng))),
        );
        let mut artifact = ModelArtifact::capture(&net).unwrap();
        // Without metadata: the leading Linear wins.
        assert_eq!(infer_input_shape(&artifact).unwrap(), vec![4]);
        // With dataset metadata: the recorded spec wins.
        for (k, v) in DataSpec::synthetic_cifar(10, 8, 1).to_meta() {
            artifact.set_meta(k, v);
        }
        assert_eq!(infer_input_shape(&artifact).unwrap(), vec![3, 32, 32]);
    }
}
