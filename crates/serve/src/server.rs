//! The HTTP server: model loading, event-driven connection layer, worker
//! pool, routing, admin plane.
//!
//! # Threading model
//!
//! * one **event-loop** thread owns the listener and every connection
//!   socket: non-blocking accept, incremental request parsing, response
//!   writing and all timeouts run through one readiness poller
//!   (`crate::poller` — epoll on Linux, poll(2) elsewhere on Unix),
//! * a small **handler** pool executes routed requests (predict blocks on
//!   its batch results, reload decodes an artifact — neither may stall the
//!   event loop); completions flow back over a channel plus a wake-pipe
//!   byte that interrupts the poller,
//! * `workers` long-lived **worker** threads drain the [`BatchQueue`],
//!   stage each micro-batch into a [`TensorArena`] slot (one contiguous
//!   row copy per request — the same staging discipline as
//!   `Network::evaluate`) and run one eval-mode forward per batch.
//!
//! Connections are HTTP/1.1 with **opt-in** keep-alive and request
//! pipelining: responses are emitted strictly in request order per
//! connection. Past `max_connections` the listener answers `503` with
//! `Retry-After` instead of queueing unboundedly (load-shedding); stalled
//! connections are reaped by an I/O deadline (408) and idle keep-alive
//! connections by a separate idle deadline. See `docs/serving.md`.
//!
//! Workers wrap their loop in [`fitact_tensor::matmul::serial_scope`]: the
//! worker pool *is* the coarse parallel decomposition, so the matmul
//! kernel's internal row fan-out is disabled to avoid oversubscription —
//! which does not change results, because the threaded split is
//! bit-identical to the serial loop.
//!
//! # Zero-copy model loading
//!
//! Artifacts load through [`MappedArtifact`]: a v2 `.fitact` file is
//! mapped read-only once, and every worker's warm network clone borrows
//! that single mapping (copy-on-write on mutation). N workers cost one
//! copy of the parameters, not N. v1 artifacts fall back to owned buffers.
//!
//! # Bit-identity
//!
//! A response's logits are bit-identical to `Network::forward` on that
//! sample alone, no matter which micro-batch the scheduler packed it into:
//! eval-mode layers are row-local, and the one batch-shaped matmul in the
//! forward path (`Linear`, `x·Wᵀ`) always takes the packed kernel whose
//! per-row arithmetic is independent of the row count (pinned by
//! `nt_rows_are_independent_of_row_count` in `fitact_tensor` and
//! `forward_is_batch_invariant` in `fitact_nn`). See `docs/serving.md`.
//!
//! # Hot reload
//!
//! `POST /admin/reload` re-reads the artifact from disk, validates it
//! (decode + instantiate) and atomically swaps it in under a generation
//! counter; workers notice the bumped generation at their next batch and
//! re-clone the template network. In-flight batches finish on the old
//! model — a request is never served half-and-half. Replacing the file on
//! disk must use an atomic rename (the mapping contract —
//! `docs/artifact-format.md`).

#![cfg_attr(not(unix), allow(dead_code, unused_imports))]

use crate::batcher::{BatchQueue, PendingRow, RowOutput, RowResult};
use crate::http::{encode_response, parse_request, Outcome, Request};
use crate::metrics::{Metrics, MetricsSnapshot};
use crate::recovery::{self, RetryPolicy};
use crate::ServeError;
use fitact_data::DataSpec;
use fitact_faults::CanaryInjector;
use fitact_io::{JsonValue, MappedArtifact};
use fitact_nn::spec::LayerSpec;
use fitact_nn::{Mode, Network, ViolationTrace};
use fitact_tensor::matmul::serial_scope;
use fitact_tensor::{Precision, Tensor, TensorArena};
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

#[cfg(unix)]
use crate::poller::Poller;
#[cfg(unix)]
use std::collections::{BTreeMap, HashMap};
#[cfg(unix)]
use std::io::{Read, Write};
#[cfg(unix)]
use std::net::{TcpListener, TcpStream};
#[cfg(unix)]
use std::os::fd::AsRawFd;
#[cfg(unix)]
use std::os::unix::net::UnixStream;

/// Base RNG seed for the canary injector; XORed with the model generation so
/// each reload gets a fresh, still-reproducible fault stream.
const CANARY_SEED: u64 = 0x00F1_7AC7;

/// Depth of the canary mirror queue. Shadow batches beyond this are dropped
/// (and counted) rather than back-pressuring live traffic.
const CANARY_QUEUE_DEPTH: usize = 64;

/// Poller token of the listening socket.
#[cfg(unix)]
const TOKEN_LISTENER: u64 = 0;
/// Poller token of the wake pipe's read end.
#[cfg(unix)]
const TOKEN_WAKE: u64 = 1;
/// First token handed to an accepted connection.
#[cfg(unix)]
const TOKEN_FIRST_CONN: u64 = 2;

/// Per-connection cap on pipelined requests awaiting a response; past it
/// the connection is answered `429` and closed.
#[cfg(unix)]
const MAX_INFLIGHT_PER_CONN: usize = 64;

/// Upper bound on socket reads serviced per readiness event, so one
/// fire-hosing connection cannot starve the rest (level-triggered polling
/// re-delivers whatever is left).
#[cfg(unix)]
const MAX_READS_PER_EVENT: usize = 64;

/// How long a draining server waits for in-flight responses to flush
/// before forcibly dropping connections.
#[cfg(unix)]
const SHUTDOWN_GRACE: Duration = Duration::from_secs(10);

/// Server configuration. `Default` gives the documented CLI defaults.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeConfig {
    /// Bind address; port 0 picks an ephemeral port (tests, CI).
    pub addr: String,
    /// Maximum rows coalesced into one forward pass.
    pub max_batch: usize,
    /// How long the oldest queued row may wait for its batch to fill.
    pub max_wait: Duration,
    /// Number of worker threads (each owns a warm clone of the network).
    pub workers: usize,
    /// Per-sample input shape override; by default it is inferred from the
    /// artifact's dataset metadata or its first `Linear` layer.
    pub input_shape: Option<Vec<usize>>,
    /// Maximum accepted request-body size in bytes.
    pub max_body_bytes: usize,
    /// Maximum rows waiting in the batch queue before new requests are
    /// rejected with 503 (backpressure instead of unbounded latency).
    pub max_queue: usize,
    /// Maximum concurrently served connections; excess connections are
    /// answered `503` + `Retry-After` inline (load-shedding).
    pub max_connections: usize,
    /// What to do when a batch's violation trace crosses
    /// `violation_threshold` (`--retry-policy`). The default
    /// [`RetryPolicy::Off`] keeps responses byte-identical to a server
    /// without recovery.
    pub retry_policy: RetryPolicy,
    /// Minimum per-batch violation count that makes a batch suspect
    /// (`--violation-threshold`; clamped to at least 1).
    pub violation_threshold: u64,
    /// Per-bit fault rate for the canary shadow replica (`--canary-rate`);
    /// 0 disables the canary entirely.
    pub canary_rate: f64,
    /// Expected stored element type of the artifact (`--precision`). When
    /// set, startup and every hot reload verify the artifact actually stores
    /// its parameters in this precision — so an operator asking for the
    /// half-size f16 artifact cannot silently serve the f32 one. `None`
    /// serves whatever the artifact stores.
    pub precision: Option<Precision>,
    /// Deadline for socket progress while reading a request or writing a
    /// response (`--io-timeout-ms`); a stalled connection is answered 408
    /// and closed. Does **not** bound handler execution time.
    pub io_timeout: Duration,
    /// How long an idle keep-alive connection may sit between requests
    /// before it is reaped (`--idle-timeout-ms`).
    pub idle_timeout: Duration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            max_batch: 8,
            max_wait: Duration::from_millis(5),
            workers: 2,
            input_shape: None,
            max_body_bytes: 8 * 1024 * 1024,
            max_queue: 1024,
            max_connections: 256,
            retry_policy: RetryPolicy::Off,
            violation_threshold: 1,
            canary_rate: 0.0,
            precision: None,
            io_timeout: Duration::from_secs(30),
            idle_timeout: Duration::from_secs(60),
        }
    }
}

/// A model instance ready to serve: the instantiated network template plus
/// everything request validation needs.
#[derive(Debug)]
struct LoadedModel {
    template: Network,
    input_shape: Vec<usize>,
    features: usize,
    name: String,
    scheme: Option<String>,
    num_parameters: usize,
    /// The element type the weights are stored (and computed) in.
    precision: Precision,
    /// Whether the parameters are served from a shared read-only mapping
    /// (`false` = owned-buffer fallback, e.g. a v1 artifact).
    mapped: bool,
    /// Top-level layers carrying activation slots — the detection
    /// checkpoints the retry loop can resume from.
    activation_layers: Vec<usize>,
}

fn load_model(
    path: &Path,
    override_shape: Option<&[usize]>,
    expected_precision: Option<Precision>,
) -> Result<LoadedModel, ServeError> {
    let artifact = MappedArtifact::open(path)?;
    let mut template = artifact.instantiate()?;
    let precision = template.precision();
    if let Some(expected) = expected_precision {
        if precision != expected {
            return Err(ServeError::InvalidConfig(format!(
                "artifact `{}` stores {precision} parameters, but --precision {expected} \
                 was requested; point the server at an artifact saved in that precision",
                path.display()
            )));
        }
    }
    let activation_layers = recovery::activation_layer_indices(&mut template);
    let input_shape = match override_shape {
        Some(shape) if !shape.is_empty() => shape.to_vec(),
        Some(_) => return Err(ServeError::InvalidConfig("input shape is empty".into())),
        None => infer_input_shape(|k| artifact.meta(k), artifact.layers())?,
    };
    let features = input_shape.iter().product::<usize>();
    if features == 0 {
        return Err(ServeError::InvalidConfig(format!(
            "input shape {input_shape:?} has zero elements"
        )));
    }
    Ok(LoadedModel {
        features,
        input_shape,
        name: artifact.name().to_owned(),
        scheme: artifact.scheme().map(|s| s.name().to_owned()),
        num_parameters: artifact.num_parameters(),
        precision,
        mapped: artifact.is_mapped(),
        activation_layers,
        template,
    })
}

/// Per-sample input shape: the artifact's dataset metadata when present
/// (every `fitact train` artifact carries it), else the in-features of the
/// leading `Linear` layer.
fn infer_input_shape<'a>(
    meta: impl FnMut(&str) -> Option<&'a str>,
    layers: &[LayerSpec],
) -> Result<Vec<usize>, ServeError> {
    if let Some(spec) = DataSpec::from_meta(meta) {
        return Ok(spec.input_shape());
    }
    fn first_linear(specs: &[LayerSpec]) -> Option<usize> {
        for spec in specs {
            match spec {
                LayerSpec::Linear { in_features, .. } => return Some(*in_features),
                // Shape-preserving layers a model may start with.
                LayerSpec::Flatten | LayerSpec::Dropout { .. } | LayerSpec::Activation { .. } => {}
                LayerSpec::Sequential(children) => return first_linear(children),
                // Spatial layers need H×W, which the topology does not carry.
                _ => return None,
            }
        }
        None
    }
    first_linear(layers)
        .map(|in_features| vec![in_features])
        .ok_or_else(|| {
            ServeError::InvalidConfig(
                "cannot infer the model input shape (no dataset metadata, no leading Linear \
                 layer); pass an explicit --input-shape"
                    .into(),
            )
        })
}

/// Everything shared between the event-loop, handler and worker threads.
#[derive(Debug)]
struct Shared {
    queue: BatchQueue,
    metrics: Metrics,
    model: RwLock<Arc<LoadedModel>>,
    generation: AtomicU64,
    model_path: PathBuf,
    input_shape_override: Option<Vec<usize>>,
    /// Precision pin from `--precision`: reloads re-verify it too.
    expected_precision: Option<Precision>,
    stopping: AtomicBool,
    max_body: usize,
    workers: usize,
    max_connections: usize,
    retry_policy: RetryPolicy,
    /// Per-batch violation count at which a batch becomes suspect (≥ 1).
    violation_threshold: u64,
    /// Per-bit fault rate of the canary shadow replica (0 = no canary).
    canary_rate: f64,
    /// Write half of the event loop's wake pipe: one byte here interrupts
    /// the poller so completions and shutdown are noticed immediately.
    #[cfg(unix)]
    wake_tx: UnixStream,
}

impl Shared {
    fn current_model(&self) -> Arc<LoadedModel> {
        Arc::clone(&self.model.read().expect("model lock poisoned"))
    }

    /// Interrupts the event loop's poller (best effort — a full pipe means
    /// a wake is already pending).
    fn wake(&self) {
        #[cfg(unix)]
        {
            let _ = (&self.wake_tx).write(&[1]);
        }
    }

    /// Idempotent graceful-shutdown trigger: stop accepting, let workers
    /// drain the queue, wake the event loop so it starts draining.
    fn begin_shutdown(&self) {
        if self.stopping.swap(true, Ordering::SeqCst) {
            return;
        }
        self.queue.shutdown();
        self.wake();
    }
}

/// One routed request travelling from the event loop to the handler pool.
#[cfg(unix)]
struct HandlerJob {
    conn: u64,
    seq: u64,
    request: Request,
}

/// A handler's finished response travelling back to the event loop.
#[cfg(unix)]
struct Completion {
    conn: u64,
    seq: u64,
    status: u16,
    body: String,
    then_shutdown: bool,
}

/// A running inference server. Dropping the handle does **not** stop the
/// server; call [`Server::shutdown`] (or hit `POST /admin/shutdown`) and
/// then [`Server::join`].
#[derive(Debug)]
pub struct Server {
    shared: Arc<Shared>,
    addr: SocketAddr,
    event: Option<JoinHandle<()>>,
    handlers: Vec<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    /// The canary shadow thread (present when `canary_rate > 0`); exits on
    /// its own once every worker has dropped its mirror sender.
    canary: Option<JoinHandle<()>>,
}

impl Server {
    /// Loads the artifact at `model_path` and starts serving.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Artifact`] when the artifact fails to decode or
    /// instantiate (a corrupt file is a typed error, never a panic),
    /// [`ServeError::InvalidConfig`] for unusable configuration and
    /// [`ServeError::Io`] for bind failures.
    pub fn start(model_path: impl AsRef<Path>, config: &ServeConfig) -> Result<Server, ServeError> {
        if config.workers == 0 {
            return Err(ServeError::InvalidConfig("workers must be non-zero".into()));
        }
        if config.max_batch == 0 {
            return Err(ServeError::InvalidConfig(
                "max_batch must be non-zero".into(),
            ));
        }
        if config.max_queue == 0 || config.max_connections == 0 {
            return Err(ServeError::InvalidConfig(
                "max_queue and max_connections must be non-zero".into(),
            ));
        }
        if !(config.canary_rate.is_finite() && (0.0..=1.0).contains(&config.canary_rate)) {
            return Err(ServeError::InvalidConfig(format!(
                "canary_rate must be a per-bit probability in [0, 1], got {}",
                config.canary_rate
            )));
        }
        if config.io_timeout.is_zero() || config.idle_timeout.is_zero() {
            return Err(ServeError::InvalidConfig(
                "io_timeout and idle_timeout must be non-zero".into(),
            ));
        }
        #[cfg(not(unix))]
        {
            let _ = model_path;
            Err(ServeError::InvalidConfig(
                "the event-driven serving transport requires a Unix platform".into(),
            ))
        }
        #[cfg(unix)]
        {
            Self::start_unix(model_path.as_ref(), config)
        }
    }

    #[cfg(unix)]
    fn start_unix(model_path: &Path, config: &ServeConfig) -> Result<Server, ServeError> {
        let model_path = model_path.to_path_buf();
        let model = load_model(&model_path, config.input_shape.as_deref(), config.precision)?;
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let (wake_tx, wake_rx) = UnixStream::pair()?;
        wake_tx.set_nonblocking(true)?;
        wake_rx.set_nonblocking(true)?;
        let mut poller = Poller::new()?;
        poller.register(listener.as_raw_fd(), TOKEN_LISTENER, true, false)?;
        poller.register(wake_rx.as_raw_fd(), TOKEN_WAKE, true, false)?;
        let shared = Arc::new(Shared {
            queue: BatchQueue::new(config.max_batch, config.max_wait, config.max_queue),
            metrics: Metrics::new(config.max_batch),
            model: RwLock::new(Arc::new(model)),
            generation: AtomicU64::new(1),
            model_path,
            input_shape_override: config.input_shape.clone(),
            expected_precision: config.precision,
            stopping: AtomicBool::new(false),
            max_body: config.max_body_bytes,
            workers: config.workers,
            max_connections: config.max_connections,
            retry_policy: config.retry_policy,
            violation_threshold: config.violation_threshold.max(1),
            canary_rate: config.canary_rate,
            wake_tx,
        });
        // The mirror senders live only inside worker closures: when the last
        // worker exits, the channel disconnects and the canary thread ends.
        let (canary_tx, canary) = if config.canary_rate > 0.0 {
            let (tx, rx) = mpsc::sync_channel::<CanaryJob>(CANARY_QUEUE_DEPTH);
            let canary_shared = Arc::clone(&shared);
            let handle = std::thread::Builder::new()
                .name("fitact-serve-canary".into())
                .spawn(move || canary_loop(&canary_shared, &rx))
                .expect("canary thread spawns");
            (Some(tx), Some(handle))
        } else {
            (None, None)
        };
        let workers = (0..config.workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                let canary_tx = canary_tx.clone();
                std::thread::Builder::new()
                    .name(format!("fitact-serve-worker-{i}"))
                    .spawn(move || worker_loop(&shared, canary_tx))
                    .expect("worker thread spawns")
            })
            .collect();
        // Handler pool: sized past the worker count so blocking predicts
        // cannot monopolise it while cheap admin requests wait.
        let (jobs_tx, jobs_rx) = mpsc::channel::<HandlerJob>();
        let jobs_rx = Arc::new(Mutex::new(jobs_rx));
        let (done_tx, done_rx) = mpsc::channel::<Completion>();
        let handlers = (0..config.workers * 2 + 2)
            .map(|i| {
                let shared = Arc::clone(&shared);
                let jobs = Arc::clone(&jobs_rx);
                let done = done_tx.clone();
                std::thread::Builder::new()
                    .name(format!("fitact-serve-handler-{i}"))
                    .spawn(move || handler_loop(&shared, &jobs, &done))
                    .expect("handler thread spawns")
            })
            .collect();
        drop(done_tx);
        let event = {
            let shared = Arc::clone(&shared);
            let io_timeout = config.io_timeout;
            let idle_timeout = config.idle_timeout;
            std::thread::Builder::new()
                .name("fitact-serve-event".into())
                .spawn(move || {
                    let mut event_loop = EventLoop {
                        shared: Arc::clone(&shared),
                        poller,
                        listener: Some(listener),
                        wake_rx,
                        conns: HashMap::new(),
                        next_token: TOKEN_FIRST_CONN,
                        jobs_tx,
                        done_rx,
                        io_timeout,
                        idle_timeout,
                        stop_seen: None,
                    };
                    event_loop.run();
                    // Whatever made the loop exit, the rest of the server
                    // must come down with it.
                    shared.begin_shutdown();
                })
                .expect("event thread spawns")
        };
        Ok(Server {
            shared,
            addr,
            event: Some(event),
            handlers,
            workers,
            canary,
        })
    }

    /// The bound address (resolves the ephemeral port of `addr: …:0`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Triggers graceful shutdown: stop accepting, drain queued requests,
    /// stop workers. Idempotent; returns immediately — use [`Server::join`]
    /// to wait.
    pub fn shutdown(&self) {
        self.shared.begin_shutdown();
    }

    /// Blocks until the server has shut down (via [`Server::shutdown`] or
    /// `POST /admin/shutdown`) and every worker has exited, then returns the
    /// final metrics snapshot.
    pub fn join(mut self) -> MetricsSnapshot {
        if let Some(event) = self.event.take() {
            let _ = event.join();
        }
        // The event loop owned the job sender; handlers drain and exit.
        for handler in self.handlers.drain(..) {
            let _ = handler.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        // All mirror senders are gone once the workers have exited, so the
        // canary sees a disconnect and drains to completion.
        if let Some(canary) = self.canary.take() {
            let _ = canary.join();
        }
        self.shared.metrics.snapshot()
    }

    /// The live metrics registry (what `/metrics` snapshots).
    pub fn metrics(&self) -> MetricsSnapshot {
        self.shared.metrics.snapshot()
    }
}

/// A queued, order-preserving response for one pipelined request.
#[cfg(unix)]
struct Ready {
    bytes: Vec<u8>,
    close_after: bool,
}

/// Per-connection state owned by the event loop.
#[cfg(unix)]
struct Conn {
    stream: TcpStream,
    /// Unparsed request bytes.
    buf: Vec<u8>,
    /// Resume offset for the head-terminator scan (see [`parse_request`]).
    scan_from: usize,
    /// Encoded responses not yet written, drained from `out_pos`.
    out: Vec<u8>,
    out_pos: usize,
    /// Sequence number assigned to the next parsed request.
    next_seq: u64,
    /// Sequence number of the next response to emit (pipelining order).
    next_emit: u64,
    /// Completed responses waiting for their turn.
    ready: BTreeMap<u64, Ready>,
    /// Requests parsed but not yet emitted.
    inflight: usize,
    /// Keep-alive flag of each dispatched request, by sequence number.
    keep_alive: HashMap<u64, bool>,
    /// No more requests will be read (EOF, error, `Connection: close`).
    stop_reading: bool,
    /// Close the socket once `out` is flushed and `inflight` is zero.
    close_after_flush: bool,
    /// The peer is gone (EOF or socket error) — flush what we can.
    peer_eof: bool,
    /// Current poller interest `(readable, writable)`; `(false, false)`
    /// means the fd is deregistered.
    interest: (bool, bool),
    /// When to reap this connection, and whether that reap is an idle
    /// keep-alive close (silent) or an I/O stall (408).
    deadline: Option<Instant>,
    idle: bool,
}

#[cfg(unix)]
impl Conn {
    fn new(stream: TcpStream, idle_until: Instant) -> Conn {
        Conn {
            stream,
            buf: Vec::new(),
            scan_from: 0,
            out: Vec::new(),
            out_pos: 0,
            next_seq: 0,
            next_emit: 0,
            ready: BTreeMap::new(),
            inflight: 0,
            keep_alive: HashMap::new(),
            stop_reading: false,
            close_after_flush: false,
            peer_eof: false,
            interest: (true, false),
            deadline: Some(idle_until),
            idle: true,
        }
    }

    fn out_pending(&self) -> bool {
        self.out_pos < self.out.len()
    }

    /// Appends every response whose turn has come to the output buffer.
    fn emit_ready(&mut self) {
        while let Some(ready) = self.ready.remove(&self.next_emit) {
            self.out.extend_from_slice(&ready.bytes);
            self.next_emit += 1;
            self.inflight -= 1;
            if ready.close_after {
                self.stop_reading = true;
                self.close_after_flush = true;
                // Nothing after a close-framed response is valid.
                self.ready.clear();
                break;
            }
        }
    }

    /// Writes as much pending output as the socket accepts. `Ok(true)`
    /// means fully flushed; `Err` means the peer is unwritable.
    fn flush(&mut self) -> std::io::Result<bool> {
        while self.out_pending() {
            match self.stream.write(&self.out[self.out_pos..]) {
                Ok(0) => return Err(std::io::ErrorKind::WriteZero.into()),
                Ok(n) => self.out_pos += n,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return Ok(false),
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        self.out.clear();
        self.out_pos = 0;
        Ok(true)
    }
}

/// The event loop: owns the listener, the wake pipe and every connection.
#[cfg(unix)]
struct EventLoop {
    shared: Arc<Shared>,
    poller: Poller,
    listener: Option<TcpListener>,
    wake_rx: UnixStream,
    conns: HashMap<u64, Conn>,
    next_token: u64,
    jobs_tx: mpsc::Sender<HandlerJob>,
    done_rx: mpsc::Receiver<Completion>,
    io_timeout: Duration,
    idle_timeout: Duration,
    /// Set when the stopping flag was first observed; drives the drain.
    stop_seen: Option<Instant>,
}

#[cfg(unix)]
impl EventLoop {
    fn run(&mut self) {
        let mut events = Vec::new();
        loop {
            let now = Instant::now();
            if self.shared.stopping.load(Ordering::SeqCst) && self.stop_seen.is_none() {
                self.begin_drain(now);
            }
            if let Some(since) = self.stop_seen {
                if self.conns.is_empty() {
                    break;
                }
                if now.duration_since(since) > SHUTDOWN_GRACE {
                    let tokens: Vec<u64> = self.conns.keys().copied().collect();
                    for token in tokens {
                        self.close(token);
                    }
                    break;
                }
            }
            let timeout = self.next_wakeup(now);
            if self.poller.wait(timeout, &mut events).is_err() {
                break;
            }
            let now = Instant::now();
            let mut touched: Vec<u64> = Vec::new();
            for event in &events {
                match event.token {
                    TOKEN_LISTENER => self.handle_listener(now),
                    TOKEN_WAKE => self.drain_wake_pipe(),
                    token => {
                        if event.readable {
                            self.conn_readable(token);
                        }
                        if event.hangup {
                            if let Some(conn) = self.conns.get_mut(&token) {
                                conn.peer_eof = true;
                                conn.stop_reading = true;
                            }
                        }
                        touched.push(token);
                    }
                }
            }
            touched.extend(self.drain_completions());
            for token in touched {
                self.service(token, now);
            }
            self.sweep_deadlines(now);
        }
    }

    /// The poller timeout: the nearest connection deadline, capped by the
    /// shutdown grace window when draining.
    fn next_wakeup(&self, now: Instant) -> Option<Duration> {
        let mut next: Option<Instant> = self.conns.values().filter_map(|c| c.deadline).min();
        if let Some(since) = self.stop_seen {
            let grace_end = since + SHUTDOWN_GRACE;
            next = Some(next.map_or(grace_end, |d| d.min(grace_end)));
        }
        next.map(|d| d.saturating_duration_since(now))
    }

    /// First observation of the stopping flag: close the listener, reap
    /// idle connections, stop reading new requests everywhere.
    fn begin_drain(&mut self, now: Instant) {
        self.stop_seen = Some(now);
        if let Some(listener) = self.listener.take() {
            let _ = self.poller.deregister(listener.as_raw_fd());
        }
        let tokens: Vec<u64> = self.conns.keys().copied().collect();
        for token in tokens {
            if let Some(conn) = self.conns.get_mut(&token) {
                conn.stop_reading = true;
                conn.buf.clear();
            }
            self.service(token, now);
        }
    }

    fn handle_listener(&mut self, now: Instant) {
        loop {
            let Some(listener) = self.listener.as_ref() else {
                return;
            };
            match listener.accept() {
                Ok((stream, _)) => {
                    if self.shared.stopping.load(Ordering::SeqCst) {
                        continue; // drop: the drain is about to close the listener
                    }
                    if self.conns.len() >= self.shared.max_connections {
                        // Load-shedding: a bounded inline write beats
                        // silently dropping the socket.
                        self.shared.metrics.on_load_shed();
                        let _ = stream.set_nonblocking(true);
                        let body =
                            error_json("server is at its connection limit; retry").to_string();
                        let _ = (&stream).write(&encode_response(503, &body, false, Some(1)));
                        continue;
                    }
                    if stream.set_nonblocking(true).is_err() {
                        self.shared.metrics.on_io_setup_failure();
                        continue;
                    }
                    let token = self.next_token;
                    if self
                        .poller
                        .register(stream.as_raw_fd(), token, true, false)
                        .is_err()
                    {
                        self.shared.metrics.on_io_setup_failure();
                        continue;
                    }
                    self.next_token += 1;
                    self.shared.metrics.on_connection_accepted();
                    self.conns
                        .insert(token, Conn::new(stream, now + self.idle_timeout));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => return,
            }
        }
    }

    fn drain_wake_pipe(&mut self) {
        let mut sink = [0u8; 64];
        while matches!(self.wake_rx.read(&mut sink), Ok(n) if n > 0) {}
    }

    /// Reads whatever the socket has (bounded per event) and parses every
    /// complete request out of the buffer.
    fn conn_readable(&mut self, token: u64) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        if !conn.stop_reading {
            let mut chunk = [0u8; 16 * 1024];
            for _ in 0..MAX_READS_PER_EVENT {
                match conn.stream.read(&mut chunk) {
                    Ok(0) => {
                        conn.peer_eof = true;
                        conn.stop_reading = true;
                        break;
                    }
                    Ok(n) => conn.buf.extend_from_slice(&chunk[..n]),
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        conn.peer_eof = true;
                        conn.stop_reading = true;
                        break;
                    }
                }
            }
        }
        self.parse_available(token);
    }

    /// Parses and dispatches every complete request at the front of the
    /// connection's buffer.
    fn parse_available(&mut self, token: u64) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        loop {
            if conn.stop_reading {
                conn.buf.clear();
                conn.scan_from = 0;
                return;
            }
            match parse_request(&conn.buf, &mut conn.scan_from, self.shared.max_body) {
                Ok(Outcome::Complete { request, consumed }) => {
                    conn.buf.drain(..consumed);
                    conn.scan_from = 0;
                    let seq = conn.next_seq;
                    conn.next_seq += 1;
                    conn.inflight += 1;
                    if seq > 0 {
                        self.shared.metrics.on_keepalive_reuse();
                    }
                    let keep_alive = request.wants_keep_alive();
                    if !keep_alive {
                        // No pipelining past an explicit (or default) close.
                        conn.stop_reading = true;
                    }
                    if conn.inflight > MAX_INFLIGHT_PER_CONN {
                        let body = error_json(
                            "too many pipelined requests in flight on this connection; retry",
                        )
                        .to_string();
                        conn.ready.insert(
                            seq,
                            Ready {
                                bytes: encode_response(429, &body, false, Some(1)),
                                close_after: true,
                            },
                        );
                        conn.stop_reading = true;
                    } else {
                        conn.keep_alive.insert(seq, keep_alive);
                        if self
                            .jobs_tx
                            .send(HandlerJob {
                                conn: token,
                                seq,
                                request,
                            })
                            .is_err()
                        {
                            conn.keep_alive.remove(&seq);
                            let body = error_json("server is shutting down").to_string();
                            conn.ready.insert(
                                seq,
                                Ready {
                                    bytes: encode_response(503, &body, false, None),
                                    close_after: true,
                                },
                            );
                            conn.stop_reading = true;
                        }
                    }
                }
                Ok(Outcome::Partial(_)) => return,
                Err(e) => {
                    let seq = conn.next_seq;
                    conn.next_seq += 1;
                    conn.inflight += 1;
                    conn.ready.insert(
                        seq,
                        Ready {
                            bytes: encode_response(
                                e.status,
                                &error_json(&e.message).to_string(),
                                false,
                                None,
                            ),
                            close_after: true,
                        },
                    );
                    conn.stop_reading = true;
                    conn.buf.clear();
                    conn.scan_from = 0;
                    return;
                }
            }
        }
    }

    /// Moves handler completions into their connections' ready queues.
    /// Returns the connections that need servicing.
    fn drain_completions(&mut self) -> Vec<u64> {
        let mut touched = Vec::new();
        while let Ok(done) = self.done_rx.try_recv() {
            if done.then_shutdown {
                // The response is queued before the drain begins, so the
                // admin client always learns the shutdown was accepted.
                self.shared.begin_shutdown();
            }
            let stopping = self.shared.stopping.load(Ordering::SeqCst);
            let Some(conn) = self.conns.get_mut(&done.conn) else {
                continue; // connection reaped while the handler ran
            };
            let keep_alive = conn.keep_alive.remove(&done.seq).unwrap_or(false) && !stopping;
            conn.ready.insert(
                done.seq,
                Ready {
                    bytes: encode_response(done.status, &done.body, keep_alive, None),
                    close_after: !keep_alive,
                },
            );
            touched.push(done.conn);
        }
        touched
    }

    /// Emits due responses, flushes, closes finished connections and
    /// re-arms poller interest and deadlines.
    fn service(&mut self, token: u64, now: Instant) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        conn.emit_ready();
        let flushed = match conn.flush() {
            Ok(done) => done,
            Err(_) => {
                self.close(token);
                return;
            }
        };
        let conn = self.conns.get_mut(&token).expect("present above");
        let drained = flushed && conn.inflight == 0 && conn.ready.is_empty();
        if drained && (conn.close_after_flush || conn.peer_eof || conn.stop_reading) {
            self.close(token);
            return;
        }
        // Poller interest: read while requests may still arrive, write
        // while output is pending. `(false, false)` would spin on
        // level-triggered hangup events, so such fds are deregistered.
        let want = (!conn.stop_reading, conn.out_pending());
        if want != conn.interest {
            let fd = conn.stream.as_raw_fd();
            let result = match (conn.interest == (false, false), want == (false, false)) {
                (false, true) => self.poller.deregister(fd),
                (true, false) => self.poller.register(fd, token, want.0, want.1),
                (false, false) => self.poller.modify(fd, token, want.0, want.1),
                (true, true) => Ok(()),
            };
            if result.is_err() {
                self.shared.metrics.on_io_setup_failure();
                self.close(token);
                return;
            }
            let conn = self.conns.get_mut(&token).expect("present above");
            conn.interest = want;
        }
        let conn = self.conns.get_mut(&token).expect("present above");
        // Deadlines: socket I/O in progress gets the I/O deadline; a
        // connection waiting only on handlers gets none (predict has its
        // own execution timeout); a quiet keep-alive connection gets the
        // idle deadline.
        conn.idle = false;
        if conn.out_pending() || !conn.buf.is_empty() {
            conn.deadline = Some(now + self.io_timeout);
        } else if conn.inflight > 0 {
            conn.deadline = None;
        } else if conn.stop_reading || conn.close_after_flush {
            conn.deadline = Some(now + self.io_timeout);
        } else {
            conn.deadline = Some(now + self.idle_timeout);
            conn.idle = true;
        }
    }

    /// Reaps connections past their deadline: silently when idle, with a
    /// best-effort 408 when a request or response stalled mid-transfer.
    fn sweep_deadlines(&mut self, now: Instant) {
        let expired: Vec<u64> = self
            .conns
            .iter()
            .filter(|(_, c)| c.deadline.is_some_and(|d| d <= now))
            .map(|(&t, _)| t)
            .collect();
        for token in expired {
            let Some(conn) = self.conns.get_mut(&token) else {
                continue;
            };
            if conn.idle {
                self.shared.metrics.on_idle_closed();
                self.close(token);
            } else if conn.out_pending() || conn.close_after_flush || conn.peer_eof {
                // Already trying to finish or the peer is gone: give up.
                self.close(token);
            } else {
                self.shared.metrics.on_io_timeout();
                conn.out.extend_from_slice(&encode_response(
                    408,
                    &error_json("request timed out").to_string(),
                    false,
                    None,
                ));
                conn.stop_reading = true;
                conn.close_after_flush = true;
                conn.buf.clear();
                self.service(token, now);
            }
        }
    }

    fn close(&mut self, token: u64) {
        if let Some(conn) = self.conns.remove(&token) {
            if conn.interest != (false, false) {
                let _ = self.poller.deregister(conn.stream.as_raw_fd());
            }
        }
    }
}

/// One handler thread: pull a job, route it (blocking on batch execution
/// for predicts), send the completion back and wake the event loop.
#[cfg(unix)]
fn handler_loop(
    shared: &Arc<Shared>,
    jobs: &Mutex<mpsc::Receiver<HandlerJob>>,
    done: &mpsc::Sender<Completion>,
) {
    loop {
        // Holding the lock across `recv` is the standard shared-receiver
        // pattern: the waiter inside `recv` releases it as soon as a job
        // (or disconnect) arrives.
        let job = match jobs.lock() {
            Ok(rx) => rx.recv(),
            Err(_) => break,
        };
        let Ok(job) = job else { break };
        let (status, body, then_shutdown) = route(shared, &job.request);
        if done
            .send(Completion {
                conn: job.conn,
                seq: job.seq,
                status,
                body: body.to_string(),
                then_shutdown,
            })
            .is_err()
        {
            break;
        }
        shared.wake();
    }
}

/// One live batch mirrored to the canary shadow replica.
struct CanaryJob {
    input: Tensor,
    generation: u64,
}

fn worker_loop(shared: &Arc<Shared>, canary: Option<mpsc::SyncSender<CanaryJob>>) {
    serial_scope(|| {
        let mut generation = shared.generation.load(Ordering::Acquire);
        let mut model = shared.current_model();
        let mut network = model.template.clone();
        let mut arena = TensorArena::new();
        let mut dims: Vec<usize> = Vec::new();
        let mut trace = ViolationTrace::new();
        // Boundary snapshots are only worth their clones when a retry could
        // consume them.
        let snapshot_boundaries = shared.retry_policy == RetryPolicy::Retry;
        while let Some(batch) = shared.queue.next_batch() {
            let current = shared.generation.load(Ordering::Acquire);
            if current != generation {
                generation = current;
                model = shared.current_model();
                network = model.template.clone();
            }
            // Rows were length-validated against the model that was current
            // at enqueue time; a hot reload between then and now may have
            // changed the feature count. Those rows get a typed error — a
            // length-mismatched copy below would panic and kill the worker.
            let (batch, stale): (Vec<_>, Vec<_>) = batch
                .into_iter()
                .partition(|row| row.input.len() == model.features);
            for row in stale {
                shared.metrics.on_error();
                let _ = row.responder.send(RowResult {
                    row: row.row,
                    outcome: Err(format!(
                        "the model was reloaded with a different input shape \
                         ({} features) while this request was queued; resubmit",
                        model.features
                    )),
                    batch_size: 0,
                });
            }
            if batch.is_empty() {
                continue;
            }
            let n = batch.len();
            shared.metrics.on_batch(n);
            // Stage the batch: one warm TensorArena slot, one contiguous
            // row copy per request — zero allocations once the shapes have
            // stabilised, exactly like `Network::evaluate`'s staging.
            let mut staging = arena.take(0);
            dims.clear();
            dims.push(n);
            dims.extend_from_slice(&model.input_shape);
            staging.ensure_shape(&dims);
            let features = model.features;
            {
                let dst = staging.as_mut_slice();
                for (i, row) in batch.iter().enumerate() {
                    dst[i * features..(i + 1) * features].copy_from_slice(&row.input);
                }
            }
            // Mirror the staged batch to the canary shadow replica before
            // executing it; a full mirror queue drops the copy (counted)
            // rather than delaying live traffic.
            if let Some(tx) = &canary {
                match tx.try_send(CanaryJob {
                    input: staging.clone(),
                    generation,
                }) {
                    Ok(()) => {}
                    Err(mpsc::TrySendError::Full(_)) => shared.metrics.on_canary_dropped(),
                    Err(mpsc::TrySendError::Disconnected(_)) => {}
                }
            }
            match recovery::forward_traced(&mut network, &staging, &mut trace, snapshot_boundaries)
            {
                Ok(mut traced) => {
                    shared.metrics.on_trace(&trace);
                    if trace.total() >= shared.violation_threshold {
                        match shared.retry_policy {
                            RetryPolicy::Off => {}
                            RetryPolicy::Flag => shared.metrics.on_flagged(),
                            RetryPolicy::Retry => {
                                let resume = recovery::last_clean_boundary(
                                    &traced.layer_totals,
                                    &model.activation_layers,
                                );
                                // Re-execute from the snapshot *without* trace
                                // capture, so the retry never double-counts
                                // into the violation telemetry.
                                if let Ok(retried) = network.forward_from(
                                    resume,
                                    &traced.boundaries[resume],
                                    Mode::Eval,
                                ) {
                                    let (transient, persistent) =
                                        recovery::compare_rows(&traced.output, &retried, n);
                                    shared.metrics.on_retry(transient, persistent);
                                    if transient > 0 {
                                        // The violation did not reproduce:
                                        // serve the re-execution (identical
                                        // rows carry identical bits anyway).
                                        traced.output = retried;
                                    }
                                }
                            }
                        }
                    }
                    let logits = traced.output;
                    let width = logits.numel() / n.max(1);
                    let classes = logits.argmax_rows().unwrap_or_default();
                    let values = logits.as_slice();
                    for (i, row) in batch.iter().enumerate() {
                        let outcome = RowOutput {
                            logits: values[i * width..(i + 1) * width].to_vec(),
                            class: classes.get(i).copied().unwrap_or(0),
                        };
                        shared.metrics.on_response(row.enqueued.elapsed());
                        let _ = row.responder.send(RowResult {
                            row: row.row,
                            outcome: Ok(outcome),
                            batch_size: n,
                        });
                    }
                }
                Err(e) => {
                    let message = format!("forward pass failed: {e}");
                    for row in &batch {
                        shared.metrics.on_error();
                        let _ = row.responder.send(RowResult {
                            row: row.row,
                            outcome: Err(message.clone()),
                            batch_size: n,
                        });
                    }
                }
            }
            arena.put(0, staging);
        }
    });
}

/// The canary shadow replica: re-runs a copy of live traffic through a
/// fault-injected clone of the worker network and measures how often the
/// violation telemetry catches the injected faults — a live estimate of the
/// protection scheme's detection coverage, reported under `/metrics`
/// `canary`. Never touches live responses.
fn canary_loop(shared: &Arc<Shared>, jobs: &mpsc::Receiver<CanaryJob>) {
    serial_scope(|| {
        let bits: Vec<u32> = (0..32).collect();
        let mut generation = 0u64;
        let mut model = shared.current_model();
        let mut clean = model.template.clone();
        let mut faulty = model.template.clone();
        let mut injector: Option<CanaryInjector> = None;
        let mut seen_faults = 0u64;
        let mut trace = ViolationTrace::new();
        while let Ok(job) = jobs.recv() {
            if injector.is_none() || job.generation != generation {
                generation = job.generation;
                model = shared.current_model();
                clean = model.template.clone();
                faulty = model.template.clone();
                injector = Some(CanaryInjector::install(
                    &mut faulty,
                    shared.canary_rate,
                    &bits,
                    CANARY_SEED ^ generation,
                ));
                seen_faults = 0;
            }
            let Ok(clean_out) = clean.forward(&job.input, Mode::Eval) else {
                continue;
            };
            let Ok(traced) = recovery::forward_traced(&mut faulty, &job.input, &mut trace, true)
            else {
                continue;
            };
            let total_faults = injector
                .as_ref()
                .expect("injector installed above")
                .faults_injected();
            let injected = total_faults - seen_faults;
            seen_faults = total_faults;
            let detected = trace.total();
            shared.metrics.on_canary_batch(injected, detected);
            // Exercise the same recovery path the live workers run, against
            // ground truth: the retry resumes on the *clean* replica, which
            // models a transient that does not recur on re-execution.
            if shared.retry_policy == RetryPolicy::Retry && detected >= shared.violation_threshold {
                let rows = job.input.dims().first().copied().unwrap_or(1);
                let resume =
                    recovery::last_clean_boundary(&traced.layer_totals, &model.activation_layers);
                if let Ok(retried) =
                    clean.forward_from(resume, &traced.boundaries[resume], Mode::Eval)
                {
                    // vs. ground truth: a mismatch means a fault upstream of
                    // the resume point slipped under every bound.
                    let (mismatch_rows, clean_match_rows) =
                        recovery::compare_rows(&clean_out, &retried, rows);
                    // vs. the faulted forward: differing rows are the
                    // confirmed transients the retry actually repaired.
                    let (transient_rows, _) =
                        recovery::compare_rows(&traced.output, &retried, rows);
                    shared
                        .metrics
                        .on_canary_retry(clean_match_rows, mismatch_rows, transient_rows);
                }
            }
        }
    });
}

fn error_json(message: &str) -> JsonValue {
    JsonValue::Object(vec![(
        "error".into(),
        JsonValue::String(message.to_owned()),
    )])
}

fn route(shared: &Arc<Shared>, request: &Request) -> (u16, JsonValue, bool) {
    match (request.method.as_str(), request.target.as_str()) {
        ("GET", "/healthz") => (200, health_json(shared), false),
        ("GET", "/metrics") => (200, shared.metrics.snapshot().to_json(), false),
        ("POST", "/predict") => {
            let (status, body) = predict(shared, &request.body);
            (status, body, false)
        }
        ("POST", "/admin/reload") => {
            let (status, body) = reload(shared);
            (status, body, false)
        }
        ("POST", "/admin/metrics/reset") => {
            // Empties the latency ring so post-reload (or post-warmup)
            // percentiles are not polluted by earlier traffic; cumulative
            // counters are deliberately left untouched.
            shared.metrics.reset_latency_window();
            (
                200,
                JsonValue::Object(vec![(
                    "status".into(),
                    JsonValue::String("latency window reset".into()),
                )]),
                false,
            )
        }
        ("POST", "/admin/shutdown") => (
            200,
            JsonValue::Object(vec![(
                "status".into(),
                JsonValue::String("shutting down".into()),
            )]),
            true,
        ),
        (
            _,
            "/healthz"
            | "/metrics"
            | "/predict"
            | "/admin/reload"
            | "/admin/metrics/reset"
            | "/admin/shutdown",
        ) => (
            405,
            error_json(&format!("method {} not allowed here", request.method)),
            false,
        ),
        (_, target) => (404, error_json(&format!("no route for `{target}`")), false),
    }
}

fn health_json(shared: &Arc<Shared>) -> JsonValue {
    let model = shared.current_model();
    JsonValue::Object(vec![
        ("status".into(), JsonValue::String("ok".into())),
        ("model".into(), JsonValue::String(model.name.clone())),
        (
            "scheme".into(),
            model
                .scheme
                .clone()
                .map(JsonValue::String)
                .unwrap_or(JsonValue::Null),
        ),
        (
            "input_shape".into(),
            JsonValue::Array(
                model
                    .input_shape
                    .iter()
                    .map(|&d| JsonValue::Number(d as f64))
                    .collect(),
            ),
        ),
        (
            "num_parameters".into(),
            JsonValue::Number(model.num_parameters as f64),
        ),
        (
            "precision".into(),
            JsonValue::String(model.precision.name().into()),
        ),
        ("mapped".into(), JsonValue::Bool(model.mapped)),
        (
            "generation".into(),
            JsonValue::Number(shared.generation.load(Ordering::Acquire) as f64),
        ),
        ("workers".into(), JsonValue::Number(shared.workers as f64)),
        (
            "queue_depth".into(),
            JsonValue::Number(shared.queue.depth() as f64),
        ),
        (
            "max_batch".into(),
            JsonValue::Number(shared.queue.max_batch() as f64),
        ),
    ])
}

/// Parses a predict body into flattened sample rows. Accepts
/// `{"inputs": [[…], …]}` (a batch) or `{"input": […]}` (one sample).
fn parse_rows(body: &[u8], features: usize) -> Result<Vec<Vec<f32>>, String> {
    let text = std::str::from_utf8(body).map_err(|_| "body is not UTF-8".to_owned())?;
    let value = JsonValue::parse(text).map_err(|e| format!("invalid JSON body: {e}"))?;
    let rows_json: Vec<&JsonValue> = if let Some(inputs) = value.get("inputs") {
        inputs
            .as_array()
            .ok_or("`inputs` must be an array of sample rows")?
            .iter()
            .collect()
    } else if let Some(input) = value.get("input") {
        vec![input]
    } else {
        return Err("body must carry `inputs` (batch) or `input` (one sample)".into());
    };
    if rows_json.is_empty() {
        return Err("`inputs` is empty".into());
    }
    let mut rows = Vec::with_capacity(rows_json.len());
    for (i, row_json) in rows_json.iter().enumerate() {
        let numbers = row_json
            .as_array()
            .ok_or_else(|| format!("row {i} is not an array"))?;
        if numbers.len() != features {
            return Err(format!(
                "row {i} has {} values but the model takes {features}",
                numbers.len()
            ));
        }
        let mut row = Vec::with_capacity(features);
        for (j, n) in numbers.iter().enumerate() {
            let v = n
                .as_f64()
                .ok_or_else(|| format!("row {i} value {j} is not a number"))?;
            row.push(v as f32);
        }
        rows.push(row);
    }
    Ok(rows)
}

fn predict(shared: &Arc<Shared>, body: &[u8]) -> (u16, JsonValue) {
    if shared.stopping.load(Ordering::SeqCst) {
        return (503, error_json("server is shutting down"));
    }
    let model = shared.current_model();
    let rows = match parse_rows(body, model.features) {
        Ok(rows) => rows,
        Err(message) => return (400, error_json(&message)),
    };
    let n = rows.len();
    let (tx, rx) = mpsc::channel();
    let enqueued = Instant::now();
    let pending: Vec<PendingRow> = rows
        .into_iter()
        .enumerate()
        .map(|(row, input)| PendingRow {
            input,
            row,
            enqueued,
            responder: tx.clone(),
        })
        .collect();
    drop(tx);
    match shared.queue.push(pending) {
        Ok(()) => {}
        Err(crate::batcher::PushRejected::ShuttingDown(_)) => {
            return (503, error_json("server is shutting down"));
        }
        Err(crate::batcher::PushRejected::Overloaded(_)) => {
            return (503, error_json("server is overloaded (queue full); retry"));
        }
    }
    shared.metrics.on_rows_accepted(n);
    let mut results: Vec<Option<RowResult>> = (0..n).map(|_| None).collect();
    for _ in 0..n {
        match rx.recv_timeout(Duration::from_secs(60)) {
            Ok(result) => {
                let slot = result.row;
                results[slot] = Some(result);
            }
            Err(_) => return (500, error_json("timed out waiting for execution")),
        }
    }
    let mut outputs = Vec::with_capacity(n);
    let mut classes = Vec::with_capacity(n);
    let mut batch_sizes = Vec::with_capacity(n);
    for result in results.into_iter().flatten() {
        match result.outcome {
            Ok(output) => {
                outputs.push(JsonValue::Array(
                    output
                        .logits
                        .iter()
                        .map(|&v| JsonValue::Number(f64::from(v)))
                        .collect(),
                ));
                classes.push(JsonValue::Number(output.class as f64));
                batch_sizes.push(JsonValue::Number(result.batch_size as f64));
            }
            Err(message) => return (500, error_json(&message)),
        }
    }
    (
        200,
        JsonValue::Object(vec![
            ("model".into(), JsonValue::String(model.name.clone())),
            ("outputs".into(), JsonValue::Array(outputs)),
            ("classes".into(), JsonValue::Array(classes)),
            ("batch_sizes".into(), JsonValue::Array(batch_sizes)),
        ]),
    )
}

fn reload(shared: &Arc<Shared>) -> (u16, JsonValue) {
    match load_model(
        &shared.model_path,
        shared.input_shape_override.as_deref(),
        shared.expected_precision,
    ) {
        Ok(model) => {
            let num_parameters = model.num_parameters;
            *shared.model.write().expect("model lock poisoned") = Arc::new(model);
            let generation = shared.generation.fetch_add(1, Ordering::AcqRel) + 1;
            shared.metrics.on_reload();
            (
                200,
                JsonValue::Object(vec![
                    ("status".into(), JsonValue::String("reloaded".into())),
                    ("generation".into(), JsonValue::Number(generation as f64)),
                    (
                        "num_parameters".into(),
                        JsonValue::Number(num_parameters as f64),
                    ),
                ]),
            )
        }
        Err(e) => (500, error_json(&format!("reload failed: {e}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fitact_io::ModelArtifact;

    #[test]
    fn parse_rows_accepts_batch_and_single_forms() {
        let rows = parse_rows(br#"{"inputs": [[1, 2], [3, 4]]}"#, 2).unwrap();
        assert_eq!(rows, vec![vec![1.0, 2.0], vec![3.0, 4.0]]);
        let rows = parse_rows(br#"{"input": [5, 6]}"#, 2).unwrap();
        assert_eq!(rows, vec![vec![5.0, 6.0]]);
    }

    #[test]
    fn parse_rows_rejects_bad_bodies() {
        for (body, needle) in [
            (&b"not json"[..], "invalid JSON"),
            (br#"{"other": 1}"#, "must carry"),
            (br#"{"inputs": []}"#, "empty"),
            (br#"{"inputs": [1]}"#, "not an array"),
            (br#"{"inputs": [[1]]}"#, "the model takes 2"),
            (br#"{"inputs": [["x", 1]]}"#, "not a number"),
            (b"\xff\xfe", "UTF-8"),
        ] {
            let err = parse_rows(body, 2).unwrap_err();
            assert!(err.contains(needle), "{err}");
        }
    }

    #[test]
    fn input_shape_inference_prefers_dataset_metadata() {
        use fitact_nn::layers::{Linear, Sequential};
        use fitact_nn::Network;
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(0);
        let net = Network::new(
            "m",
            Sequential::new().with(Box::new(Linear::new(4, 2, &mut rng))),
        );
        let mut artifact = ModelArtifact::capture(&net).unwrap();
        // Without metadata: the leading Linear wins.
        assert_eq!(
            infer_input_shape(|k| artifact.meta(k), &artifact.layers).unwrap(),
            vec![4]
        );
        // With dataset metadata: the recorded spec wins.
        for (k, v) in DataSpec::synthetic_cifar(10, 8, 1).to_meta() {
            artifact.set_meta(k, v);
        }
        assert_eq!(
            infer_input_shape(|k| artifact.meta(k), &artifact.layers).unwrap(),
            vec![3, 32, 32]
        );
    }
}
