//! The campaign coordinator: shards a statistical campaign into leased work
//! units, merges worker results idempotently and checkpoints resumable
//! state.
//!
//! # Protocol
//!
//! | Route | Method | Purpose |
//! |---|---|---|
//! | `/campaign/spec` | GET | binary [`CampaignSpec`]: config, dataset provenance, fingerprints |
//! | `/campaign/model` | GET | the model artifact bytes |
//! | `/campaign/unit?worker=ID` | GET | lease a work unit (JSON [`Grant`]) |
//! | `/campaign/result` | POST | report a completed unit (JSON [`UnitResult`]) |
//! | `/campaign/status` | GET | progress snapshot |
//! | `/healthz` | GET | liveness |
//!
//! # Lease state machine
//!
//! A unit is `Pending` → `Leased { worker, deadline }` → `Done`. Grants
//! prefer pending units; an expired lease is re-dispatched to the next
//! asking worker; when neither exists, the earliest-deadline in-flight lease
//! is **re-issued** to an idle worker (straggler hedging). All of this is
//! sound because trials are deterministic functions of
//! `(seed, stratum, index)`: duplicate completions carry bit-identical
//! points and merge idempotently by unit id; disagreeing duplicates are a
//! typed conflict that aborts the campaign rather than skewing it.
//!
//! # Determinism and resume
//!
//! The coordinator never invents scheduling state: each round's unit list is
//! derived from [`fitact_faults::plan_round_allocated`] over the per-stratum
//! scheduled counts and the merged pools (restricted to completed rounds, so
//! adaptive Neyman allocation sees the same evidence regardless of delivery
//! timing), and every stopping decision from
//! [`fitact_faults::stopping_decision`] over the merged pools — exactly the
//! computation the single-process campaign performs. Resume replays rounds
//! from zero against the checkpointed pools, so a coordinator restarted
//! mid-round re-derives the same units, re-leases only the missing ones and
//! lands on a bit-identical [`CampaignReport`].

use crate::http::{encode_binary_response, read_request, write_response, Request};
use crate::protocol::{unit_id, unit_round, Grant, UnitResult, WorkUnit, MAX_CONTROL_BODY};
use crate::ServeError;
use fitact_data::DataSpec;
use fitact_faults::{
    assemble_report, plan_round_allocated, stopping_decision, z_for_confidence, CampaignReport,
    FaultError, FaultModel, StatCampaignConfig, StratifiedSampler, StratumPool, UnitRunner,
};
use fitact_io::{fingerprint_bytes, CampaignCheckpoint, CampaignSpec, ModelArtifact};
use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Coordinator-side options (the campaign itself is a
/// [`StatCampaignConfig`]).
#[derive(Debug, Clone)]
pub struct CoordinatorConfig {
    /// Listen address (`host:port`; port `0` picks a free port).
    pub listen: String,
    /// Trials per work unit (within one stratum of one round).
    pub unit_trials: usize,
    /// Lease duration before a unit may be re-dispatched.
    pub lease: Duration,
    /// Checkpoint path for resumable state; `None` disables checkpointing.
    pub checkpoint: Option<PathBuf>,
    /// Whether the coordinator also executes units in-process (graceful
    /// degradation down to coordinator-solo).
    pub local_execute: bool,
    /// Evaluation threads for in-process execution.
    pub threads: usize,
}

impl Default for CoordinatorConfig {
    fn default() -> Self {
        CoordinatorConfig {
            listen: "127.0.0.1:0".into(),
            unit_trials: 4,
            lease: Duration::from_secs(30),
            checkpoint: None,
            local_execute: true,
            threads: 1,
        }
    }
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum UnitState {
    Pending,
    Leased { worker: String, deadline: Instant },
    Done,
}

#[derive(Debug, Clone)]
struct UnitSlot {
    unit: WorkUnit,
    state: UnitState,
}

#[derive(Debug)]
struct Ledger {
    pools: Vec<StratumPool>,
    /// Trials scheduled per stratum by completed rounds.
    counts: Vec<usize>,
    rounds: usize,
    /// The in-flight round's units.
    units: Vec<UnitSlot>,
    finished: bool,
    converged: bool,
    stopping: bool,
    fatal: Option<String>,
}

struct Shared {
    ledger: Mutex<Ledger>,
    cv: Condvar,
    campaign: StatCampaignConfig,
    z: f64,
    fault_free: f32,
    sampler: StratifiedSampler,
    /// Per-stratum population sizes (bit counts) — the Neyman weights'
    /// numerators, precomputed so planning never touches the sampler.
    populations: Vec<u64>,
    model_name: String,
    network_name: String,
    artifact_bytes: Vec<u8>,
    spec_bytes: Vec<u8>,
    fingerprint: u64,
    checkpoint: Option<PathBuf>,
    lease: Duration,
    retry_ms: u64,
    shutdown: AtomicBool,
}

impl std::fmt::Debug for Shared {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Shared")
            .field("model", &self.model_name)
            .field("network", &self.network_name)
            .finish_non_exhaustive()
    }
}

/// A running campaign coordinator. Serving continues until
/// [`Coordinator::shutdown`], so workers polling after completion observe a
/// `done` grant instead of a vanished endpoint.
#[derive(Debug)]
pub struct Coordinator {
    shared: Arc<Shared>,
    addr: SocketAddr,
    accept_handle: Option<JoinHandle<()>>,
    executor_handle: Option<JoinHandle<()>>,
}

/// Builds the unit list for round `round` given the per-stratum scheduled
/// counts and the merged pool state — a pure function of campaign config and
/// completed-round evidence (the allocator reads only trials below `counts`,
/// never in-flight points), so every coordinator incarnation derives
/// identical units and ids.
#[allow(clippy::too_many_arguments)]
fn plan_units(
    config: &StatCampaignConfig,
    z: f64,
    fault_free: f32,
    populations: &[u64],
    pools: &[StratumPool],
    counts: &[usize],
    round: usize,
    unit_trials: usize,
) -> Vec<UnitSlot> {
    let specs = plan_round_allocated(config, z, fault_free, populations, pools, counts);
    let mut per_stratum = vec![0usize; counts.len()];
    for spec in &specs {
        per_stratum[spec.stratum] += 1;
    }
    let mut units = Vec::new();
    for (stratum, &scheduled) in per_stratum.iter().enumerate() {
        let mut offset = 0;
        while offset < scheduled {
            let count = unit_trials.min(scheduled - offset);
            units.push(UnitSlot {
                unit: WorkUnit {
                    id: unit_id(round, units.len()),
                    stratum,
                    start: counts[stratum] + offset,
                    count,
                },
                state: UnitState::Pending,
            });
            offset += count;
        }
    }
    units
}

impl Shared {
    /// Advances the ledger through every round whose trials are already in
    /// the pools (resume replay and normal round completion share this
    /// path), stopping at the first round with missing units or at campaign
    /// completion.
    fn advance(&self, ledger: &mut Ledger, unit_trials: usize) {
        loop {
            let mut units = plan_units(
                &self.campaign,
                self.z,
                self.fault_free,
                &self.populations,
                &ledger.pools,
                &ledger.counts,
                ledger.rounds,
                unit_trials,
            );
            if units.is_empty() {
                ledger.finished = true;
                return;
            }
            let mut all_done = true;
            for slot in &mut units {
                if ledger.pools[slot.unit.stratum]
                    .contains_range(slot.unit.start as u64, slot.unit.count as u64)
                {
                    slot.state = UnitState::Done;
                } else {
                    all_done = false;
                }
            }
            if !all_done {
                ledger.units = units;
                return;
            }
            for slot in &units {
                ledger.counts[slot.unit.stratum] += slot.unit.count;
            }
            ledger.rounds += 1;
            ledger.units = units;
            let decision = stopping_decision(
                &self.campaign,
                self.z,
                self.fault_free,
                &self.populations,
                &ledger.pools,
                &ledger.counts,
            );
            if decision.converged {
                ledger.converged = true;
                ledger.finished = true;
                return;
            }
            if decision.exhausted {
                ledger.finished = true;
                return;
            }
        }
    }

    /// Grants a unit to `worker`: pending first, then expired-lease
    /// re-dispatch, then straggler re-issue of the earliest-deadline lease.
    fn grant(&self, ledger: &mut Ledger, worker: &str) -> Grant {
        if ledger.finished {
            return Grant::Done;
        }
        if ledger.stopping || ledger.fatal.is_some() {
            return Grant::Wait {
                retry_ms: self.retry_ms,
            };
        }
        let now = Instant::now();
        let lease_ms = self.lease.as_millis() as u64;
        let chosen = {
            let pending = ledger
                .units
                .iter()
                .position(|s| s.state == UnitState::Pending);
            match pending {
                Some(i) => Some(i),
                None => {
                    // No pending work: hand out the most-overdue lease —
                    // expired ones first (re-dispatch), otherwise the
                    // earliest-deadline in-flight lease held by someone else
                    // (straggler re-issue).
                    ledger
                        .units
                        .iter()
                        .enumerate()
                        .filter_map(|(i, s)| match &s.state {
                            UnitState::Leased {
                                worker: holder,
                                deadline,
                            } if deadline <= &now || holder != worker => Some((i, *deadline)),
                            _ => None,
                        })
                        .min_by_key(|&(_, deadline)| deadline)
                        .map(|(i, _)| i)
                }
            }
        };
        match chosen {
            Some(i) => {
                let slot = &mut ledger.units[i];
                slot.state = UnitState::Leased {
                    worker: worker.to_owned(),
                    deadline: now + self.lease,
                };
                Grant::Unit {
                    unit: slot.unit,
                    lease_ms,
                }
            }
            None => Grant::Wait {
                retry_ms: self.retry_ms,
            },
        }
    }

    /// Verifies `points` against what the pools already hold (bitwise).
    fn verify_points(&self, ledger: &Ledger, result: &UnitResult) -> Result<(), String> {
        let pool = ledger
            .pools
            .get(result.unit.stratum)
            .ok_or_else(|| format!("unit names stratum {}", result.unit.stratum))?;
        for (offset, point) in result.points.iter().enumerate() {
            let index = (result.unit.start + offset) as u64;
            match pool.get(index) {
                Some(existing) if existing.same_bits(point) => {}
                Some(_) => {
                    return Err(format!(
                        "duplicate completion of unit {} disagrees at trial {index}",
                        result.unit.id
                    ))
                }
                None => {
                    return Err(format!(
                        "unit {} claims trial {index} which the pool does not hold",
                        result.unit.id
                    ))
                }
            }
        }
        Ok(())
    }

    fn save_checkpoint(&self, ledger: &mut Ledger) {
        let Some(path) = &self.checkpoint else {
            return;
        };
        let completed: Vec<u64> = ledger
            .units
            .iter()
            .filter(|s| s.state == UnitState::Done)
            .map(|s| s.unit.id)
            .collect();
        let checkpoint = CampaignCheckpoint::new(
            self.campaign.clone(),
            self.model_name.clone(),
            self.network_name.clone(),
            self.fingerprint,
            self.fault_free,
            ledger.pools.clone(),
            completed,
        );
        if let Err(e) = checkpoint.save(path) {
            // Losing checkpointability is fatal: continuing silently would
            // turn the next crash into silent data loss.
            ledger.fatal = Some(format!("cannot write checkpoint `{}`: {e}", path.display()));
        }
    }

    /// Merges a reported unit. Returns `(status, body)` for the HTTP layer.
    fn merge(&self, ledger: &mut Ledger, result: &UnitResult, unit_trials: usize) -> (u16, String) {
        let stale_check =
            |ledger: &mut Ledger, shared: &Shared| match shared.verify_points(ledger, result) {
                Ok(()) => (200, "{\"status\":\"ok\",\"fresh\":false}".to_owned()),
                Err(msg) => {
                    ledger.fatal = Some(msg.clone());
                    (409, format!("{{\"error\":{}}}", quote(&msg)))
                }
            };
        let round = unit_round(result.unit.id);
        if ledger.finished || round < ledger.rounds {
            // A duplicate of an already-merged unit (possibly from a prior
            // coordinator incarnation): idempotent by content.
            let out = stale_check(ledger, self);
            self.cv.notify_all();
            return out;
        }
        if round > ledger.rounds {
            return (
                409,
                format!(
                    "{{\"error\":\"unit {} belongs to round {round}, coordinator is at round {}\"}}",
                    result.unit.id, ledger.rounds
                ),
            );
        }
        let Some(i) = ledger
            .units
            .iter()
            .position(|s| s.unit.id == result.unit.id)
        else {
            return (
                409,
                format!("{{\"error\":\"unknown unit id {}\"}}", result.unit.id),
            );
        };
        if ledger.units[i].unit != result.unit {
            let msg = format!(
                "unit {} shape mismatch: coordinator planned {:?}, worker reported {:?}",
                result.unit.id, ledger.units[i].unit, result.unit
            );
            ledger.fatal = Some(msg.clone());
            return (409, format!("{{\"error\":{}}}", quote(&msg)));
        }
        if ledger.units[i].state == UnitState::Done {
            let out = stale_check(ledger, self);
            self.cv.notify_all();
            return out;
        }
        for (offset, point) in result.points.iter().enumerate() {
            let index = (result.unit.start + offset) as u64;
            match ledger.pools[result.unit.stratum].insert(index, *point) {
                Ok(_) => {}
                Err(FaultError::TrialConflict { index }) => {
                    let msg = format!(
                        "conflicting results for trial {index} of stratum {}: the determinism \
                         contract is broken (worker ran a different model, seed or build?)",
                        result.unit.stratum
                    );
                    ledger.fatal = Some(msg.clone());
                    self.cv.notify_all();
                    return (409, format!("{{\"error\":{}}}", quote(&msg)));
                }
                Err(other) => {
                    let msg = other.to_string();
                    ledger.fatal = Some(msg.clone());
                    self.cv.notify_all();
                    return (409, format!("{{\"error\":{}}}", quote(&msg)));
                }
            }
        }
        ledger.units[i].state = UnitState::Done;
        if ledger.units.iter().all(|s| s.state == UnitState::Done) {
            self.advance(ledger, unit_trials);
        }
        self.save_checkpoint(ledger);
        self.cv.notify_all();
        (200, "{\"status\":\"ok\",\"fresh\":true}".to_owned())
    }

    fn status_json(&self, ledger: &Ledger) -> String {
        let total: usize = ledger.pools.iter().map(StratumPool::len).sum();
        let pending = ledger
            .units
            .iter()
            .filter(|s| s.state == UnitState::Pending)
            .count();
        let leased = ledger
            .units
            .iter()
            .filter(|s| matches!(s.state, UnitState::Leased { .. }))
            .count();
        let done = ledger
            .units
            .iter()
            .filter(|s| s.state == UnitState::Done)
            .count();
        format!(
            "{{\"round\":{},\"total_trials\":{total},\"pending_units\":{pending},\
             \"leased_units\":{leased},\"done_units\":{done},\"finished\":{},\
             \"converged\":{},\"stopping\":{}}}",
            ledger.rounds, ledger.finished, ledger.converged, ledger.stopping
        )
    }
}

fn quote(text: &str) -> String {
    fitact_io::json::escape_json_string(text)
}

impl Coordinator {
    /// Starts a coordinator: instantiates the artifact, re-derives the
    /// dataset from its provenance pairs, computes the fault-free baseline,
    /// resumes from `options.checkpoint` when a valid checkpoint exists and
    /// begins serving.
    ///
    /// # Errors
    ///
    /// Artifact/dataset/config failures, a checkpoint that belongs to a
    /// different campaign ([`ServeError::Artifact`] wrapping the typed
    /// mismatch), and socket errors.
    pub fn start(
        artifact_bytes: Vec<u8>,
        campaign: StatCampaignConfig,
        model: Arc<dyn FaultModel>,
        options: &CoordinatorConfig,
    ) -> Result<Coordinator, ServeError> {
        if options.unit_trials == 0 {
            return Err(ServeError::InvalidConfig(
                "unit_trials must be non-zero".into(),
            ));
        }
        let artifact = ModelArtifact::from_bytes(&artifact_bytes)?;
        let data_spec = DataSpec::from_meta(|k| artifact.meta(k)).ok_or_else(|| {
            ServeError::InvalidConfig(
                "artifact carries no dataset provenance; train it with `fitact train`".into(),
            )
        })?;
        Self::start_with_data(artifact_bytes, data_spec, campaign, model, options)
    }

    /// As [`Coordinator::start`], but with an explicit dataset spec (CLI
    /// overrides applied by the caller).
    ///
    /// # Errors
    ///
    /// As [`Coordinator::start`].
    pub fn start_with_data(
        artifact_bytes: Vec<u8>,
        data_spec: DataSpec,
        campaign: StatCampaignConfig,
        model: Arc<dyn FaultModel>,
        options: &CoordinatorConfig,
    ) -> Result<Coordinator, ServeError> {
        let fingerprint = fingerprint_bytes(&artifact_bytes);
        let artifact = ModelArtifact::from_bytes(&artifact_bytes)?;
        let mut network = artifact.instantiate()?;
        // The serial campaign path quantizes before running; matching it here
        // is part of the bit-identity contract.
        fitact_faults::quantize_network(&mut network);
        let network_name = network.name().to_owned();
        let (inputs, targets) = data_spec
            .materialize()
            .map_err(|e| ServeError::InvalidConfig(format!("dataset generation failed: {e}")))?;
        let runner = UnitRunner::new(network, inputs, targets, &campaign, options.threads.max(1))
            .map_err(|e| ServeError::Campaign(e.to_string()))?;
        let fault_free = runner.fault_free_accuracy();
        let sampler = runner.sampler().clone();

        let num_strata = sampler.num_strata();
        let pools = match &options.checkpoint {
            Some(path) if path.exists() => {
                let checkpoint = CampaignCheckpoint::load(path)?;
                checkpoint.validate_against(&campaign, model.name(), fingerprint)?;
                if checkpoint.fault_free_accuracy.to_bits() != fault_free.to_bits() {
                    return Err(ServeError::Campaign(format!(
                        "checkpoint fault-free baseline {} differs bitwise from recomputed {}",
                        checkpoint.fault_free_accuracy, fault_free
                    )));
                }
                checkpoint.pools
            }
            _ => vec![StratumPool::new(); num_strata],
        };

        let spec = CampaignSpec {
            config: campaign.clone(),
            model: model.name().to_owned(),
            network: network_name.clone(),
            artifact_fingerprint: fingerprint,
            provenance: fitact_faults::TRIAL_STREAM_PROVENANCE.to_owned(),
            fault_free_accuracy: fault_free,
            unit_trials: options.unit_trials as u32,
            data_meta: data_spec.to_meta(),
        };

        let retry_ms = (options.lease.as_millis() as u64 / 4).clamp(10, 500);
        let shared = Arc::new(Shared {
            ledger: Mutex::new(Ledger {
                pools,
                counts: vec![0; num_strata],
                rounds: 0,
                units: Vec::new(),
                finished: false,
                converged: false,
                stopping: false,
                fatal: None,
            }),
            cv: Condvar::new(),
            z: z_for_confidence(campaign.confidence),
            campaign,
            fault_free,
            populations: (0..sampler.num_strata())
                .map(|s| sampler.population(s))
                .collect(),
            sampler,
            model_name: model.name().to_owned(),
            network_name,
            artifact_bytes,
            spec_bytes: spec.to_bytes(),
            fingerprint,
            checkpoint: options.checkpoint.clone(),
            lease: options.lease,
            retry_ms,
            shutdown: AtomicBool::new(false),
        });

        // Replay completed rounds out of the (possibly resumed) pools.
        {
            let mut ledger = shared.ledger.lock().expect("ledger poisoned");
            shared.advance(&mut ledger, options.unit_trials);
        }

        let listener = TcpListener::bind(&options.listen)?;
        let addr = listener.local_addr()?;
        let accept_shared = Arc::clone(&shared);
        let unit_trials = options.unit_trials;
        let accept_handle = std::thread::spawn(move || {
            accept_loop(listener, accept_shared, unit_trials);
        });

        let executor_handle = if options.local_execute {
            let exec_shared = Arc::clone(&shared);
            let exec_model = Arc::clone(&model);
            Some(std::thread::spawn(move || {
                local_executor(exec_shared, runner, exec_model, unit_trials);
            }))
        } else {
            None
        };

        Ok(Coordinator {
            shared,
            addr,
            accept_handle: Some(accept_handle),
            executor_handle,
        })
    }

    /// The bound listen address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Blocks until the campaign finishes, is stopped or fails.
    ///
    /// `Ok(Some(report))` on completion (the checkpoint file, if any, is
    /// removed); `Ok(None)` after [`Coordinator::stop`] (state checkpointed
    /// for resume). Serving continues either way until
    /// [`Coordinator::shutdown`].
    ///
    /// # Errors
    ///
    /// [`ServeError::Campaign`] when a determinism conflict or checkpoint
    /// write failure aborted the campaign.
    pub fn run_to_completion(&self) -> Result<Option<CampaignReport>, ServeError> {
        let mut ledger = self.shared.ledger.lock().expect("ledger poisoned");
        loop {
            if let Some(msg) = &ledger.fatal {
                return Err(ServeError::Campaign(msg.clone()));
            }
            if ledger.finished {
                let report = assemble_report(
                    &self.shared.campaign,
                    &self.shared.model_name,
                    self.shared.fault_free,
                    &self.shared.sampler,
                    &ledger.pools,
                    ledger.rounds,
                    ledger.converged,
                );
                if let Some(path) = &self.shared.checkpoint {
                    let _ = std::fs::remove_file(path);
                }
                return Ok(Some(report));
            }
            if ledger.stopping {
                self.shared.save_checkpoint(&mut ledger);
                if let Some(msg) = &ledger.fatal {
                    return Err(ServeError::Campaign(msg.clone()));
                }
                return Ok(None);
            }
            ledger = self.shared.cv.wait(ledger).expect("ledger poisoned");
        }
    }

    /// Requests a graceful stop: in-flight units keep merging, no new work
    /// is granted, and [`Coordinator::run_to_completion`] returns `Ok(None)`
    /// after checkpointing.
    pub fn stop(&self) {
        let mut ledger = self.shared.ledger.lock().expect("ledger poisoned");
        ledger.stopping = true;
        self.shared.cv.notify_all();
    }

    /// Progress snapshot as a JSON line (same shape as `/campaign/status`).
    pub fn status(&self) -> String {
        let ledger = self.shared.ledger.lock().expect("ledger poisoned");
        self.shared.status_json(&ledger)
    }

    /// Stops serving and joins the background threads.
    pub fn shutdown(mut self) {
        self.teardown();
    }

    fn teardown(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        {
            let mut ledger = self.shared.ledger.lock().expect("ledger poisoned");
            ledger.stopping = true;
            self.shared.cv.notify_all();
        }
        // Unblock the accept loop.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.accept_handle.take() {
            let _ = handle.join();
        }
        if let Some(handle) = self.executor_handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Coordinator {
    fn drop(&mut self) {
        self.teardown();
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>, unit_trials: usize) {
    for stream in listener.incoming() {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let shared = Arc::clone(&shared);
        std::thread::spawn(move || {
            handle_connection(stream, &shared, unit_trials);
        });
    }
}

fn query_param<'a>(target: &'a str, key: &str) -> Option<&'a str> {
    let (_, query) = target.split_once('?')?;
    query
        .split('&')
        .find_map(|pair| pair.strip_prefix(key)?.strip_prefix('='))
}

fn handle_connection(mut stream: TcpStream, shared: &Shared, unit_trials: usize) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(5)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(5)));
    let request = match read_request(&mut stream, MAX_CONTROL_BODY) {
        Ok(Some(request)) => request,
        _ => return,
    };
    let path = request
        .target
        .split_once('?')
        .map_or(request.target.as_str(), |(p, _)| p);
    match (request.method.as_str(), path) {
        ("GET", "/campaign/spec") => {
            let _ = stream.write_all(&encode_binary_response(200, &shared.spec_bytes));
        }
        ("GET", "/campaign/model") => {
            let _ = stream.write_all(&encode_binary_response(200, &shared.artifact_bytes));
        }
        ("GET", "/campaign/unit") => {
            let worker = query_param(&request.target, "worker").unwrap_or("anonymous");
            let grant = {
                let mut ledger = shared.ledger.lock().expect("ledger poisoned");
                shared.grant(&mut ledger, worker)
            };
            let _ = write_response(&mut stream, 200, &grant.to_json());
        }
        ("POST", "/campaign/result") => handle_result(&mut stream, &request, shared, unit_trials),
        ("GET", "/campaign/status") => {
            let body = {
                let ledger = shared.ledger.lock().expect("ledger poisoned");
                shared.status_json(&ledger)
            };
            let _ = write_response(&mut stream, 200, &body);
        }
        ("GET", "/healthz") => {
            let _ = write_response(&mut stream, 200, "{\"status\":\"ok\"}");
        }
        _ => {
            let _ = write_response(&mut stream, 404, "{\"error\":\"unknown route\"}");
        }
    }
}

fn handle_result(stream: &mut TcpStream, request: &Request, shared: &Shared, unit_trials: usize) {
    let body = match std::str::from_utf8(&request.body) {
        Ok(text) => text,
        Err(_) => {
            let _ = write_response(stream, 400, "{\"error\":\"non-UTF-8 result body\"}");
            return;
        }
    };
    let result = match UnitResult::from_json(body) {
        Ok(result) => result,
        Err(msg) => {
            let _ = write_response(stream, 400, &format!("{{\"error\":{}}}", quote(&msg)));
            return;
        }
    };
    let (status, response) = {
        let mut ledger = shared.ledger.lock().expect("ledger poisoned");
        shared.merge(&mut ledger, &result, unit_trials)
    };
    let _ = write_response(stream, status, &response);
}

/// In-process unit execution: the coordinator degrades gracefully down to
/// running the whole campaign solo through the exact lease/merge path
/// workers use.
fn local_executor(
    shared: Arc<Shared>,
    mut runner: UnitRunner,
    model: Arc<dyn FaultModel>,
    unit_trials: usize,
) {
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let grant = {
            let mut ledger = shared.ledger.lock().expect("ledger poisoned");
            if ledger.stopping || ledger.fatal.is_some() {
                return;
            }
            shared.grant(&mut ledger, "coordinator")
        };
        match grant {
            Grant::Done => return,
            Grant::Wait { retry_ms } => {
                let ledger = shared.ledger.lock().expect("ledger poisoned");
                let _ = shared
                    .cv
                    .wait_timeout(ledger, Duration::from_millis(retry_ms));
            }
            Grant::Unit { unit, .. } => {
                match runner.run_unit(model.as_ref(), unit.stratum, unit.start, unit.count) {
                    Ok(points) => {
                        let result = UnitResult {
                            worker: "coordinator".into(),
                            unit,
                            points,
                        };
                        let mut ledger = shared.ledger.lock().expect("ledger poisoned");
                        shared.merge(&mut ledger, &result, unit_trials);
                    }
                    Err(e) => {
                        let mut ledger = shared.ledger.lock().expect("ledger poisoned");
                        ledger.fatal = Some(format!("local unit execution failed: {e}"));
                        shared.cv.notify_all();
                        return;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_config(strata: usize, round_trials: usize, max_trials: usize) -> StatCampaignConfig {
        StatCampaignConfig {
            round_trials,
            min_trials: max_trials,
            max_trials,
            strata: (0..strata)
                .map(|i| {
                    let mut spec = fitact_faults::StratumSpec::all();
                    spec.label = format!("s{i}");
                    spec
                })
                .collect(),
            ..Default::default()
        }
    }

    /// Planning inputs for a pool-less test: unit populations and empty
    /// pools, which under `equal` allocation are never consulted.
    fn empty_state(strata: usize) -> (Vec<u64>, Vec<StratumPool>) {
        (vec![1; strata], vec![StratumPool::new(); strata])
    }

    #[test]
    fn unit_planning_is_deterministic_and_covers_the_round() {
        let config = test_config(2, 5, 1000);
        let counts = vec![10, 10];
        let (populations, pools) = empty_state(2);
        let units = plan_units(&config, 1.96, 0.9, &populations, &pools, &counts, 3, 2);
        // 5 trials per stratum in units of ≤2: 3 units each.
        assert_eq!(units.len(), 6);
        assert_eq!(units[0].unit.id, unit_id(3, 0));
        let covered: usize = units.iter().map(|s| s.unit.count).sum();
        assert_eq!(covered, 10);
        for slot in &units {
            assert!(slot.unit.start >= counts[slot.unit.stratum]);
            assert!(slot.unit.count <= 2);
        }
        // Bit-for-bit identical on re-derivation (resume contract).
        let again = plan_units(&config, 1.96, 0.9, &populations, &pools, &counts, 3, 2);
        for (a, b) in units.iter().zip(&again) {
            assert_eq!(a.unit, b.unit);
        }
    }

    #[test]
    fn truncated_final_round_still_partitions_exactly() {
        let config = test_config(3, 8, 20);
        // 18 scheduled so far; round would be 24, only 2 remain.
        let counts = vec![6, 6, 6];
        let (populations, pools) = empty_state(3);
        let units = plan_units(&config, 1.96, 0.9, &populations, &pools, &counts, 2, 8);
        let covered: usize = units.iter().map(|s| s.unit.count).sum();
        assert_eq!(covered, 2);
    }

    #[test]
    fn neyman_unit_planning_is_a_pure_function_of_pool_state() {
        let config = StatCampaignConfig {
            allocation: fitact_faults::AllocationPolicy::Neyman,
            ..test_config(2, 6, 1000)
        };
        let populations = vec![100, 100];
        // Seed stratum 1 with visibly mixed outcomes so its σ estimate —
        // and therefore its allocation share — exceeds stratum 0's.
        let mut pools = vec![StratumPool::new(); 2];
        for i in 0..8u64 {
            let accuracy = if i % 2 == 0 { 0.9 } else { 0.1 };
            let steady = fitact_faults::TrialPoint {
                accuracy: 0.9,
                faults: 1,
            };
            let mixed = fitact_faults::TrialPoint {
                accuracy,
                faults: 1,
            };
            pools[0].insert(i, steady).unwrap();
            pools[1].insert(i, mixed).unwrap();
        }
        let counts = vec![8, 8];
        let units = plan_units(&config, 1.96, 0.9, &populations, &pools, &counts, 1, 3);
        let covered: usize = units.iter().map(|s| s.unit.count).sum();
        assert_eq!(covered, 12, "round budget is strata × round_trials");
        let stratum1: usize = units
            .iter()
            .filter(|s| s.unit.stratum == 1)
            .map(|s| s.unit.count)
            .sum();
        assert!(
            stratum1 > 6,
            "high-variance stratum must receive more than an equal share, got {stratum1}"
        );
        // Identical pools ⇒ identical plan, bit for bit.
        let again = plan_units(&config, 1.96, 0.9, &populations, &pools, &counts, 1, 3);
        assert_eq!(units.len(), again.len());
        for (a, b) in units.iter().zip(&again) {
            assert_eq!(a.unit, b.unit);
        }
    }

    #[test]
    fn query_params_parse() {
        assert_eq!(
            query_param("/campaign/unit?worker=w0", "worker"),
            Some("w0")
        );
        assert_eq!(
            query_param("/campaign/unit?a=1&worker=x%20y", "worker"),
            Some("x%20y")
        );
        assert_eq!(query_param("/campaign/unit", "worker"), None);
        assert_eq!(query_param("/campaign/unit?other=1", "worker"), None);
    }
}
