//! Exponential backoff with jitter for worker-side retries.
//!
//! Campaign workers retry every coordinator interaction — spec fetch, unit
//! fetch, result report — through one [`Backoff`] policy: the raw delay
//! doubles per consecutive failure up to a cap, and the actual delay is
//! jittered uniformly over the upper half of the raw window (`raw/2 ..= raw`)
//! so a fleet of workers restarted together does not hammer a recovering
//! coordinator in lockstep. The jitter stream is a seeded per-worker
//! [`StdRng`], which keeps every delay decision reproducible under test.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Deterministic exponential-backoff-with-jitter policy.
#[derive(Debug)]
pub struct Backoff {
    base_ms: u64,
    cap_ms: u64,
    attempt: u32,
    rng: StdRng,
}

impl Backoff {
    /// Creates a policy: the first delay is drawn from `base_ms/2 ..= base_ms`,
    /// doubling per failure up to `cap_ms`. `seed` pins the jitter stream
    /// (derive it from the worker id so workers decorrelate).
    pub fn new(base_ms: u64, cap_ms: u64, seed: u64) -> Self {
        Backoff {
            base_ms: base_ms.max(1),
            cap_ms: cap_ms.max(base_ms.max(1)),
            attempt: 0,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Consecutive failures recorded since the last [`Backoff::reset`].
    pub fn attempt(&self) -> u32 {
        self.attempt
    }

    /// The un-jittered delay for the current attempt: `base · 2^attempt`,
    /// saturating at the cap.
    pub fn raw_delay_ms(&self) -> u64 {
        let doubled = if self.attempt >= 63 {
            u64::MAX
        } else {
            self.base_ms.saturating_mul(1u64 << self.attempt)
        };
        doubled.min(self.cap_ms)
    }

    /// Records a failure and returns the jittered delay to sleep before the
    /// next try: uniform over `raw/2 ..= raw`.
    pub fn next_delay_ms(&mut self) -> u64 {
        let raw = self.raw_delay_ms();
        self.attempt = self.attempt.saturating_add(1);
        let half = raw / 2;
        half + self.rng.gen_range(0..=raw - half)
    }

    /// Records a success: the next failure starts back at the base delay.
    pub fn reset(&mut self) {
        self.attempt = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn raw_delay_doubles_then_caps() {
        let mut b = Backoff::new(100, 1500, 0);
        let mut raws = Vec::new();
        for _ in 0..8 {
            raws.push(b.raw_delay_ms());
            b.next_delay_ms();
        }
        assert_eq!(raws, vec![100, 200, 400, 800, 1500, 1500, 1500, 1500]);
    }

    #[test]
    fn jitter_stays_in_the_upper_half_window() {
        let mut b = Backoff::new(64, 4096, 7);
        for _ in 0..64 {
            let raw = b.raw_delay_ms();
            let delay = b.next_delay_ms();
            assert!(
                delay >= raw / 2 && delay <= raw,
                "delay {delay} outside [{}, {raw}]",
                raw / 2
            );
        }
    }

    #[test]
    fn seeded_jitter_is_deterministic_and_per_worker_decorrelated() {
        let sequence = |seed: u64| -> Vec<u64> {
            let mut b = Backoff::new(100, 10_000, seed);
            (0..6).map(|_| b.next_delay_ms()).collect()
        };
        assert_eq!(sequence(3), sequence(3));
        assert_ne!(sequence(3), sequence(4));
    }

    #[test]
    fn reset_returns_to_the_base_delay() {
        let mut b = Backoff::new(50, 6400, 1);
        for _ in 0..5 {
            b.next_delay_ms();
        }
        assert_eq!(b.attempt(), 5);
        assert_eq!(b.raw_delay_ms(), 1600);
        b.reset();
        assert_eq!(b.attempt(), 0);
        assert_eq!(b.raw_delay_ms(), 50);
        let delay = b.next_delay_ms();
        assert!((25..=50).contains(&delay));
    }

    #[test]
    fn extreme_attempts_saturate_instead_of_overflowing() {
        let mut b = Backoff::new(u64::MAX / 2, u64::MAX, 0);
        for _ in 0..70 {
            let delay = b.next_delay_ms();
            assert!(delay >= u64::MAX / 4);
        }
        assert_eq!(b.raw_delay_ms(), u64::MAX);

        // Degenerate configuration is clamped, not divide-by-zero.
        let mut zero = Backoff::new(0, 0, 0);
        assert!(zero.next_delay_ms() <= 1);
    }
}
