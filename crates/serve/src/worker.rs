//! The campaign worker: pulls leased work units from a coordinator,
//! executes them bit-identically and reports results with retry.
//!
//! A worker is stateless by design — everything it needs (campaign config,
//! dataset provenance, the model artifact) is fetched from the coordinator
//! at startup, and every trial is a pure function of `(seed, stratum,
//! index)`. Workers can therefore join late, crash, restart or be killed
//! mid-unit without affecting the campaign's result: an unreported lease
//! simply expires and the unit is re-dispatched.
//!
//! All coordinator interactions retry through one [`Backoff`] policy
//! (exponential with seeded jitter, reset on success). A `409 Conflict`
//! from the coordinator is **not** retried: it signals a broken determinism
//! contract (mismatched build, model or seed) and the worker aborts with a
//! typed error instead of hammering a campaign it can only poison.

use crate::backoff::Backoff;
use crate::http::Response;
use crate::protocol::{
    fault_model_by_name, http_call, Grant, UnitResult, MAX_BINARY_BODY, MAX_CONTROL_BODY,
};
use crate::ServeError;
use fitact_data::DataSpec;
use fitact_faults::{FaultModel, UnitRunner, TRIAL_STREAM_PROVENANCE};
use fitact_io::{fingerprint_bytes, CampaignSpec, ModelArtifact};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

/// Worker-side options.
#[derive(Debug, Clone)]
pub struct WorkerConfig {
    /// Coordinator address (`host:port`).
    pub coordinator: String,
    /// Stable worker id (appears in leases and coordinator logs).
    pub worker_id: String,
    /// Evaluation threads for unit execution.
    pub threads: usize,
    /// Base retry delay in milliseconds.
    pub backoff_base_ms: u64,
    /// Retry delay cap in milliseconds.
    pub backoff_cap_ms: u64,
    /// Consecutive failed attempts before the worker gives up on the
    /// coordinator.
    pub max_retries: u32,
    /// Per-exchange socket timeout.
    pub request_timeout: Duration,
}

impl Default for WorkerConfig {
    fn default() -> Self {
        WorkerConfig {
            coordinator: "127.0.0.1:0".into(),
            worker_id: "worker".into(),
            threads: 1,
            backoff_base_ms: 100,
            backoff_cap_ms: 5_000,
            max_retries: 8,
            request_timeout: Duration::from_secs(10),
        }
    }
}

/// What a worker accomplished before exiting cleanly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerSummary {
    /// The worker's id.
    pub worker_id: String,
    /// Units executed and accepted.
    pub units: usize,
    /// Trials executed and accepted.
    pub trials: usize,
}

/// Retries `call` under `backoff` until it succeeds or `max_retries`
/// consecutive attempts fail. `Err` values are retryable transport
/// failures; HTTP status handling is the caller's business.
fn with_retries<T>(
    what: &str,
    backoff: &mut Backoff,
    max_retries: u32,
    stop: &AtomicBool,
    mut call: impl FnMut() -> Result<T, String>,
) -> Result<T, ServeError> {
    loop {
        if stop.load(Ordering::SeqCst) {
            return Err(ServeError::Campaign(format!("{what}: stopped")));
        }
        match call() {
            Ok(value) => {
                backoff.reset();
                return Ok(value);
            }
            Err(e) if backoff.attempt() < max_retries => {
                std::thread::sleep(Duration::from_millis(backoff.next_delay_ms()));
                let _ = e;
            }
            Err(e) => {
                return Err(ServeError::Campaign(format!(
                    "{what} failed after {max_retries} retries: {e}"
                )));
            }
        }
    }
}

/// A successful exchange whose status is still fatal (4xx) vs retryable
/// (5xx / transport): 5xx is turned back into a retryable `Err`.
fn retryable_status(response: Response) -> Result<Response, String> {
    if response.status >= 500 {
        Err(format!("coordinator answered {}", response.status))
    } else {
        Ok(response)
    }
}

/// Runs a worker until the campaign completes (see [`run_worker_until`]).
///
/// # Errors
///
/// As [`run_worker_until`].
pub fn run_worker(config: &WorkerConfig) -> Result<WorkerSummary, ServeError> {
    run_worker_until(config, &AtomicBool::new(false))
}

/// Runs a worker until the coordinator reports the campaign done or `stop`
/// becomes `true`. Fetches the campaign spec and model artifact, verifies
/// the determinism contract (provenance tag, artifact fingerprint and the
/// recomputed fault-free baseline must match the coordinator's bit-exactly)
/// and then loops fetch-unit → execute → report.
///
/// # Errors
///
/// [`ServeError::Campaign`] when the coordinator stays unreachable past the
/// retry budget, serves an incompatible campaign, or rejects a result with
/// `409 Conflict` (determinism violation).
pub fn run_worker_until(
    config: &WorkerConfig,
    stop: &AtomicBool,
) -> Result<WorkerSummary, ServeError> {
    let mut backoff = Backoff::new(
        config.backoff_base_ms,
        config.backoff_cap_ms,
        fingerprint_bytes(config.worker_id.as_bytes()),
    );
    let addr = config.coordinator.as_str();
    let timeout = config.request_timeout;

    let spec_response = with_retries(
        "fetch campaign spec",
        &mut backoff,
        config.max_retries,
        stop,
        || {
            http_call(
                addr,
                "GET",
                "/campaign/spec",
                &[],
                timeout,
                MAX_CONTROL_BODY,
            )
            .and_then(retryable_status)
        },
    )?;
    let spec = CampaignSpec::from_bytes(&spec_response.body)?;
    if spec.provenance != TRIAL_STREAM_PROVENANCE {
        return Err(ServeError::Campaign(format!(
            "coordinator derives trial streams as `{}`, this build as `{}`; results would not \
             be bit-identical",
            spec.provenance, TRIAL_STREAM_PROVENANCE
        )));
    }
    let model: Box<dyn FaultModel> = fault_model_by_name(&spec.model).ok_or_else(|| {
        ServeError::Campaign(format!(
            "campaign uses fault model `{}`, which cannot travel by name",
            spec.model
        ))
    })?;

    let artifact_response = with_retries(
        "fetch model artifact",
        &mut backoff,
        config.max_retries,
        stop,
        || {
            http_call(
                addr,
                "GET",
                "/campaign/model",
                &[],
                timeout,
                MAX_BINARY_BODY,
            )
            .and_then(retryable_status)
        },
    )?;
    if fingerprint_bytes(&artifact_response.body) != spec.artifact_fingerprint {
        return Err(ServeError::Campaign(
            "model artifact bytes do not match the campaign spec's fingerprint".into(),
        ));
    }
    let artifact = ModelArtifact::from_bytes(&artifact_response.body)?;
    let mut network = artifact.instantiate()?;
    // Match the serial campaign path, which quantizes before running — part
    // of the bit-identity contract (and checked below through the baseline).
    fitact_faults::quantize_network(&mut network);

    let data_spec = DataSpec::from_meta(|key| {
        spec.data_meta
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    })
    .ok_or_else(|| ServeError::Campaign("campaign spec carries no dataset provenance".into()))?;
    let (inputs, targets) = data_spec
        .materialize()
        .map_err(|e| ServeError::Campaign(format!("dataset generation failed: {e}")))?;

    let mut runner = UnitRunner::new(
        network,
        inputs,
        targets,
        &spec.config,
        config.threads.max(1),
    )
    .map_err(|e| ServeError::Campaign(e.to_string()))?;
    if runner.fault_free_accuracy().to_bits() != spec.fault_free_accuracy.to_bits() {
        return Err(ServeError::Campaign(format!(
            "recomputed fault-free baseline {} differs bitwise from the coordinator's {}; \
             refusing to contribute non-identical results",
            runner.fault_free_accuracy(),
            spec.fault_free_accuracy
        )));
    }

    let mut summary = WorkerSummary {
        worker_id: config.worker_id.clone(),
        units: 0,
        trials: 0,
    };
    let unit_target = format!("/campaign/unit?worker={}", config.worker_id);
    loop {
        if stop.load(Ordering::SeqCst) {
            return Ok(summary);
        }
        let grant_response = with_retries(
            "fetch work unit",
            &mut backoff,
            config.max_retries,
            stop,
            || {
                http_call(addr, "GET", &unit_target, &[], timeout, MAX_CONTROL_BODY)
                    .and_then(retryable_status)
            },
        )?;
        let grant = Grant::from_json(std::str::from_utf8(&grant_response.body).unwrap_or(""))
            .map_err(|e| ServeError::Campaign(format!("malformed grant: {e}")))?;
        match grant {
            Grant::Done => return Ok(summary),
            Grant::Wait { retry_ms } => {
                std::thread::sleep(Duration::from_millis(retry_ms.min(2_000)));
            }
            Grant::Unit { unit, .. } => {
                let points = runner
                    .run_unit(model.as_ref(), unit.stratum, unit.start, unit.count)
                    .map_err(|e| ServeError::Campaign(format!("unit execution failed: {e}")))?;
                let trials = points.len();
                let result = UnitResult {
                    worker: config.worker_id.clone(),
                    unit,
                    points,
                };
                let body = result.to_json();
                let report_response = with_retries(
                    "report unit result",
                    &mut backoff,
                    config.max_retries,
                    stop,
                    || {
                        http_call(
                            addr,
                            "POST",
                            "/campaign/result",
                            body.as_bytes(),
                            timeout,
                            MAX_CONTROL_BODY,
                        )
                        .and_then(retryable_status)
                    },
                )?;
                if report_response.status == 409 {
                    return Err(ServeError::Campaign(format!(
                        "coordinator rejected unit {}: {}",
                        unit.id,
                        String::from_utf8_lossy(&report_response.body)
                    )));
                }
                summary.units += 1;
                summary.trials += trials;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retry_helper_retries_then_gives_up_with_a_typed_error() {
        let stop = AtomicBool::new(false);
        let mut backoff = Backoff::new(1, 2, 0);
        let mut calls = 0;
        let out: Result<u32, _> = with_retries("probe", &mut backoff, 3, &stop, || {
            calls += 1;
            if calls < 3 {
                Err("down".into())
            } else {
                Ok(7)
            }
        });
        assert_eq!(out.unwrap(), 7);
        assert_eq!(calls, 3);
        assert_eq!(backoff.attempt(), 0, "success resets the backoff");

        let mut backoff = Backoff::new(1, 2, 0);
        let mut calls = 0;
        let out: Result<u32, _> = with_retries("probe", &mut backoff, 2, &stop, || {
            calls += 1;
            Err("still down".into())
        });
        match out {
            Err(ServeError::Campaign(msg)) => {
                assert!(msg.contains("probe"), "{msg}");
                assert!(msg.contains("still down"), "{msg}");
            }
            other => panic!("expected Campaign error, got {other:?}"),
        }
        assert_eq!(calls, 3, "initial try plus two retries");
    }

    #[test]
    fn retry_helper_honours_the_stop_flag() {
        let stop = AtomicBool::new(true);
        let mut backoff = Backoff::new(1, 2, 0);
        let out: Result<u32, _> =
            with_retries("probe", &mut backoff, 100, &stop, || Err("never".into()));
        assert!(matches!(out, Err(ServeError::Campaign(_))));
    }

    #[test]
    fn server_errors_are_retryable_client_errors_are_not() {
        let ok = Response {
            status: 409,
            headers: Vec::new(),
            body: Vec::new(),
        };
        assert_eq!(retryable_status(ok).unwrap().status, 409);
        let bad = Response {
            status: 503,
            headers: Vec::new(),
            body: Vec::new(),
        };
        assert!(retryable_status(bad).is_err());
    }

    #[test]
    fn unreachable_coordinator_fails_after_the_retry_budget() {
        let config = WorkerConfig {
            // Reserved port on localhost: connects fail fast.
            coordinator: "127.0.0.1:1".into(),
            worker_id: "w-test".into(),
            backoff_base_ms: 1,
            backoff_cap_ms: 2,
            max_retries: 2,
            request_timeout: Duration::from_millis(200),
            ..WorkerConfig::default()
        };
        match run_worker(&config) {
            Err(ServeError::Campaign(msg)) => assert!(msg.contains("fetch campaign spec"), "{msg}"),
            other => panic!("expected Campaign error, got {other:?}"),
        }
    }
}
