//! Server behaviour tests over real sockets: routing, error paths,
//! validation, shutdown semantics and startup failure modes.
//!
//! (The bit-identity acceptance test against the golden AlexNet artifact
//! lives in the workspace suite `tests/serve_identity.rs`.)

use fitact_io::{JsonValue, ModelArtifact};
use fitact_nn::layers::{ActivationLayer, Linear, Sequential};
use fitact_nn::Network;
use fitact_serve::{ServeConfig, ServeError, Server};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::time::Duration;

fn http(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, JsonValue) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let request = format!(
        "{method} {path} HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(request.as_bytes()).unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).unwrap();
    let status: u16 = response.split(' ').nth(1).unwrap().parse().unwrap();
    let body = response.split("\r\n\r\n").nth(1).unwrap();
    (status, JsonValue::parse(body).expect("JSON body"))
}

fn tiny_artifact() -> ModelArtifact {
    let mut rng = StdRng::seed_from_u64(77);
    let net = Network::new(
        "tiny-mlp",
        Sequential::new()
            .with(Box::new(Linear::new(4, 16, &mut rng)))
            .with(Box::new(ActivationLayer::relu("h", &[16])))
            .with(Box::new(Linear::new(16, 3, &mut rng))),
    );
    ModelArtifact::capture(&net).unwrap()
}

fn temp_model(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fitact_serve_http_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

fn start_tiny(max_batch: usize, max_wait_ms: u64) -> (Server, SocketAddr, PathBuf) {
    let path = temp_model("tiny.fitact");
    tiny_artifact().save(&path).unwrap();
    let server = Server::start(
        &path,
        &ServeConfig {
            max_batch,
            max_wait: Duration::from_millis(max_wait_ms),
            workers: 2,
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let addr = server.addr();
    (server, addr, path)
}

#[test]
fn routing_and_validation_errors() {
    let (server, addr, _) = start_tiny(4, 5);
    // Unknown route.
    let (status, body) = http(addr, "GET", "/nope", "");
    assert_eq!(status, 404);
    assert!(body
        .get("error")
        .unwrap()
        .as_str()
        .unwrap()
        .contains("/nope"));
    // Known route, wrong method.
    let (status, _) = http(addr, "GET", "/predict", "");
    assert_eq!(status, 405);
    let (status, _) = http(addr, "POST", "/healthz", "");
    assert_eq!(status, 405);
    // Malformed bodies.
    let (status, body) = http(addr, "POST", "/predict", "not json");
    assert_eq!(status, 400);
    assert!(body
        .get("error")
        .unwrap()
        .as_str()
        .unwrap()
        .contains("JSON"));
    let (status, body) = http(addr, "POST", "/predict", r#"{"inputs": [[1, 2]]}"#);
    assert_eq!(status, 400);
    assert!(body
        .get("error")
        .unwrap()
        .as_str()
        .unwrap()
        .contains("the model takes 4"));
    // Errors do not poison the server.
    let (status, body) = http(addr, "POST", "/predict", r#"{"input": [1, 2, 3, 4]}"#);
    assert_eq!(status, 200, "{body}");
    assert_eq!(body.get("outputs").unwrap().as_array().unwrap().len(), 1);
    server.shutdown();
    server.join();
}

#[test]
fn malformed_http_framing_is_answered_with_400() {
    let (server, addr, _) = start_tiny(4, 5);
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    stream.write_all(b"GET /healthz SPDY/99\r\n\r\n").unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).unwrap();
    assert!(response.starts_with("HTTP/1.1 400"), "{response}");
    server.shutdown();
    server.join();
}

#[test]
fn predict_after_shutdown_is_503_and_join_is_clean() {
    let (server, addr, _) = start_tiny(4, 5);
    let (status, _) = http(addr, "POST", "/admin/shutdown", "");
    assert_eq!(status, 200);
    // Shutdown is idempotent and the server keeps answering its admin
    // plane until the listener notices; a racing predict is rejected, not
    // hung. (The accept loop may already be gone — connection refused is
    // an acceptable outcome too.)
    if let Ok(mut stream) = TcpStream::connect(addr) {
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .unwrap();
        let body = r#"{"input": [1, 2, 3, 4]}"#;
        let request = format!(
            "POST /predict HTTP/1.1\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        );
        if stream.write_all(request.as_bytes()).is_ok() {
            let mut response = String::new();
            if stream.read_to_string(&mut response).is_ok() && !response.is_empty() {
                assert!(
                    response.starts_with("HTTP/1.1 503"),
                    "a post-shutdown predict must be rejected: {response}"
                );
            }
        }
    }
    server.join();
}

#[test]
fn startup_on_corrupt_artifact_is_a_typed_error_not_a_panic() {
    let path = temp_model("corrupt.fitact");
    // An unknown protection-scheme tag: decodes up to the scheme, then must
    // fail with `IoError::Corrupt` (the serve-relevant metadata edge case —
    // an operator pointing the server at an artifact from a newer build
    // gets a clean refusal). The poke targets the v1 encoding, where the
    // scheme section is the trailing bytes — which also pins that the
    // server still reads (and type-checks) v1 artifacts at all.
    let mut bytes = tiny_artifact().to_bytes_v1();
    assert_eq!(bytes.pop(), Some(0), "trailing byte is the scheme marker");
    bytes.push(1); // scheme present
    bytes.push(250); // unknown tag
    bytes.extend_from_slice(&8.0f32.to_le_bytes()); // slope
    std::fs::write(&path, &bytes).unwrap();
    match Server::start(&path, &ServeConfig::default()) {
        Err(ServeError::Artifact(fitact_io::IoError::Corrupt(msg))) => {
            assert!(msg.contains("250"), "{msg}");
        }
        other => panic!("expected a Corrupt artifact error, got {other:?}"),
    }
    // Truncated artifact: same contract.
    std::fs::write(&path, &tiny_artifact().to_bytes()[..40]).unwrap();
    assert!(matches!(
        Server::start(&path, &ServeConfig::default()),
        Err(ServeError::Artifact(fitact_io::IoError::Truncated { .. }))
    ));
    // Missing file.
    assert!(matches!(
        Server::start(temp_model("missing.fitact"), &ServeConfig::default()),
        Err(ServeError::Artifact(fitact_io::IoError::Io(_)))
    ));
}

#[test]
fn invalid_configurations_are_rejected() {
    let path = temp_model("cfg.fitact");
    tiny_artifact().save(&path).unwrap();
    for config in [
        ServeConfig {
            workers: 0,
            ..ServeConfig::default()
        },
        ServeConfig {
            max_batch: 0,
            ..ServeConfig::default()
        },
        ServeConfig {
            input_shape: Some(vec![]),
            ..ServeConfig::default()
        },
        ServeConfig {
            max_queue: 0,
            ..ServeConfig::default()
        },
        ServeConfig {
            max_connections: 0,
            ..ServeConfig::default()
        },
        ServeConfig {
            canary_rate: -0.5,
            ..ServeConfig::default()
        },
        ServeConfig {
            canary_rate: f64::NAN,
            ..ServeConfig::default()
        },
    ] {
        assert!(matches!(
            Server::start(&path, &config),
            Err(ServeError::InvalidConfig(_))
        ));
    }
}

#[test]
fn metrics_track_a_mixed_workload() {
    let (server, addr, _) = start_tiny(2, 5);
    let body = r#"{"inputs": [[1, 2, 3, 4], [5, 6, 7, 8], [9, 10, 11, 12], [13, 14, 15, 16]]}"#;
    let (status, response) = http(addr, "POST", "/predict", body);
    assert_eq!(status, 200);
    // 4 atomically queued rows, max_batch 2: exactly two full batches.
    let sizes: Vec<f64> = response
        .get("batch_sizes")
        .unwrap()
        .as_array()
        .unwrap()
        .iter()
        .map(|v| v.as_f64().unwrap())
        .collect();
    assert_eq!(sizes, vec![2.0, 2.0, 2.0, 2.0]);
    let (_, _) = http(addr, "POST", "/predict", "garbage"); // rejected pre-queue
    let (status, metrics) = http(addr, "GET", "/metrics", "");
    assert_eq!(status, 200);
    assert_eq!(metrics.get("rows_total").unwrap().as_f64(), Some(4.0));
    assert_eq!(metrics.get("responses_total").unwrap().as_f64(), Some(4.0));
    assert_eq!(
        metrics
            .path(&["batch_size_histogram", "2"])
            .unwrap()
            .as_f64(),
        Some(2.0)
    );
    assert!(
        metrics
            .path(&["latency_us", "p50"])
            .unwrap()
            .as_f64()
            .unwrap()
            >= 0.0
    );
    server.shutdown();
    let final_metrics = server.join();
    assert_eq!(final_metrics.batches_total, 2);
}

#[test]
fn metrics_reset_clears_latency_window_but_not_counters() {
    let (server, addr, _) = start_tiny(4, 5);
    for _ in 0..3 {
        let (status, _) = http(addr, "POST", "/predict", r#"{"input": [1, 2, 3, 4]}"#);
        assert_eq!(status, 200);
    }
    let (_, before) = http(addr, "GET", "/metrics", "");
    assert_eq!(
        before.path(&["latency_us", "count"]).unwrap().as_f64(),
        Some(3.0)
    );
    // Wrong method on the new route is 405, like every other known route.
    let (status, _) = http(addr, "GET", "/admin/metrics/reset", "");
    assert_eq!(status, 405);
    let (status, body) = http(addr, "POST", "/admin/metrics/reset", "");
    assert_eq!(status, 200);
    assert!(body
        .get("status")
        .unwrap()
        .as_str()
        .unwrap()
        .contains("reset"));
    let (_, after) = http(addr, "GET", "/metrics", "");
    assert!(
        matches!(after.get("latency_us"), Some(JsonValue::Null)),
        "percentiles must restart from empty: {after}"
    );
    assert_eq!(
        after.get("latency_resets_total").unwrap().as_f64(),
        Some(1.0)
    );
    assert_eq!(
        after.get("responses_total").unwrap().as_f64(),
        Some(3.0),
        "cumulative counters survive a reset"
    );
    // Percentiles repopulate from fresh traffic only.
    let (status, _) = http(addr, "POST", "/predict", r#"{"input": [1, 2, 3, 4]}"#);
    assert_eq!(status, 200);
    let (_, repopulated) = http(addr, "GET", "/metrics", "");
    assert_eq!(
        repopulated.path(&["latency_us", "count"]).unwrap().as_f64(),
        Some(1.0)
    );
    server.shutdown();
    server.join();
}

#[test]
fn violation_telemetry_reports_clean_zeroes_for_an_unprotected_model() {
    // ReLU slots have no bounds, so every trace is clean — but the telemetry
    // block must still be present and well-formed for dashboards.
    let (server, addr, _) = start_tiny(4, 5);
    let (status, _) = http(addr, "POST", "/predict", r#"{"input": [1, 2, 3, 4]}"#);
    assert_eq!(status, 200);
    let (_, metrics) = http(addr, "GET", "/metrics", "");
    assert_eq!(
        metrics
            .path(&["violations", "batches_total"])
            .unwrap()
            .as_f64(),
        Some(0.0)
    );
    assert_eq!(
        metrics
            .path(&["violations", "layers", "h", "violations"])
            .unwrap()
            .as_f64(),
        Some(0.0)
    );
    assert!(
        metrics
            .path(&["violations", "layers", "h", "elements"])
            .unwrap()
            .as_f64()
            .unwrap()
            > 0.0,
        "the slot inspected every pre-activation element"
    );
    // No canary configured: nothing injected, coverage unmeasured (null).
    assert_eq!(
        metrics.path(&["canary", "batches_total"]).unwrap().as_f64(),
        Some(0.0)
    );
    assert!(matches!(
        metrics.path(&["canary", "detection_coverage"]),
        Some(JsonValue::Null)
    ));
    server.shutdown();
    server.join();
}

#[test]
fn reload_failure_keeps_the_old_model_serving() {
    let (server, addr, path) = start_tiny(4, 5);
    let (status, before) = http(addr, "POST", "/predict", r#"{"input": [1, 2, 3, 4]}"#);
    assert_eq!(status, 200);
    // Corrupt the on-disk artifact, then ask for a reload: it must fail
    // without disturbing the in-memory model. The replacement follows the
    // deployment contract (`docs/artifact-format.md`): atomic rename, never
    // an in-place overwrite — the live model's read-only mapping stays on
    // the old inode, untouched.
    let staged = path.with_extension("fitact.tmp");
    std::fs::write(&staged, b"garbage").unwrap();
    std::fs::rename(&staged, &path).unwrap();
    let (status, reload) = http(addr, "POST", "/admin/reload", "");
    assert_eq!(status, 500);
    assert!(reload
        .get("error")
        .unwrap()
        .as_str()
        .unwrap()
        .contains("reload failed"));
    let (status, after) = http(addr, "POST", "/predict", r#"{"input": [1, 2, 3, 4]}"#);
    assert_eq!(status, 200);
    assert_eq!(
        before.get("outputs").unwrap(),
        after.get("outputs").unwrap(),
        "a failed reload must not change serving numerics"
    );
    let (_, health) = http(addr, "GET", "/healthz", "");
    assert_eq!(health.get("generation").unwrap().as_f64(), Some(1.0));
    server.shutdown();
    server.join();
}

#[test]
fn full_queue_answers_503_with_backpressure() {
    let path = temp_model("backpressure.fitact");
    tiny_artifact().save(&path).unwrap();
    let server = Server::start(
        &path,
        &ServeConfig {
            max_batch: 8,
            max_wait: Duration::from_millis(5),
            workers: 1,
            max_queue: 2,
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let addr = server.addr();
    // A 3-row request cannot ever fit the 2-row queue: the atomic push is
    // rejected whole, deterministically, regardless of worker speed.
    let body = r#"{"inputs": [[1, 2, 3, 4], [5, 6, 7, 8], [9, 10, 11, 12]]}"#;
    let (status, response) = http(addr, "POST", "/predict", body);
    assert_eq!(status, 503, "{response}");
    assert!(response
        .get("error")
        .unwrap()
        .as_str()
        .unwrap()
        .contains("overloaded"));
    // A fitting request still succeeds.
    let (status, _) = http(
        addr,
        "POST",
        "/predict",
        r#"{"inputs": [[1, 2, 3, 4], [5, 6, 7, 8]]}"#,
    );
    assert_eq!(status, 200);
    server.shutdown();
    server.join();
}

#[test]
fn reload_with_a_different_input_shape_fails_stale_rows_cleanly() {
    let path = temp_model("reshape.fitact");
    tiny_artifact().save(&path).unwrap(); // 4 input features
    let server = Server::start(
        &path,
        &ServeConfig {
            max_batch: 16,
            // A long window: the queued row waits while the reload lands.
            max_wait: Duration::from_millis(1500),
            workers: 1,
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let addr = server.addr();
    // Queue a row validated against the 4-feature model...
    let client =
        std::thread::spawn(move || http(addr, "POST", "/predict", r#"{"input": [1, 2, 3, 4]}"#));
    std::thread::sleep(Duration::from_millis(100));
    // ...then hot-swap in an 8-feature model while the row waits.
    let mut rng = StdRng::seed_from_u64(78);
    let wide = Network::new(
        "wide-mlp",
        Sequential::new().with(Box::new(Linear::new(8, 3, &mut rng))),
    );
    ModelArtifact::capture(&wide).unwrap().save(&path).unwrap();
    let (status, _) = http(addr, "POST", "/admin/reload", "");
    assert_eq!(status, 200);
    // The stale row must get a clean typed error, not kill the worker.
    let (status, response) = client.join().unwrap();
    assert_eq!(status, 500, "{response}");
    assert!(response
        .get("error")
        .unwrap()
        .as_str()
        .unwrap()
        .contains("reloaded"));
    // The worker survived: a correctly shaped request is served.
    let (status, response) = http(
        addr,
        "POST",
        "/predict",
        r#"{"input": [1, 2, 3, 4, 5, 6, 7, 8]}"#,
    );
    assert_eq!(status, 200, "{response}");
    server.shutdown();
    server.join();
}

#[test]
fn f16_artifact_serves_mapped_under_a_precision_pin() {
    let path = temp_model("tiny_f16.fitact");
    let mut rng = StdRng::seed_from_u64(79);
    let mut net = Network::new(
        "tiny-f16",
        Sequential::new()
            .with(Box::new(Linear::new(4, 16, &mut rng)))
            .with(Box::new(ActivationLayer::relu("h", &[16])))
            .with(Box::new(Linear::new(16, 3, &mut rng))),
    );
    net.quantize_to(fitact_tensor::Precision::F16);
    ModelArtifact::capture(&net).unwrap().save(&path).unwrap();
    let server = Server::start(
        &path,
        &ServeConfig {
            max_batch: 4,
            max_wait: Duration::from_millis(2),
            workers: 2,
            precision: Some(fitact_tensor::Precision::F16),
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let addr = server.addr();
    let (status, health) = http(addr, "GET", "/healthz", "");
    assert_eq!(status, 200);
    assert_eq!(health.get("precision").unwrap().as_str().unwrap(), "f16");
    assert_eq!(
        health.get("mapped"),
        Some(&JsonValue::Bool(true)),
        "half-precision weights must serve zero-copy from the mapping"
    );
    let (status, response) = http(addr, "POST", "/predict", r#"{"input": [1, 2, 3, 4]}"#);
    assert_eq!(status, 200, "{response}");
    let outputs = response.get("outputs").unwrap();
    let row = match outputs {
        JsonValue::Array(rows) => match &rows[0] {
            JsonValue::Array(row) => row.len(),
            other => panic!("expected a row, got {other}"),
        },
        other => panic!("expected rows, got {other}"),
    };
    assert_eq!(row, 3);
    server.shutdown();
    server.join();
}

#[test]
fn precision_mismatch_is_a_typed_startup_error() {
    // An f32 artifact cannot be served under an f16 pin…
    let path = temp_model("tiny_pinned.fitact");
    tiny_artifact().save(&path).unwrap();
    let err = Server::start(
        &path,
        &ServeConfig {
            precision: Some(fitact_tensor::Precision::F16),
            ..ServeConfig::default()
        },
    )
    .unwrap_err();
    match err {
        ServeError::InvalidConfig(msg) => {
            assert!(msg.contains("f32"), "{msg}");
            assert!(msg.contains("f16"), "{msg}");
        }
        other => panic!("expected InvalidConfig, got {other:?}"),
    }
    // …and a reload that swaps the precision out from under the pin fails,
    // keeping the old model serving.
    let mut rng = StdRng::seed_from_u64(80);
    let mut net = Network::new(
        "tiny-int8",
        Sequential::new().with(Box::new(Linear::new(4, 3, &mut rng))),
    );
    net.quantize_to(fitact_tensor::Precision::Int8);
    let int8_path = temp_model("tiny_pin_reload.fitact");
    ModelArtifact::capture(&net)
        .unwrap()
        .save(&int8_path)
        .unwrap();
    let server = Server::start(
        &int8_path,
        &ServeConfig {
            precision: Some(fitact_tensor::Precision::Int8),
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let addr = server.addr();
    tiny_artifact().save(&int8_path).unwrap(); // now f32 on disk
    let (status, body) = http(addr, "POST", "/admin/reload", "");
    assert_eq!(status, 500, "{body}");
    assert!(body
        .get("error")
        .unwrap()
        .as_str()
        .unwrap()
        .contains("int8"));
    // The int8 model is still the one serving.
    let (status, health) = http(addr, "GET", "/healthz", "");
    assert_eq!(status, 200);
    assert_eq!(health.get("precision").unwrap().as_str().unwrap(), "int8");
    server.shutdown();
    server.join();
}
