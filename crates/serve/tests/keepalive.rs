//! Keep-alive and pipelining framing over real sockets: multiple requests
//! per connection, fused and torn TCP segments, mid-stream disconnects,
//! load-shedding and the connection telemetry.
//!
//! Keep-alive is **opt-in** (`Connection: keep-alive` on the request); a
//! request without it is answered with `Connection: close` framing and the
//! socket closes — what every plain read-to-EOF client in this workspace
//! relies on.

use fitact_io::{JsonValue, ModelArtifact};
use fitact_nn::layers::{ActivationLayer, Linear, Sequential};
use fitact_nn::Network;
use fitact_serve::{ServeConfig, Server};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::OnceLock;
use std::time::Duration;

fn tiny_artifact() -> ModelArtifact {
    let mut rng = StdRng::seed_from_u64(177);
    let net = Network::new(
        "keepalive-mlp",
        Sequential::new()
            .with(Box::new(Linear::new(4, 16, &mut rng)))
            .with(Box::new(ActivationLayer::relu("h", &[16])))
            .with(Box::new(Linear::new(16, 3, &mut rng))),
    );
    ModelArtifact::capture(&net).unwrap()
}

fn temp_model(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fitact_keepalive_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

fn start(name: &str, config: ServeConfig) -> (Server, SocketAddr) {
    let path = temp_model(name);
    tiny_artifact().save(&path).unwrap();
    let server = Server::start(&path, &config).unwrap();
    let addr = server.addr();
    (server, addr)
}

/// A keep-alive request line + headers (and body) for `path`.
fn keepalive_request(method: &str, path: &str, body: &str) -> String {
    format!(
        "{method} {path} HTTP/1.1\r\nHost: t\r\nConnection: keep-alive\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )
}

/// One framed response off a (possibly keep-alive) connection: status,
/// headers, body.
fn read_response(reader: &mut BufReader<TcpStream>) -> (u16, Vec<(String, String)>, String) {
    let mut line = String::new();
    reader.read_line(&mut line).expect("status line");
    let status: u16 = line
        .split(' ')
        .nth(1)
        .unwrap_or_else(|| panic!("malformed status line {line:?}"))
        .parse()
        .unwrap();
    let mut headers = Vec::new();
    loop {
        let mut header = String::new();
        reader.read_line(&mut header).expect("header line");
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        let (name, value) = header.split_once(':').expect("header colon");
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_owned()));
    }
    let length: usize = headers
        .iter()
        .find(|(n, _)| n == "content-length")
        .expect("Content-Length header")
        .1
        .parse()
        .unwrap();
    let mut body = vec![0u8; length];
    reader.read_exact(&mut body).expect("framed body");
    (status, headers, String::from_utf8(body).unwrap())
}

fn connect(addr: SocketAddr) -> (TcpStream, BufReader<TcpStream>) {
    let stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let reader = BufReader::new(stream.try_clone().unwrap());
    (stream, reader)
}

/// Two requests written in a single TCP segment come back as two in-order
/// responses on the same connection (pipelining), and the connection then
/// serves a third request (keep-alive reuse).
#[test]
fn two_pipelined_requests_in_one_segment() {
    let (server, addr) = start("pipeline.fitact", ServeConfig::default());
    let (mut stream, mut reader) = connect(addr);
    let segment = format!(
        "{}{}",
        keepalive_request("GET", "/healthz", ""),
        keepalive_request("POST", "/predict", r#"{"input": [1, 2, 3, 4]}"#),
    );
    stream.write_all(segment.as_bytes()).unwrap();
    let (status, headers, body) = read_response(&mut reader);
    assert_eq!(status, 200, "{body}");
    assert!(
        headers.contains(&("connection".into(), "keep-alive".into())),
        "{headers:?}"
    );
    let health = JsonValue::parse(&body).unwrap();
    assert_eq!(health.get("status").unwrap().as_str(), Some("ok"));
    let (status, _, body) = read_response(&mut reader);
    assert_eq!(status, 200, "{body}");
    let predict = JsonValue::parse(&body).unwrap();
    assert_eq!(predict.get("outputs").unwrap().as_array().unwrap().len(), 1);
    // The connection is still alive: a third request goes through.
    stream
        .write_all(keepalive_request("GET", "/healthz", "").as_bytes())
        .unwrap();
    let (status, _, _) = read_response(&mut reader);
    assert_eq!(status, 200);
    server.shutdown();
    server.join();
}

/// A request body and the *next* request's head arriving fused in one
/// segment parse as two separate requests — the body bytes are never
/// rescanned or miscounted into the following head.
#[test]
fn body_fused_with_next_head_parses_as_two_requests() {
    let (server, addr) = start("fused.fitact", ServeConfig::default());
    let (mut stream, mut reader) = connect(addr);
    let first = keepalive_request("POST", "/predict", r#"{"input": [1, 2, 3, 4]}"#);
    // Split mid-body: the remainder of the body travels fused with the
    // entire second request.
    let split = first.len() - 10;
    stream.write_all(&first.as_bytes()[..split]).unwrap();
    stream.flush().unwrap();
    std::thread::sleep(Duration::from_millis(20));
    let fused = format!(
        "{}{}",
        &first[split..],
        keepalive_request("GET", "/healthz", "")
    );
    stream.write_all(fused.as_bytes()).unwrap();
    let (status, _, body) = read_response(&mut reader);
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("outputs"), "{body}");
    let (status, _, body) = read_response(&mut reader);
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"status\""), "{body}");
    server.shutdown();
    server.join();
}

/// A half-written request followed by a client disconnect neither crashes
/// the server nor leaks the connection: fresh connections keep being
/// served afterwards.
#[test]
fn mid_stream_client_disconnect_is_harmless() {
    let (server, addr) = start("disconnect.fitact", ServeConfig::default());
    for partial in [
        "POST /pre",                                                  // torn request line
        "POST /predict HTTP/1.1\r\nContent-Le",                       // torn header
        "POST /predict HTTP/1.1\r\nContent-Length: 23\r\n\r\n{\"inp", // torn body
    ] {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(partial.as_bytes()).unwrap();
        drop(stream); // mid-stream disconnect
    }
    let (mut stream, mut reader) = connect(addr);
    stream
        .write_all(keepalive_request("GET", "/healthz", "").as_bytes())
        .unwrap();
    let (status, _, _) = read_response(&mut reader);
    assert_eq!(status, 200);
    server.shutdown();
    server.join();
}

/// Keep-alive reuse shows up in `/metrics` under `connections`.
#[test]
fn keepalive_reuse_is_counted_in_metrics() {
    let (server, addr) = start("reuse.fitact", ServeConfig::default());
    let (mut stream, mut reader) = connect(addr);
    for _ in 0..3 {
        stream
            .write_all(keepalive_request("GET", "/healthz", "").as_bytes())
            .unwrap();
        let (status, _, _) = read_response(&mut reader);
        assert_eq!(status, 200);
    }
    stream
        .write_all(keepalive_request("GET", "/metrics", "").as_bytes())
        .unwrap();
    let (status, _, body) = read_response(&mut reader);
    assert_eq!(status, 200);
    let metrics = JsonValue::parse(&body).unwrap();
    assert_eq!(
        metrics
            .path(&["connections", "accepted_total"])
            .unwrap()
            .as_f64(),
        Some(1.0),
        "{metrics}"
    );
    assert_eq!(
        metrics
            .path(&["connections", "keepalive_reuses_total"])
            .unwrap()
            .as_f64(),
        Some(3.0),
        "three follow-up requests on one connection: {metrics}"
    );
    server.shutdown();
    server.join();
}

/// Past `max_connections`, new connections are answered `503` with a
/// `Retry-After` hint instead of hanging or being dropped silently.
#[test]
fn connection_limit_sheds_load_with_503_and_retry_after() {
    let (server, addr) = start(
        "shed.fitact",
        ServeConfig {
            max_connections: 1,
            ..ServeConfig::default()
        },
    );
    // Fill the one slot with an idle keep-alive connection.
    let (mut held, mut held_reader) = connect(addr);
    held.write_all(keepalive_request("GET", "/healthz", "").as_bytes())
        .unwrap();
    let (status, _, _) = read_response(&mut held_reader);
    assert_eq!(status, 200);
    // The next connection is shed.
    let (_, mut reader) = connect(addr);
    let (status, headers, body) = read_response(&mut reader);
    assert_eq!(status, 503, "{body}");
    assert!(
        headers.contains(&("retry-after".into(), "1".into())),
        "{headers:?}"
    );
    assert!(body.contains("connection limit"), "{body}");
    // Releasing the held slot lets new connections in again.
    drop((held, held_reader));
    for _ in 0..50 {
        let (mut retry, mut retry_reader) = connect(addr);
        retry
            .write_all(keepalive_request("GET", "/metrics", "").as_bytes())
            .unwrap();
        let (status, _, body) = read_response(&mut retry_reader);
        if status == 200 {
            let metrics = JsonValue::parse(&body).unwrap();
            assert!(
                metrics
                    .path(&["connections", "load_shed_total"])
                    .unwrap()
                    .as_f64()
                    .unwrap()
                    >= 1.0,
                "{metrics}"
            );
            server.shutdown();
            server.join();
            return;
        }
        // The closed slot may take a poll round to be reaped.
        std::thread::sleep(Duration::from_millis(20));
    }
    panic!("the shed slot was never released");
}

/// A connection that pipelines more than the per-connection budget of
/// unanswered requests is answered in order up to the budget, then `429`,
/// then closed — it cannot hold unbounded server state.
#[test]
fn pipelining_past_the_inflight_budget_is_answered_with_429() {
    let (server, addr) = start(
        "budget.fitact",
        ServeConfig {
            max_batch: 8,
            max_wait: Duration::from_millis(50),
            workers: 4,
            ..ServeConfig::default()
        },
    );
    // 70 predicts in one segment: every one blocks on batch execution for
    // ≥ max_wait, so all 70 are parsed before any response can emit and
    // the 65th deterministically overflows the inflight budget (64).
    let one = keepalive_request("POST", "/predict", r#"{"input": [1, 2, 3, 4]}"#);
    let segment: String = (0..70).map(|_| one.as_str()).collect();
    let (mut stream, mut reader) = connect(addr);
    stream.write_all(segment.as_bytes()).unwrap();
    let mut statuses = Vec::new();
    loop {
        let mut probe = String::new();
        match reader.read_line(&mut probe) {
            Ok(0) => break, // server closed after the 429
            Ok(_) => {}
            Err(e) => panic!("read failed after {} responses: {e}", statuses.len()),
        }
        let status: u16 = probe.split(' ').nth(1).unwrap().parse().unwrap();
        // Consume the rest of this response's frame.
        let mut headers = Vec::new();
        loop {
            let mut header = String::new();
            reader.read_line(&mut header).unwrap();
            let header = header.trim_end();
            if header.is_empty() {
                break;
            }
            let (name, value) = header.split_once(':').unwrap();
            headers.push((name.trim().to_ascii_lowercase(), value.trim().to_owned()));
        }
        let length: usize = headers
            .iter()
            .find(|(n, _)| n == "content-length")
            .unwrap()
            .1
            .parse()
            .unwrap();
        let mut body = vec![0u8; length];
        reader.read_exact(&mut body).unwrap();
        statuses.push(status);
    }
    assert_eq!(statuses.len(), 65, "64 served + the budget rejection");
    assert!(statuses[..64].iter().all(|&s| s == 200), "{statuses:?}");
    assert_eq!(statuses[64], 429);
    server.shutdown();
    server.join();
}

/// The shared server for the torn-frame property: starting one per sampled
/// split would dominate the test, and tearing is purely client-side state.
fn torn_frame_server() -> SocketAddr {
    static SHARED: OnceLock<SocketAddr> = OnceLock::new();
    *SHARED.get_or_init(|| {
        let (server, addr) = start("torn.fitact", ServeConfig::default());
        std::mem::forget(server); // lives until process exit
        addr
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// A pipelined two-request segment torn at *any* byte boundary (with a
    /// flush and a pause between the fragments) still parses into exactly
    /// two correct in-order responses: framing state survives arbitrary
    /// TCP fragmentation.
    #[test]
    fn torn_frames_parse_identically(split_seed in 1usize..1000) {
        let addr = torn_frame_server();
        let segment = format!(
            "{}{}",
            keepalive_request("POST", "/predict", r#"{"input": [1, 2, 3, 4]}"#),
            keepalive_request("GET", "/healthz", ""),
        );
        let split = 1 + split_seed % (segment.len() - 1);
        let (mut stream, mut reader) = connect(addr);
        stream.write_all(&segment.as_bytes()[..split]).unwrap();
        stream.flush().unwrap();
        std::thread::sleep(Duration::from_millis(2));
        stream.write_all(&segment.as_bytes()[split..]).unwrap();
        let (status, _, body) = read_response(&mut reader);
        prop_assert_eq!(status, 200, "split {}: {}", split, body);
        prop_assert!(body.contains("outputs"), "split {}: {}", split, body);
        let (status, _, body) = read_response(&mut reader);
        prop_assert_eq!(status, 200, "split {}: {}", split, body);
        prop_assert!(body.contains("\"status\""), "split {}: {}", split, body);
    }
}
