//! Native reduced-precision parameter storage: the element type as a real
//! axis of the system.
//!
//! A [`NativeParam`] holds a parameter in the encoding the deployed system
//! actually stores — IEEE binary16 words ([`F16Param`]) or per-channel
//! affine-quantised int8 ([`Int8Param`]) — instead of the training-time
//! `f32` tensor. The inference kernels in [`crate::simd`] compute directly
//! from these words, fault campaigns flip bits *in* them, and the artifact
//! format serialises them verbatim, so what is measured is the resilience of
//! the representation that ships.
//!
//! `F16Param` mirrors [`crate::Tensor`]'s storage model: either a private
//! owned buffer or a copy-on-write window into a shared read-only
//! [`U16Slab`] (an mmap'd artifact), so N serving workers share one physical
//! copy of a half-precision model.

use crate::half::{decode_f16_slice, encode_f16_slice};
use crate::TensorError;
use std::fmt;
use std::sync::Arc;

/// The element type a parameter (or a whole model) is stored in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Precision {
    /// 32-bit IEEE single precision — the training format.
    #[default]
    F32,
    /// 16-bit IEEE half precision.
    F16,
    /// 8-bit per-channel affine-quantised integers.
    Int8,
}

impl Precision {
    /// Canonical lowercase name (`"f32"`, `"f16"`, `"int8"`).
    pub fn name(self) -> &'static str {
        match self {
            Precision::F32 => "f32",
            Precision::F16 => "f16",
            Precision::Int8 => "int8",
        }
    }

    /// Parses a precision name as accepted by `--precision`.
    pub fn parse(s: &str) -> Option<Precision> {
        match s {
            "f32" => Some(Precision::F32),
            "f16" => Some(Precision::F16),
            "int8" | "i8" => Some(Precision::Int8),
            _ => None,
        }
    }

    /// Bits per stored parameter value in this encoding.
    pub fn bits_per_value(self) -> u32 {
        match self {
            Precision::F32 => 32,
            Precision::F16 => 16,
            Precision::Int8 => 8,
        }
    }
}

impl fmt::Display for Precision {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A shared, read-only `u16` buffer (the f16 analogue of
/// [`crate::F32Slab`]): typically an mmap'd artifact viewed as half words.
pub trait U16Slab: Send + Sync + fmt::Debug {
    /// Returns the whole slab as a `u16` slice.
    fn as_u16(&self) -> &[u16];
}

/// Backing storage of an [`F16Param`]: owned words or a copy-on-write
/// window into a shared [`U16Slab`].
#[derive(Clone, Debug)]
enum U16Storage {
    Owned(Vec<u16>),
    Shared {
        slab: Arc<dyn U16Slab>,
        offset: usize,
        len: usize,
    },
}

/// A parameter stored as raw IEEE binary16 words.
///
/// Logical dims are kept alongside the words; the layout is dense row-major,
/// matching the `f32` tensor the parameter was quantised from.
#[derive(Clone, Debug)]
pub struct F16Param {
    words: U16Storage,
    dims: Vec<usize>,
}

impl F16Param {
    /// Quantises `f32` values (round-to-nearest-even) into owned f16 words.
    ///
    /// # Panics
    ///
    /// Panics if `values.len()` disagrees with the volume of `dims`.
    pub fn from_f32(values: &[f32], dims: &[usize]) -> Self {
        assert_eq!(
            values.len(),
            dims.iter().product::<usize>(),
            "value count must match dims"
        );
        F16Param {
            words: U16Storage::Owned(encode_f16_slice(values)),
            dims: dims.to_vec(),
        }
    }

    /// Wraps existing f16 words without conversion.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] if the word count disagrees
    /// with `dims`.
    pub fn from_words(words: Vec<u16>, dims: &[usize]) -> Result<Self, TensorError> {
        let expected = dims.iter().product::<usize>();
        if words.len() != expected {
            return Err(TensorError::LengthMismatch {
                expected,
                actual: words.len(),
            });
        }
        Ok(F16Param {
            words: U16Storage::Owned(words),
            dims: dims.to_vec(),
        })
    }

    /// Creates a parameter whose words are a window into a shared slab
    /// (zero-copy). Mutation copies the window out first.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] if the window does not fit in
    /// the slab.
    pub fn from_shared(
        slab: Arc<dyn U16Slab>,
        offset: usize,
        dims: &[usize],
    ) -> Result<Self, TensorError> {
        let len = dims.iter().product::<usize>();
        let end = offset.saturating_add(len);
        if end > slab.as_u16().len() {
            return Err(TensorError::LengthMismatch {
                expected: end,
                actual: slab.as_u16().len(),
            });
        }
        Ok(F16Param {
            words: U16Storage::Shared { slab, offset, len },
            dims: dims.to_vec(),
        })
    }

    /// The raw f16 words, row-major.
    pub fn words(&self) -> &[u16] {
        match &self.words {
            U16Storage::Owned(w) => w,
            U16Storage::Shared { slab, offset, len } => &slab.as_u16()[*offset..*offset + *len],
        }
    }

    /// Copy-on-write mutable access to the words: a parameter still
    /// borrowing a shared slab copies its window out first.
    pub fn words_mut(&mut self) -> &mut [u16] {
        if let U16Storage::Shared { slab, offset, len } = &self.words {
            let owned = slab.as_u16()[*offset..*offset + *len].to_vec();
            self.words = U16Storage::Owned(owned);
        }
        match &mut self.words {
            U16Storage::Owned(w) => w,
            U16Storage::Shared { .. } => unreachable!("shared storage was just materialised"),
        }
    }

    /// Whether the words still alias a shared slab.
    pub fn is_shared(&self) -> bool {
        matches!(self.words, U16Storage::Shared { .. })
    }

    /// Logical dimensions.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Number of stored values.
    pub fn numel(&self) -> usize {
        self.words().len()
    }

    /// Exact widening of every word back to `f32`.
    pub fn to_f32_vec(&self) -> Vec<f32> {
        decode_f16_slice(self.words())
    }
}

impl PartialEq for F16Param {
    fn eq(&self, other: &Self) -> bool {
        self.dims == other.dims && self.words() == other.words()
    }
}

/// A parameter stored as per-channel affine-quantised int8.
///
/// Channel `c` (the leading dimension — output channels for linear and
/// convolution weights) dequantises as `(q - zero_point[c]) · scale[c]`,
/// which is exactly the arithmetic the int8 kernels perform. Scales are f32
/// and zero-points are int8, so corruption of either is a first-class fault
/// model.
#[derive(Clone, Debug, PartialEq)]
pub struct Int8Param {
    q: Vec<i8>,
    scales: Vec<f32>,
    zero_points: Vec<i8>,
    dims: Vec<usize>,
}

impl Int8Param {
    /// Quantises `values` (row-major, leading dim = channels) with one
    /// affine `(scale, zero_point)` pair per channel, rounding to nearest
    /// even and saturating to the int8 range.
    ///
    /// # Panics
    ///
    /// Panics if `values.len()` disagrees with `dims` or `dims` is empty.
    pub fn quantize(values: &[f32], dims: &[usize]) -> Self {
        assert!(!dims.is_empty(), "int8 quantisation needs at least one dim");
        assert_eq!(
            values.len(),
            dims.iter().product::<usize>(),
            "value count must match dims"
        );
        let channels = dims[0];
        let per = values.len().checked_div(channels).unwrap_or(0);
        let mut q = Vec::with_capacity(values.len());
        let mut scales = Vec::with_capacity(channels);
        let mut zero_points = Vec::with_capacity(channels);
        for c in 0..channels {
            let row = &values[c * per..(c + 1) * per];
            let (mut lo, mut hi) = (0.0f32, 0.0f32);
            for &v in row {
                if v.is_finite() {
                    lo = lo.min(v);
                    hi = hi.max(v);
                }
            }
            let scale = if hi > lo { (hi - lo) / 255.0 } else { 1.0 };
            let zp = (-128.0 - lo / scale).round_ties_even().clamp(-128.0, 127.0) as i8;
            scales.push(scale);
            zero_points.push(zp);
            for &v in row {
                let qv = (v / scale).round_ties_even() + f32::from(zp);
                q.push(qv.clamp(-128.0, 127.0) as i8);
            }
        }
        Int8Param {
            q,
            scales,
            zero_points,
            dims: dims.to_vec(),
        }
    }

    /// Reassembles a parameter from its serialised parts.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] if the value count disagrees
    /// with `dims` or the scale/zero-point counts disagree with the leading
    /// dimension.
    pub fn from_parts(
        q: Vec<i8>,
        scales: Vec<f32>,
        zero_points: Vec<i8>,
        dims: &[usize],
    ) -> Result<Self, TensorError> {
        let expected = dims.iter().product::<usize>();
        if q.len() != expected {
            return Err(TensorError::LengthMismatch {
                expected,
                actual: q.len(),
            });
        }
        let channels = dims.first().copied().unwrap_or(0);
        if scales.len() != channels || zero_points.len() != channels {
            return Err(TensorError::LengthMismatch {
                expected: channels,
                actual: scales.len().max(zero_points.len()),
            });
        }
        Ok(Int8Param {
            q,
            scales,
            zero_points,
            dims: dims.to_vec(),
        })
    }

    /// The quantised values, row-major.
    pub fn q(&self) -> &[i8] {
        &self.q
    }

    /// Mutable quantised values (for fault injection).
    pub fn q_mut(&mut self) -> &mut [i8] {
        &mut self.q
    }

    /// Per-channel scales.
    pub fn scales(&self) -> &[f32] {
        &self.scales
    }

    /// Mutable per-channel scales (for scale-corruption fault models).
    pub fn scales_mut(&mut self) -> &mut [f32] {
        &mut self.scales
    }

    /// Per-channel zero points.
    pub fn zero_points(&self) -> &[i8] {
        &self.zero_points
    }

    /// Mutable per-channel zero points (for zero-point-corruption models).
    pub fn zero_points_mut(&mut self) -> &mut [i8] {
        &mut self.zero_points
    }

    /// Logical dimensions.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Number of stored values (excluding quantisation parameters).
    pub fn numel(&self) -> usize {
        self.q.len()
    }

    /// Number of quantisation channels (the leading dimension).
    pub fn channels(&self) -> usize {
        self.scales.len()
    }

    /// Dequantises every value with the exact kernel arithmetic
    /// `(q - zp) · scale`.
    pub fn dequantize(&self) -> Vec<f32> {
        let per = if self.channels() == 0 {
            0
        } else {
            self.q.len() / self.channels()
        };
        let mut out = Vec::with_capacity(self.q.len());
        for c in 0..self.channels() {
            let scale = self.scales[c];
            let zp = i32::from(self.zero_points[c]);
            for &qv in &self.q[c * per..(c + 1) * per] {
                out.push((i32::from(qv) - zp) as f32 * scale);
            }
        }
        out
    }
}

/// A parameter in its native deployed encoding.
#[derive(Clone, Debug, PartialEq)]
pub enum NativeParam {
    /// IEEE binary16 words.
    F16(F16Param),
    /// Per-channel affine int8.
    Int8(Int8Param),
}

impl NativeParam {
    /// The encoding's precision tag.
    pub fn precision(&self) -> Precision {
        match self {
            NativeParam::F16(_) => Precision::F16,
            NativeParam::Int8(_) => Precision::Int8,
        }
    }

    /// Logical dimensions.
    pub fn dims(&self) -> &[usize] {
        match self {
            NativeParam::F16(p) => p.dims(),
            NativeParam::Int8(p) => p.dims(),
        }
    }

    /// Number of stored parameter values.
    pub fn numel(&self) -> usize {
        match self {
            NativeParam::F16(p) => p.numel(),
            NativeParam::Int8(p) => p.numel(),
        }
    }

    /// Decodes every value back to `f32` with the exact arithmetic the
    /// kernels use (f16 widening / int8 dequantisation).
    pub fn to_f32_vec(&self) -> Vec<f32> {
        match self {
            NativeParam::F16(p) => p.to_f32_vec(),
            NativeParam::Int8(p) => p.dequantize(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::half::f32_to_f16;

    #[test]
    fn precision_names_parse_back() {
        for p in [Precision::F32, Precision::F16, Precision::Int8] {
            assert_eq!(Precision::parse(p.name()), Some(p));
            assert_eq!(format!("{p}"), p.name());
        }
        assert_eq!(Precision::parse("i8"), Some(Precision::Int8));
        assert_eq!(Precision::parse("fp64"), None);
        assert_eq!(Precision::F16.bits_per_value(), 16);
        assert_eq!(Precision::Int8.bits_per_value(), 8);
        assert_eq!(Precision::F32.bits_per_value(), 32);
    }

    #[test]
    fn f16_param_roundtrips_exact_values() {
        let values = [1.0, -0.5, 0.25, 2048.0, 0.0, -1.5];
        let p = F16Param::from_f32(&values, &[2, 3]);
        assert_eq!(p.dims(), &[2, 3]);
        assert_eq!(p.numel(), 6);
        assert!(!p.is_shared());
        assert_eq!(p.to_f32_vec(), values);
        let rebuilt = F16Param::from_words(p.words().to_vec(), &[2, 3]).unwrap();
        assert_eq!(rebuilt, p);
        assert!(F16Param::from_words(vec![0; 5], &[2, 3]).is_err());
    }

    #[derive(Debug)]
    struct VecSlab(Vec<u16>);
    impl U16Slab for VecSlab {
        fn as_u16(&self) -> &[u16] {
            &self.0
        }
    }

    #[test]
    fn shared_f16_param_copies_on_write() {
        let words: Vec<u16> = (0..8).map(|v| f32_to_f16(v as f32)).collect();
        let slab: Arc<dyn U16Slab> = Arc::new(VecSlab(words.clone()));
        let mut p = F16Param::from_shared(Arc::clone(&slab), 2, &[3]).unwrap();
        assert!(p.is_shared());
        assert_eq!(p.words(), &words[2..5]);
        p.words_mut()[0] ^= 1 << F16_SIGN_BIT_TEST;
        assert!(!p.is_shared(), "mutation materialises a private copy");
        assert_eq!(slab.as_u16(), &words[..], "slab is never written through");
        assert!(F16Param::from_shared(slab, 7, &[3]).is_err());
    }

    const F16_SIGN_BIT_TEST: u32 = crate::half::F16_SIGN_BIT;

    #[test]
    fn int8_quantisation_reconstructs_within_one_scale_step() {
        let values: Vec<f32> = (0..32).map(|i| (i as f32 - 11.0) * 0.37).collect();
        let p = Int8Param::quantize(&values, &[4, 8]);
        assert_eq!(p.channels(), 4);
        assert_eq!(p.numel(), 32);
        let back = p.dequantize();
        for (c, chunk) in back.chunks(8).enumerate() {
            let scale = p.scales()[c];
            for (orig, deq) in values[c * 8..(c + 1) * 8].iter().zip(chunk) {
                assert!(
                    (orig - deq).abs() <= scale * 0.5 + 1e-6,
                    "channel {c}: {orig} became {deq} (scale {scale})"
                );
            }
        }
    }

    #[test]
    fn int8_zero_row_uses_unit_scale() {
        let p = Int8Param::quantize(&[0.0; 8], &[2, 4]);
        assert_eq!(p.scales(), &[1.0, 1.0]);
        assert_eq!(p.dequantize(), vec![0.0; 8]);
    }

    #[test]
    fn int8_parts_roundtrip_and_validate() {
        let p = Int8Param::quantize(&[1.0, -2.0, 0.5, 3.0], &[2, 2]);
        let rebuilt = Int8Param::from_parts(
            p.q().to_vec(),
            p.scales().to_vec(),
            p.zero_points().to_vec(),
            &[2, 2],
        )
        .unwrap();
        assert_eq!(rebuilt, p);
        assert!(Int8Param::from_parts(vec![0; 3], vec![1.0; 2], vec![0; 2], &[2, 2]).is_err());
        assert!(Int8Param::from_parts(vec![0; 4], vec![1.0; 1], vec![0; 2], &[2, 2]).is_err());
    }

    #[test]
    fn native_param_dispatch() {
        let f16 = NativeParam::F16(F16Param::from_f32(&[1.0, 2.0], &[2]));
        let i8p = NativeParam::Int8(Int8Param::quantize(&[1.0, 2.0], &[1, 2]));
        assert_eq!(f16.precision(), Precision::F16);
        assert_eq!(i8p.precision(), Precision::Int8);
        assert_eq!(f16.dims(), &[2]);
        assert_eq!(i8p.numel(), 2);
        assert_eq!(f16.to_f32_vec(), vec![1.0, 2.0]);
        assert_eq!(i8p.to_f32_vec().len(), 2);
    }
}
