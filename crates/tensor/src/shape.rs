//! Shape and stride bookkeeping for dense row-major tensors.

use crate::TensorError;
use std::fmt;

/// The dimensions of a [`crate::Tensor`].
///
/// A `Shape` is an ordered list of axis lengths. Tensors in this crate are
/// always dense and row-major ("C order"), so strides are derived rather than
/// stored.
///
/// # Example
///
/// ```
/// use fitact_tensor::Shape;
///
/// let s = Shape::new(&[2, 3, 4]);
/// assert_eq!(s.numel(), 24);
/// assert_eq!(s.strides(), vec![12, 4, 1]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Shape {
    dims: Vec<usize>,
}

impl Shape {
    /// Creates a shape from a slice of axis lengths.
    ///
    /// A scalar is represented by an empty slice. Zero-length axes are allowed
    /// here; operations that cannot handle them reject them explicitly.
    pub fn new(dims: &[usize]) -> Self {
        Shape {
            dims: dims.to_vec(),
        }
    }

    /// Returns the axis lengths.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Returns the number of dimensions (the tensor rank).
    pub fn ndim(&self) -> usize {
        self.dims.len()
    }

    /// Returns the total number of elements.
    ///
    /// The empty shape (a scalar) has one element.
    pub fn numel(&self) -> usize {
        self.dims.iter().product()
    }

    /// Returns the length of axis `axis`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidAxis`] if `axis >= self.ndim()`.
    pub fn dim(&self, axis: usize) -> Result<usize, TensorError> {
        self.dims
            .get(axis)
            .copied()
            .ok_or(TensorError::InvalidAxis {
                axis,
                ndim: self.ndim(),
            })
    }

    /// Returns the row-major strides (in elements, not bytes) of this shape.
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1usize; self.dims.len()];
        for i in (0..self.dims.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.dims[i + 1];
        }
        strides
    }

    /// Converts a multi-dimensional index to a flat offset.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfBounds`] if the index has the wrong
    /// rank or any coordinate is out of range.
    pub fn offset(&self, index: &[usize]) -> Result<usize, TensorError> {
        if index.len() != self.dims.len() || index.iter().zip(&self.dims).any(|(i, d)| i >= d) {
            return Err(TensorError::IndexOutOfBounds {
                index: index.to_vec(),
                shape: self.dims.clone(),
            });
        }
        let strides = self.strides();
        Ok(index.iter().zip(&strides).map(|(i, s)| i * s).sum())
    }

    /// Returns `true` if both shapes have identical dimensions.
    pub fn same_as(&self, other: &Shape) -> bool {
        self.dims == other.dims
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape::new(dims)
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape { dims }
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, d) in self.dims.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numel_and_ndim() {
        let s = Shape::new(&[2, 3, 4]);
        assert_eq!(s.numel(), 24);
        assert_eq!(s.ndim(), 3);
        assert_eq!(s.dims(), &[2, 3, 4]);
    }

    #[test]
    fn scalar_shape_has_one_element() {
        let s = Shape::new(&[]);
        assert_eq!(s.numel(), 1);
        assert_eq!(s.ndim(), 0);
        assert_eq!(s.strides(), Vec::<usize>::new());
    }

    #[test]
    fn strides_are_row_major() {
        let s = Shape::new(&[2, 3, 4]);
        assert_eq!(s.strides(), vec![12, 4, 1]);
        let s = Shape::new(&[5]);
        assert_eq!(s.strides(), vec![1]);
    }

    #[test]
    fn offset_maps_row_major() {
        let s = Shape::new(&[2, 3]);
        assert_eq!(s.offset(&[0, 0]).unwrap(), 0);
        assert_eq!(s.offset(&[0, 2]).unwrap(), 2);
        assert_eq!(s.offset(&[1, 0]).unwrap(), 3);
        assert_eq!(s.offset(&[1, 2]).unwrap(), 5);
    }

    #[test]
    fn offset_rejects_bad_indices() {
        let s = Shape::new(&[2, 3]);
        assert!(s.offset(&[2, 0]).is_err());
        assert!(s.offset(&[0]).is_err());
        assert!(s.offset(&[0, 0, 0]).is_err());
    }

    #[test]
    fn dim_accessor() {
        let s = Shape::new(&[7, 9]);
        assert_eq!(s.dim(0).unwrap(), 7);
        assert_eq!(s.dim(1).unwrap(), 9);
        assert!(matches!(
            s.dim(2),
            Err(TensorError::InvalidAxis { axis: 2, ndim: 2 })
        ));
    }

    #[test]
    fn display_formats_dims() {
        assert_eq!(Shape::new(&[2, 3]).to_string(), "(2, 3)");
        assert_eq!(Shape::new(&[]).to_string(), "()");
    }

    #[test]
    fn conversions() {
        let s: Shape = vec![1, 2].into();
        assert_eq!(s.dims(), &[1, 2]);
        let s: Shape = (&[3usize, 4][..]).into();
        assert_eq!(s.dims(), &[3, 4]);
    }

    #[test]
    fn zero_axis_gives_zero_elements() {
        let s = Shape::new(&[2, 0, 3]);
        assert_eq!(s.numel(), 0);
    }
}
