//! N-dimensional tensors, a cache-blocked matmul kernel and Q15.16
//! fixed-point arithmetic.
//!
//! This crate is the lowest-level substrate of the FitAct reproduction. It
//! provides:
//!
//! * [`Tensor`] — a dense, row-major, `f32` n-dimensional array with the small
//!   set of operations a CPU DNN framework needs (element-wise arithmetic,
//!   matrix multiplication, reductions, im2col for convolutions),
//! * [`matmul`] — the cache-blocked, panel-packed GEBP matrix-multiplication
//!   kernel behind [`Tensor::matmul`] and its transposed variants
//!   ([`Tensor::matmul_tn`] / [`Tensor::matmul_nt`], which never materialise
//!   a transpose). The micro-kernel keeps a register-resident accumulator
//!   tile, packs both operands into contiguous panels, runs an unpacked
//!   fast path for L1-sized products and splits large products row-wise
//!   across scoped threads — bit-identically to the single-thread result,
//! * [`workspace::Workspace`] — reusable scratch-buffer arenas. Layers draw
//!   named buffers (im2col column matrices, gradient staging) from a
//!   workspace instead of allocating per call; after the first batch of a
//!   fixed shape the hot paths are allocation-free. See the module docs for
//!   the exact contract (contents unspecified on entry, capacity never
//!   shrinks, clones start empty),
//! * allocation-free lowering primitives [`im2col_into`] / [`col2im_into`]
//!   that write into caller-provided buffers,
//! * [`Shape`] — shape/stride bookkeeping shared by every tensor operation,
//! * [`fixed::Fixed32`] — the 32-bit fixed-point representation used by the
//!   paper (1 sign bit, 15 integer bits, 16 fractional bits) together with
//!   bit-level access used by the fault injector,
//! * [`init`] — deterministic random initialisers (Kaiming/Xavier/uniform).
//!
//! The kernel never special-cases zero operands, so non-finite values
//! propagate through products exactly as IEEE 754 requires (`0 · NaN = NaN`)
//! — a property the fault injector relies on when a bit flip produces NaN/Inf
//! weights.
//!
//! # Example
//!
//! ```
//! # use fitact_tensor::{Tensor, TensorError};
//! # fn main() -> Result<(), TensorError> {
//! let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2])?;
//! let b = Tensor::eye(2);
//! let c = a.matmul(&b)?;
//! assert_eq!(c.as_slice(), &[1.0, 2.0, 3.0, 4.0]);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod fixed;
pub mod half;
pub mod init;
pub mod matmul;
pub mod native;
mod shape;
pub mod simd;
mod tensor;
pub mod workspace;

pub use fixed::Fixed32;
pub use native::{F16Param, Int8Param, NativeParam, Precision, U16Slab};
pub use shape::Shape;
pub use tensor::{col2im, col2im_into, conv_output_size, im2col, im2col_into, F32Slab, Tensor};
pub use workspace::{TensorArena, Workspace};

use std::error::Error;
use std::fmt;

/// Errors produced by tensor operations.
///
/// All fallible operations in this crate return `Result<_, TensorError>`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// The number of elements implied by a shape does not match the data length.
    LengthMismatch {
        /// Number of elements the shape requires.
        expected: usize,
        /// Number of elements actually provided.
        actual: usize,
    },
    /// Two shapes that must agree (element-wise ops, reshape) do not agree.
    ShapeMismatch {
        /// Shape of the left/first operand.
        left: Vec<usize>,
        /// Shape of the right/second operand.
        right: Vec<usize>,
    },
    /// Matrix multiplication inner dimensions differ, or an operand is not 2-D.
    MatmulShape {
        /// Shape of the left operand.
        left: Vec<usize>,
        /// Shape of the right operand.
        right: Vec<usize>,
    },
    /// A shape with zero dimensions or a zero-sized axis where it is not allowed.
    InvalidShape(Vec<usize>),
    /// An index was out of bounds for the tensor shape.
    IndexOutOfBounds {
        /// The offending index.
        index: Vec<usize>,
        /// The tensor shape.
        shape: Vec<usize>,
    },
    /// An axis argument referred to a dimension the tensor does not have.
    InvalidAxis {
        /// The requested axis.
        axis: usize,
        /// Number of dimensions in the tensor.
        ndim: usize,
    },
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::LengthMismatch { expected, actual } => {
                write!(
                    f,
                    "data length {actual} does not match shape volume {expected}"
                )
            }
            TensorError::ShapeMismatch { left, right } => {
                write!(f, "shape mismatch between {left:?} and {right:?}")
            }
            TensorError::MatmulShape { left, right } => {
                write!(f, "cannot matrix-multiply shapes {left:?} and {right:?}")
            }
            TensorError::InvalidShape(s) => write!(f, "invalid shape {s:?}"),
            TensorError::IndexOutOfBounds { index, shape } => {
                write!(f, "index {index:?} out of bounds for shape {shape:?}")
            }
            TensorError::InvalidAxis { axis, ndim } => {
                write!(
                    f,
                    "axis {axis} out of range for tensor with {ndim} dimensions"
                )
            }
        }
    }
}

impl Error for TensorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_is_nonempty() {
        let errors = [
            TensorError::LengthMismatch {
                expected: 4,
                actual: 3,
            },
            TensorError::ShapeMismatch {
                left: vec![2],
                right: vec![3],
            },
            TensorError::MatmulShape {
                left: vec![2, 2],
                right: vec![3, 3],
            },
            TensorError::InvalidShape(vec![0]),
            TensorError::IndexOutOfBounds {
                index: vec![5],
                shape: vec![2],
            },
            TensorError::InvalidAxis { axis: 3, ndim: 2 },
        ];
        for e in errors {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TensorError>();
    }
}
