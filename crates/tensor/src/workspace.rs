//! Reusable scratch-buffer arenas for zero-allocation hot loops.
//!
//! Layers that lower their work onto temporary matrices (im2col column
//! matrices, transposed gradients, per-sample output staging) own a
//! [`Workspace`] and draw named scratch buffers from it instead of allocating
//! fresh `Vec`s every call. Buffers keep their capacity between calls, so
//! after the first batch of a fixed shape every subsequent call is
//! allocation-free.
//!
//! # Contract
//!
//! * [`Workspace::buf`] returns the buffer registered under a caller-chosen
//!   slot index, resized to exactly `len` elements. Growing reuses capacity
//!   where possible; shrinking never releases memory.
//! * Buffer **contents are unspecified** on entry (whatever the previous use
//!   left behind); callers must fully overwrite, or use [`Workspace::zeroed`]
//!   when the algorithm accumulates.
//! * Slots are independent: borrowing slot 0 then slot 1 in sequence is the
//!   intended pattern. (Two slots cannot be borrowed simultaneously — take
//!   [`Workspace::pair`] when an algorithm genuinely needs two live buffers.)
//! * A `Workspace` is deliberately **not** part of a layer's logical state:
//!   cloning a layer clones capacity lazily (the clone starts empty), and two
//!   workspaces never alias.

/// An arena of reusable `f32` scratch buffers, indexed by small slot numbers.
#[derive(Debug, Default)]
pub struct Workspace {
    slots: Vec<Vec<f32>>,
}

impl Clone for Workspace {
    /// Cloning a workspace yields an empty arena: scratch contents are never
    /// meaningful across calls, and cloned layers should not share or copy
    /// multi-megabyte buffers.
    fn clone(&self) -> Self {
        Workspace::new()
    }
}

impl Workspace {
    /// Creates an empty arena.
    pub fn new() -> Self {
        Workspace { slots: Vec::new() }
    }

    /// Returns slot `slot` resized to `len` elements, contents unspecified.
    pub fn buf(&mut self, slot: usize, len: usize) -> &mut [f32] {
        if self.slots.len() <= slot {
            self.slots.resize_with(slot + 1, Vec::new);
        }
        let buf = &mut self.slots[slot];
        buf.resize(len, 0.0);
        &mut buf[..len]
    }

    /// Returns slot `slot` resized to `len` elements and zero-filled.
    pub fn zeroed(&mut self, slot: usize, len: usize) -> &mut [f32] {
        let buf = self.buf(slot, len);
        buf.fill(0.0);
        buf
    }

    /// Returns two distinct slots borrowed simultaneously.
    ///
    /// # Panics
    ///
    /// Panics if `a == b`.
    pub fn pair(&mut self, a: (usize, usize), b: (usize, usize)) -> (&mut [f32], &mut [f32]) {
        let ((slot_a, len_a), (slot_b, len_b)) = (a, b);
        assert_ne!(
            slot_a, slot_b,
            "Workspace::pair requires two distinct slots"
        );
        let high = slot_a.max(slot_b);
        if self.slots.len() <= high {
            self.slots.resize_with(high + 1, Vec::new);
        }
        self.slots[slot_a].resize(len_a, 0.0);
        self.slots[slot_b].resize(len_b, 0.0);
        if slot_a < slot_b {
            let (lo, hi) = self.slots.split_at_mut(slot_b);
            (&mut lo[slot_a][..len_a], &mut hi[0][..len_b])
        } else {
            let (lo, hi) = self.slots.split_at_mut(slot_a);
            let b_buf = &mut lo[slot_b][..len_b];
            (&mut hi[0][..len_a], b_buf)
        }
    }

    /// Total capacity currently held, in elements (diagnostics only).
    pub fn capacity(&self) -> usize {
        self.slots.iter().map(Vec::capacity).sum()
    }
}

/// An arena of reusable whole-[`Tensor`] slots for staging buffers that must
/// travel as tensors (batch inputs, checkpoint staging) rather than raw `f32`
/// slices.
///
/// Unlike [`Workspace`], whose buffers are borrowed in place, arena slots are
/// **taken** out ([`TensorArena::take`]) and **put** back
/// ([`TensorArena::put`]). Taking moves the tensor (its capacity comes along),
/// so the caller can hold it across a method call that also needs `&mut self`
/// — the usual borrow conflict workspace slices would hit. On the warm path
/// the round trip is allocation-free: the returned tensor keeps its storage,
/// and [`Tensor::ensure_shape`] / slice copies reuse it.
///
/// Contents of a taken tensor are unspecified (whatever the previous use left
/// behind); callers must fully overwrite. Cloning an arena yields an empty
/// arena for the same reason cloning a [`Workspace`] does.
#[derive(Debug, Default)]
pub struct TensorArena {
    slots: Vec<Tensor>,
}

impl Clone for TensorArena {
    /// Cloning yields an empty arena: staged contents are never meaningful
    /// across calls, and clones must not share or copy large buffers.
    fn clone(&self) -> Self {
        TensorArena::new()
    }
}

use crate::Tensor;

impl TensorArena {
    /// Creates an empty arena.
    pub fn new() -> Self {
        TensorArena { slots: Vec::new() }
    }

    /// Takes the tensor in slot `slot`, leaving an empty tensor behind.
    ///
    /// The first take of a slot returns an empty (zero-element) tensor; after
    /// a [`TensorArena::put`], the next take returns that tensor with its
    /// storage intact.
    pub fn take(&mut self, slot: usize) -> Tensor {
        if self.slots.len() <= slot {
            self.slots.resize_with(slot + 1, Tensor::default);
        }
        std::mem::take(&mut self.slots[slot])
    }

    /// Returns a tensor to slot `slot` so its storage is reused by the next
    /// [`TensorArena::take`].
    pub fn put(&mut self, slot: usize, tensor: Tensor) {
        if self.slots.len() <= slot {
            self.slots.resize_with(slot + 1, Tensor::default);
        }
        self.slots[slot] = tensor;
    }

    /// Total number of elements currently parked in the arena (diagnostics
    /// only; taken tensors are not counted).
    pub fn parked_elements(&self) -> usize {
        self.slots.iter().map(Tensor::numel).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffers_keep_capacity_between_calls() {
        let mut ws = Workspace::new();
        ws.buf(0, 1024).fill(3.0);
        let cap = ws.capacity();
        assert!(cap >= 1024);
        // Shrinking and re-growing within capacity must not allocate
        // (observable here as capacity staying put).
        ws.buf(0, 16);
        ws.buf(0, 1024);
        assert_eq!(ws.capacity(), cap);
    }

    #[test]
    fn zeroed_clears_previous_contents() {
        let mut ws = Workspace::new();
        ws.buf(2, 8).fill(7.0);
        assert!(ws.zeroed(2, 8).iter().all(|&v| v == 0.0));
    }

    #[test]
    fn pair_borrows_two_slots() {
        let mut ws = Workspace::new();
        let (a, b) = ws.pair((0, 4), (3, 2));
        a.fill(1.0);
        b.fill(2.0);
        assert_eq!(a.len(), 4);
        assert_eq!(b.len(), 2);
        let (b2, a2) = ws.pair((3, 2), (0, 4));
        assert_eq!(b2, [2.0, 2.0]);
        assert_eq!(a2, [1.0; 4]);
    }

    #[test]
    #[should_panic(expected = "distinct slots")]
    fn pair_rejects_aliased_slots() {
        Workspace::new().pair((1, 4), (1, 4));
    }

    #[test]
    fn clone_starts_empty() {
        let mut ws = Workspace::new();
        ws.buf(0, 4096);
        let clone = ws.clone();
        assert_eq!(clone.capacity(), 0);
    }

    #[test]
    fn arena_take_put_roundtrip_keeps_storage() {
        let mut arena = TensorArena::new();
        let mut t = arena.take(2);
        assert_eq!(t.numel(), 0, "first take of a slot is empty");
        t.ensure_shape(&[4, 8]);
        t.fill(1.5);
        arena.put(2, t);
        assert_eq!(arena.parked_elements(), 32);
        let t = arena.take(2);
        assert_eq!(t.dims(), &[4, 8]);
        assert_eq!(arena.parked_elements(), 0, "taken tensors are not parked");
    }

    #[test]
    fn arena_clone_starts_empty() {
        let mut arena = TensorArena::new();
        let mut t = arena.take(0);
        t.ensure_shape(&[16]);
        arena.put(0, t);
        assert_eq!(arena.clone().parked_elements(), 0);
    }
}
