//! Reusable scratch-buffer arenas for zero-allocation hot loops.
//!
//! Layers that lower their work onto temporary matrices (im2col column
//! matrices, transposed gradients, per-sample output staging) own a
//! [`Workspace`] and draw named scratch buffers from it instead of allocating
//! fresh `Vec`s every call. Buffers keep their capacity between calls, so
//! after the first batch of a fixed shape every subsequent call is
//! allocation-free.
//!
//! # Contract
//!
//! * [`Workspace::buf`] returns the buffer registered under a caller-chosen
//!   slot index, resized to exactly `len` elements. Growing reuses capacity
//!   where possible; shrinking never releases memory.
//! * Buffer **contents are unspecified** on entry (whatever the previous use
//!   left behind); callers must fully overwrite, or use [`Workspace::zeroed`]
//!   when the algorithm accumulates.
//! * Slots are independent: borrowing slot 0 then slot 1 in sequence is the
//!   intended pattern. (Two slots cannot be borrowed simultaneously — take
//!   [`Workspace::pair`] when an algorithm genuinely needs two live buffers.)
//! * A `Workspace` is deliberately **not** part of a layer's logical state:
//!   cloning a layer clones capacity lazily (the clone starts empty), and two
//!   workspaces never alias.

/// An arena of reusable `f32` scratch buffers, indexed by small slot numbers.
#[derive(Debug, Default)]
pub struct Workspace {
    slots: Vec<Vec<f32>>,
}

impl Clone for Workspace {
    /// Cloning a workspace yields an empty arena: scratch contents are never
    /// meaningful across calls, and cloned layers should not share or copy
    /// multi-megabyte buffers.
    fn clone(&self) -> Self {
        Workspace::new()
    }
}

impl Workspace {
    /// Creates an empty arena.
    pub fn new() -> Self {
        Workspace { slots: Vec::new() }
    }

    /// Returns slot `slot` resized to `len` elements, contents unspecified.
    pub fn buf(&mut self, slot: usize, len: usize) -> &mut [f32] {
        if self.slots.len() <= slot {
            self.slots.resize_with(slot + 1, Vec::new);
        }
        let buf = &mut self.slots[slot];
        buf.resize(len, 0.0);
        &mut buf[..len]
    }

    /// Returns slot `slot` resized to `len` elements and zero-filled.
    pub fn zeroed(&mut self, slot: usize, len: usize) -> &mut [f32] {
        let buf = self.buf(slot, len);
        buf.fill(0.0);
        buf
    }

    /// Returns two distinct slots borrowed simultaneously.
    ///
    /// # Panics
    ///
    /// Panics if `a == b`.
    pub fn pair(&mut self, a: (usize, usize), b: (usize, usize)) -> (&mut [f32], &mut [f32]) {
        let ((slot_a, len_a), (slot_b, len_b)) = (a, b);
        assert_ne!(
            slot_a, slot_b,
            "Workspace::pair requires two distinct slots"
        );
        let high = slot_a.max(slot_b);
        if self.slots.len() <= high {
            self.slots.resize_with(high + 1, Vec::new);
        }
        self.slots[slot_a].resize(len_a, 0.0);
        self.slots[slot_b].resize(len_b, 0.0);
        if slot_a < slot_b {
            let (lo, hi) = self.slots.split_at_mut(slot_b);
            (&mut lo[slot_a][..len_a], &mut hi[0][..len_b])
        } else {
            let (lo, hi) = self.slots.split_at_mut(slot_a);
            let b_buf = &mut lo[slot_b][..len_b];
            (&mut hi[0][..len_a], b_buf)
        }
    }

    /// Total capacity currently held, in elements (diagnostics only).
    pub fn capacity(&self) -> usize {
        self.slots.iter().map(Vec::capacity).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffers_keep_capacity_between_calls() {
        let mut ws = Workspace::new();
        ws.buf(0, 1024).fill(3.0);
        let cap = ws.capacity();
        assert!(cap >= 1024);
        // Shrinking and re-growing within capacity must not allocate
        // (observable here as capacity staying put).
        ws.buf(0, 16);
        ws.buf(0, 1024);
        assert_eq!(ws.capacity(), cap);
    }

    #[test]
    fn zeroed_clears_previous_contents() {
        let mut ws = Workspace::new();
        ws.buf(2, 8).fill(7.0);
        assert!(ws.zeroed(2, 8).iter().all(|&v| v == 0.0));
    }

    #[test]
    fn pair_borrows_two_slots() {
        let mut ws = Workspace::new();
        let (a, b) = ws.pair((0, 4), (3, 2));
        a.fill(1.0);
        b.fill(2.0);
        assert_eq!(a.len(), 4);
        assert_eq!(b.len(), 2);
        let (b2, a2) = ws.pair((3, 2), (0, 4));
        assert_eq!(b2, [2.0, 2.0]);
        assert_eq!(a2, [1.0; 4]);
    }

    #[test]
    #[should_panic(expected = "distinct slots")]
    fn pair_rejects_aliased_slots() {
        Workspace::new().pair((1, 4), (1, 4));
    }

    #[test]
    fn clone_starts_empty() {
        let mut ws = Workspace::new();
        ws.buf(0, 4096);
        let clone = ws.clone();
        assert_eq!(clone.capacity(), 0);
    }
}
