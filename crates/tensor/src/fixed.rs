//! 32-bit fixed-point arithmetic in the paper's Q15.16 format.
//!
//! The FitAct paper stores model parameters as 32-bit fixed-point words with
//! 1 sign bit, 15 integer bits and 16 fractional bits, and injects faults as
//! random bit flips in that representation. [`Fixed32`] models exactly that
//! word: conversion to/from `f32`, saturating encode, bit-level access and
//! single-bit flips.
//!
//! # Example
//!
//! ```
//! use fitact_tensor::Fixed32;
//!
//! let x = Fixed32::from_f32(1.5);
//! assert_eq!(x.to_f32(), 1.5);
//! // Flipping the most significant fractional bit adds/removes 0.5.
//! let y = x.with_bit_flipped(15);
//! assert_eq!(y.to_f32(), 1.0);
//! ```

use std::fmt;

/// Number of fractional bits in the Q15.16 format.
pub const FRACTION_BITS: u32 = 16;

/// Total number of bits in the stored word.
pub const WORD_BITS: u32 = 32;

/// Scale factor between the real value and the raw integer representation.
pub const SCALE: f32 = (1u32 << FRACTION_BITS) as f32;

/// A signed 32-bit fixed-point number with 15 integer and 16 fractional bits.
///
/// This is the storage format the paper assumes for all model parameters when
/// simulating memory faults: "32-bit fixed-point representation (1 sign bit,
/// 15 integral bits and 16 fractional bits)". Values outside the representable
/// range saturate on encode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Fixed32 {
    raw: i32,
}

impl Fixed32 {
    /// The largest representable value (just under 32768).
    pub const MAX: Fixed32 = Fixed32 { raw: i32::MAX };

    /// The most negative representable value (−32768).
    pub const MIN: Fixed32 = Fixed32 { raw: i32::MIN };

    /// Zero.
    pub const ZERO: Fixed32 = Fixed32 { raw: 0 };

    /// Creates a fixed-point value from its raw two's-complement integer.
    pub fn from_raw(raw: i32) -> Self {
        Fixed32 { raw }
    }

    /// Returns the raw two's-complement integer representation.
    pub fn raw(self) -> i32 {
        self.raw
    }

    /// Creates a fixed-point value from the 32 stored bits.
    pub fn from_bits(bits: u32) -> Self {
        Fixed32 { raw: bits as i32 }
    }

    /// Returns the 32 stored bits.
    pub fn bits(self) -> u32 {
        self.raw as u32
    }

    /// Encodes an `f32`, rounding to the nearest representable value (ties
    /// to even, the same rounding mode as the f16 conversion path in
    /// [`crate::half`]) and saturating at the ends of the range. Non-finite
    /// inputs saturate in the direction of their sign (NaN encodes as zero).
    pub fn from_f32(value: f32) -> Self {
        if value.is_nan() {
            return Fixed32::ZERO;
        }
        let scaled = (value as f64 * SCALE as f64).round_ties_even();
        if scaled >= i32::MAX as f64 {
            Fixed32::MAX
        } else if scaled <= i32::MIN as f64 {
            Fixed32::MIN
        } else {
            Fixed32 { raw: scaled as i32 }
        }
    }

    /// Decodes the fixed-point value back to `f32`.
    pub fn to_f32(self) -> f32 {
        self.raw as f32 / SCALE
    }

    /// Returns a copy with bit `bit` (0 = least significant) flipped.
    ///
    /// # Panics
    ///
    /// Panics if `bit >= 32`.
    pub fn with_bit_flipped(self, bit: u32) -> Self {
        assert!(
            bit < WORD_BITS,
            "bit index {bit} out of range for a 32-bit word"
        );
        Fixed32 {
            raw: self.raw ^ (1i32 << bit),
        }
    }

    /// Returns `true` if bit `bit` is set.
    ///
    /// # Panics
    ///
    /// Panics if `bit >= 32`.
    pub fn bit(self, bit: u32) -> bool {
        assert!(
            bit < WORD_BITS,
            "bit index {bit} out of range for a 32-bit word"
        );
        (self.raw >> bit) & 1 == 1
    }

    /// Quantises an `f32` through the fixed-point format and back.
    ///
    /// This is the value the hardware would actually compute with, and the
    /// value the fault injector perturbs.
    pub fn quantize(value: f32) -> f32 {
        Fixed32::from_f32(value).to_f32()
    }
}

impl From<f32> for Fixed32 {
    fn from(value: f32) -> Self {
        Fixed32::from_f32(value)
    }
}

impl From<Fixed32> for f32 {
    fn from(value: Fixed32) -> Self {
        value.to_f32()
    }
}

impl fmt::Display for Fixed32 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_f32())
    }
}

impl fmt::LowerHex for Fixed32 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.bits(), f)
    }
}

impl fmt::UpperHex for Fixed32 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::UpperHex::fmt(&self.bits(), f)
    }
}

impl fmt::Binary for Fixed32 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Binary::fmt(&self.bits(), f)
    }
}

impl fmt::Octal for Fixed32 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Octal::fmt(&self.bits(), f)
    }
}

/// Encodes a slice of `f32` values into their Q15.16 bit patterns.
pub fn encode_slice(values: &[f32]) -> Vec<Fixed32> {
    values.iter().map(|&v| Fixed32::from_f32(v)).collect()
}

/// Decodes a slice of Q15.16 words back into `f32` values.
pub fn decode_slice(words: &[Fixed32]) -> Vec<f32> {
    words.iter().map(|w| w.to_f32()).collect()
}

/// Quantises every element of a slice in place (encode + decode round trip).
pub fn quantize_slice_in_place(values: &mut [f32]) {
    for v in values {
        *v = Fixed32::quantize(*v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn zero_encodes_to_zero() {
        assert_eq!(Fixed32::from_f32(0.0).raw(), 0);
        assert_eq!(Fixed32::ZERO.to_f32(), 0.0);
    }

    #[test]
    fn exact_values_roundtrip() {
        for v in [
            1.0,
            -1.0,
            0.5,
            -0.5,
            1.5,
            100.25,
            -2048.0,
            0.000_015_258_789,
        ] {
            assert_eq!(Fixed32::from_f32(v).to_f32(), v, "value {v}");
        }
    }

    #[test]
    fn saturates_at_range_limits() {
        assert_eq!(Fixed32::from_f32(1e9), Fixed32::MAX);
        assert_eq!(Fixed32::from_f32(-1e9), Fixed32::MIN);
        assert_eq!(Fixed32::from_f32(f32::INFINITY), Fixed32::MAX);
        assert_eq!(Fixed32::from_f32(f32::NEG_INFINITY), Fixed32::MIN);
        assert_eq!(Fixed32::from_f32(f32::NAN), Fixed32::ZERO);
    }

    #[test]
    fn max_value_is_just_under_32768() {
        let max = Fixed32::MAX.to_f32();
        assert!(max > 32767.9 && max < 32768.0 + 1.0);
        assert!((Fixed32::MIN.to_f32() + 32768.0).abs() < 1e-3);
    }

    #[test]
    fn fraction_bit_weights() {
        // Bit 16 is the least significant integer bit (weight 1.0).
        let one = Fixed32::ZERO.with_bit_flipped(16);
        assert_eq!(one.to_f32(), 1.0);
        // Bit 15 is the most significant fraction bit (weight 0.5).
        let half = Fixed32::ZERO.with_bit_flipped(15);
        assert_eq!(half.to_f32(), 0.5);
        // Bit 0 is the least significant fraction bit.
        let eps = Fixed32::ZERO.with_bit_flipped(0);
        assert_eq!(eps.to_f32(), 1.0 / 65536.0);
    }

    #[test]
    fn sign_bit_flip_makes_large_negative() {
        // Flipping the sign bit of a small positive value produces a huge
        // negative value — this is precisely the kind of corruption that
        // propagates through unbounded activations.
        let x = Fixed32::from_f32(0.75);
        let y = x.with_bit_flipped(31);
        assert!(y.to_f32() < -32000.0);
    }

    #[test]
    fn high_integer_bit_flip_makes_large_value() {
        let x = Fixed32::from_f32(0.1);
        let y = x.with_bit_flipped(30);
        assert!(y.to_f32() > 16000.0);
    }

    #[test]
    fn bit_accessor_matches_flip() {
        let x = Fixed32::from_f32(1.0);
        assert!(x.bit(16));
        assert!(!x.bit(15));
        let y = x.with_bit_flipped(16);
        assert!(!y.bit(16));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn flip_out_of_range_panics() {
        let _ = Fixed32::ZERO.with_bit_flipped(32);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bit_out_of_range_panics() {
        let _ = Fixed32::ZERO.bit(32);
    }

    #[test]
    fn bits_roundtrip() {
        let x = Fixed32::from_f32(-3.25);
        assert_eq!(Fixed32::from_bits(x.bits()), x);
        assert_eq!(Fixed32::from_raw(x.raw()), x);
    }

    #[test]
    fn slice_helpers_roundtrip() {
        let values = vec![0.5, -1.25, 3.0, 0.1];
        let encoded = encode_slice(&values);
        let decoded = decode_slice(&encoded);
        for (orig, dec) in values.iter().zip(&decoded) {
            assert!((orig - dec).abs() <= 1.0 / SCALE);
        }
        let mut q = values.clone();
        quantize_slice_in_place(&mut q);
        assert_eq!(q, decoded);
    }

    #[test]
    fn formatting_traits() {
        let x = Fixed32::from_f32(1.0);
        assert_eq!(format!("{x}"), "1");
        assert_eq!(format!("{x:x}"), "10000");
        assert_eq!(format!("{x:X}"), "10000");
        assert_eq!(format!("{x:b}"), "10000000000000000");
        assert!(!format!("{x:o}").is_empty());
    }

    #[test]
    fn conversion_traits() {
        let x: Fixed32 = 2.5f32.into();
        let back: f32 = x.into();
        assert_eq!(back, 2.5);
    }

    #[test]
    fn encode_rounds_ties_to_even() {
        // Exact halfway points between representable Q15.16 values must go
        // to the even raw word, matching the f16 path's rounding mode.
        let half_lsb = 0.5 / SCALE;
        assert_eq!(Fixed32::from_f32(half_lsb).raw(), 0, "0.5 ulp ties to 0");
        assert_eq!(
            Fixed32::from_f32(3.0 * half_lsb).raw(),
            2,
            "1.5 ulp ties to 2"
        );
        assert_eq!(
            Fixed32::from_f32(5.0 * half_lsb).raw(),
            2,
            "2.5 ulp ties to 2"
        );
        assert_eq!(Fixed32::from_f32(-half_lsb).raw(), 0);
        assert_eq!(Fixed32::from_f32(-3.0 * half_lsb).raw(), -2);
    }

    #[test]
    fn saturation_boundaries_are_exact() {
        // The first value at/above the top of the range maps to MAX, the
        // last representable one below it round-trips.
        assert_eq!(Fixed32::from_f32(32768.0), Fixed32::MAX);
        assert_eq!(Fixed32::from_f32(-32768.0), Fixed32::MIN);
        assert_eq!(Fixed32::from_f32(-32768.0).to_f32(), -32768.0);
        let below_max = Fixed32::from_f32(32767.998);
        assert!(below_max < Fixed32::MAX, "in-range values do not saturate");
        assert_eq!(Fixed32::from_f32(32767.0).to_f32(), 32767.0);
    }

    proptest! {
        /// The Q15.16 encoder and the f16 narrowing path agree on rounding
        /// mode: for values whose scaled magnitude lands exactly halfway,
        /// both round to even. Cross-checked by construction: a value
        /// `(2n+1)/2 · 2^-16` must encode to the even neighbour of `n`.
        #[test]
        fn q15_16_and_f16_agree_on_round_to_nearest_even(n in -1000i32..1000) {
            let tie = (2.0 * n as f64 + 1.0) / 2.0 / SCALE as f64;
            let q = Fixed32::from_f32(tie as f32);
            let expected = if n % 2 == 0 { n } else { n + 1 };
            prop_assert_eq!(q.raw(), expected, "tie at raw {}", n);
            // Same experiment in f16: halfway between 1+2k·2^-10 and its
            // successor must land on the even mantissa.
            let k = n.unsigned_abs() % 512;
            let even = f32::from_bits(0x3F80_0000 | (k << 14));
            let halfway = even + f32::powi(2.0, -11);
            let h = crate::half::f32_to_f16(halfway);
            prop_assert_eq!(h & 1, 0, "f16 tie must land on an even mantissa");
        }

        /// Encoding then decoding never moves a value by more than half an LSB
        /// (plus rounding), for values well inside the representable range.
        #[test]
        fn roundtrip_error_is_bounded(v in -30000.0f32..30000.0f32) {
            let q = Fixed32::quantize(v);
            prop_assert!((q - v).abs() <= 0.5 / SCALE + f32::EPSILON * v.abs());
        }

        /// Quantisation is idempotent.
        #[test]
        fn quantize_is_idempotent(v in -30000.0f32..30000.0f32) {
            let q = Fixed32::quantize(v);
            prop_assert_eq!(Fixed32::quantize(q), q);
        }

        /// Flipping the same bit twice restores the original word.
        #[test]
        fn bit_flip_is_involution(v in any::<i32>(), bit in 0u32..32) {
            let x = Fixed32::from_raw(v);
            prop_assert_eq!(x.with_bit_flipped(bit).with_bit_flipped(bit), x);
        }

        /// A single bit flip changes exactly one bit of the stored word.
        #[test]
        fn bit_flip_changes_one_bit(v in any::<i32>(), bit in 0u32..32) {
            let x = Fixed32::from_raw(v);
            let y = x.with_bit_flipped(bit);
            prop_assert_eq!((x.bits() ^ y.bits()).count_ones(), 1);
        }

        /// Ordering of the raw representation matches ordering of the wrapper
        /// (two's complement is monotone in the decoded value).
        #[test]
        fn raw_order_matches_value_order(a in any::<i32>(), b in any::<i32>()) {
            let fa = Fixed32::from_raw(a);
            let fb = Fixed32::from_raw(b);
            prop_assert_eq!(a.cmp(&b), fa.cmp(&fb));
            if fa.to_f32() < fb.to_f32() {
                prop_assert!(a < b);
            }
        }
    }
}
