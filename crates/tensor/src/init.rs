//! Deterministic random tensor initialisers.
//!
//! Every initialiser takes an explicit [`rand::Rng`] so that experiments are
//! reproducible from a single seed threaded through the whole pipeline.

use crate::Tensor;
use rand::Rng;

/// Fills a new tensor with samples from the uniform distribution `[low, high)`.
///
/// # Example
///
/// ```
/// use fitact_tensor::init;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(7);
/// let t = init::uniform(&[4, 4], -0.1, 0.1, &mut rng);
/// assert!(t.as_slice().iter().all(|v| (-0.1..0.1).contains(v)));
/// ```
pub fn uniform<R: Rng + ?Sized>(shape: &[usize], low: f32, high: f32, rng: &mut R) -> Tensor {
    let mut t = Tensor::zeros(shape);
    for v in t.as_mut_slice() {
        *v = rng.gen_range(low..high);
    }
    t
}

/// Fills a new tensor with samples from a normal distribution with the given
/// mean and standard deviation (Box–Muller transform; no extra dependency).
pub fn normal<R: Rng + ?Sized>(shape: &[usize], mean: f32, std: f32, rng: &mut R) -> Tensor {
    let mut t = Tensor::zeros(shape);
    for v in t.as_mut_slice() {
        *v = mean + std * sample_standard_normal(rng);
    }
    t
}

/// Kaiming/He-normal initialisation for layers followed by ReLU-family
/// activations: `std = sqrt(2 / fan_in)`.
pub fn kaiming_normal<R: Rng + ?Sized>(shape: &[usize], fan_in: usize, rng: &mut R) -> Tensor {
    let std = (2.0 / fan_in.max(1) as f32).sqrt();
    normal(shape, 0.0, std, rng)
}

/// Xavier/Glorot-uniform initialisation: `limit = sqrt(6 / (fan_in + fan_out))`.
pub fn xavier_uniform<R: Rng + ?Sized>(
    shape: &[usize],
    fan_in: usize,
    fan_out: usize,
    rng: &mut R,
) -> Tensor {
    let limit = (6.0 / (fan_in + fan_out).max(1) as f32).sqrt();
    uniform(shape, -limit, limit, rng)
}

/// Draws one sample from the standard normal distribution.
fn sample_standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f32 {
    // Box–Muller; guard against log(0).
    let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
    let u2: f32 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_respects_bounds_and_shape() {
        let mut rng = StdRng::seed_from_u64(1);
        let t = uniform(&[10, 10], -2.0, 3.0, &mut rng);
        assert_eq!(t.dims(), &[10, 10]);
        assert!(t.as_slice().iter().all(|&v| (-2.0..3.0).contains(&v)));
    }

    #[test]
    fn same_seed_same_tensor() {
        let a = uniform(&[32], 0.0, 1.0, &mut StdRng::seed_from_u64(42));
        let b = uniform(&[32], 0.0, 1.0, &mut StdRng::seed_from_u64(42));
        assert_eq!(a, b);
    }

    #[test]
    fn different_seed_different_tensor() {
        let a = uniform(&[32], 0.0, 1.0, &mut StdRng::seed_from_u64(1));
        let b = uniform(&[32], 0.0, 1.0, &mut StdRng::seed_from_u64(2));
        assert_ne!(a, b);
    }

    #[test]
    fn normal_moments_are_roughly_right() {
        let mut rng = StdRng::seed_from_u64(3);
        let t = normal(&[20000], 1.0, 2.0, &mut rng);
        let mean = t.mean();
        let var = t.map(|v| (v - mean) * (v - mean)).mean();
        assert!((mean - 1.0).abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.3, "var {var}");
        assert!(t.is_finite());
    }

    #[test]
    fn kaiming_scale_shrinks_with_fan_in() {
        let mut rng = StdRng::seed_from_u64(4);
        let wide = kaiming_normal(&[5000], 10, &mut rng);
        let narrow = kaiming_normal(&[5000], 1000, &mut rng);
        assert!(wide.sq_norm() / 5000.0 > narrow.sq_norm() / 5000.0);
    }

    #[test]
    fn xavier_respects_limit() {
        let mut rng = StdRng::seed_from_u64(5);
        let t = xavier_uniform(&[1000], 100, 200, &mut rng);
        let limit = (6.0f32 / 300.0).sqrt();
        assert!(t.as_slice().iter().all(|&v| v.abs() <= limit));
    }
}
