//! IEEE 754 binary16 ("f16") conversions, bit-exact with the x86 F16C
//! instructions.
//!
//! The reduced-precision backend stores parameters as raw `u16` half-precision
//! words and widens them on the fly inside the [`crate::simd`] kernels. The
//! SIMD leg uses `vcvtph2ps` / `vcvtps2ph`; the scalar fallback uses the
//! functions in this module, which are written to match those instructions
//! **bit for bit** — including round-to-nearest-even on narrowing, overflow to
//! infinity, gradual underflow to the f16 subnormal range and quietisation of
//! signalling NaNs on widening. The `scalar==SIMD` identity suite pins the
//! agreement on real hardware.
//!
//! # Example
//!
//! ```
//! use fitact_tensor::half::{f16_to_f32, f32_to_f16};
//!
//! let h = f32_to_f16(1.5);
//! assert_eq!(h, 0x3E00);
//! assert_eq!(f16_to_f32(h), 1.5);
//! // Narrowing rounds to nearest even: 1 + 2^-11 is exactly halfway
//! // between 1.0 and the next representable half value.
//! assert_eq!(f32_to_f16(1.0 + f32::powi(2.0, -11)), f32_to_f16(1.0));
//! ```

/// Number of bits in a stored half-precision word.
pub const F16_BITS: u32 = 16;

/// Bit index of the f16 sign bit.
pub const F16_SIGN_BIT: u32 = 15;

/// Largest finite f16 value (65504).
pub const F16_MAX: f32 = 65504.0;

/// Widens a half-precision bit pattern to `f32`.
///
/// Exact for every finite value and for infinities. NaNs keep their sign and
/// payload (shifted into the high mantissa bits) and are quietised, exactly
/// as `vcvtph2ps` does.
pub fn f16_to_f32(h: u16) -> f32 {
    f32::from_bits(f16_to_f32_bits(h))
}

/// Bit-level form of [`f16_to_f32`].
pub fn f16_to_f32_bits(h: u16) -> u32 {
    let sign = (u32::from(h) & 0x8000) << 16;
    let exp = u32::from(h >> 10) & 0x1F;
    let man = u32::from(h) & 0x3FF;
    match exp {
        0 => {
            if man == 0 {
                sign // ±0
            } else {
                // Subnormal: normalise the mantissa into the implicit-bit
                // position. The value is exactly man · 2⁻²⁴, which is a
                // normal f32.
                let mut e = 113u32;
                let mut m = man;
                while m & 0x400 == 0 {
                    m <<= 1;
                    e -= 1;
                }
                sign | (e << 23) | ((m & 0x3FF) << 13)
            }
        }
        31 => {
            if man == 0 {
                sign | 0x7F80_0000 // ±inf
            } else {
                // NaN: widen the payload and force the quiet bit (hardware
                // quietises signalling NaNs on conversion).
                sign | 0x7FC0_0000 | (man << 13)
            }
        }
        _ => sign | ((exp + 112) << 23) | (man << 13),
    }
}

/// Narrows an `f32` to a half-precision bit pattern with round-to-nearest-even.
///
/// Overflow (anything that rounds to a magnitude ≥ 65520) becomes infinity,
/// tiny values underflow gradually through the f16 subnormals, and NaNs are
/// quietised with their high payload bits preserved — all matching
/// `vcvtps2ph` with the round-to-nearest control.
pub fn f32_to_f16(x: f32) -> u16 {
    let bits = x.to_bits();
    let sign = ((bits >> 16) & 0x8000) as u16;
    let abs = bits & 0x7FFF_FFFF;
    if abs >= 0x7F80_0000 {
        // Inf stays inf; NaN keeps the top ten payload bits, quietised.
        let man = abs & 0x7F_FFFF;
        return if man == 0 {
            sign | 0x7C00
        } else {
            sign | 0x7E00 | ((man >> 13) as u16 & 0x3FF)
        };
    }
    if abs >= 0x4780_0000 {
        // ≥ 2¹⁶: past the largest value that could round back down.
        return sign | 0x7C00;
    }
    let e = ((abs >> 23) as i32) - 127;
    if e >= -14 {
        // Normal f16 range. Round the 13 dropped mantissa bits to nearest
        // even; a carry propagates cleanly into the exponent field (65504
        // rounding up becomes the infinity encoding).
        let man = abs & 0x7F_FFFF;
        let base = (((e + 15) as u32) << 10) | (man >> 13);
        let rem = man & 0x1FFF;
        let round_up = rem > 0x1000 || (rem == 0x1000 && base & 1 == 1);
        sign | (base + u32::from(round_up)) as u16
    } else if e >= -25 {
        // Subnormal f16 range (including halfway into the smallest
        // subnormal): shift the full significand down with RNE. A carry out
        // of the subnormal range lands exactly on the smallest normal.
        let man = (abs & 0x7F_FFFF) | 0x80_0000;
        let shift = (-e - 1) as u32;
        let q = man >> shift;
        let rem = man & ((1 << shift) - 1);
        let half = 1u32 << (shift - 1);
        let round_up = rem > half || (rem == half && q & 1 == 1);
        sign | (q + u32::from(round_up)) as u16
    } else {
        sign // rounds to ±0
    }
}

/// Encodes a slice of `f32` values as f16 words (round-to-nearest-even).
pub fn encode_f16_slice(values: &[f32]) -> Vec<u16> {
    values.iter().map(|&v| f32_to_f16(v)).collect()
}

/// Decodes a slice of f16 words to `f32` values (exact widening).
pub fn decode_f16_slice(words: &[u16]) -> Vec<f32> {
    words.iter().map(|&w| f16_to_f32(w)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn exact_values_roundtrip() {
        for v in [0.0, -0.0, 1.0, -1.0, 0.5, 1.5, 2048.0, -65504.0, 65504.0] {
            let h = f32_to_f16(v);
            assert_eq!(f16_to_f32(h), v, "value {v}");
        }
        assert_eq!(f32_to_f16(0.0), 0x0000);
        assert_eq!(f32_to_f16(-0.0), 0x8000);
        assert_eq!(f32_to_f16(1.0), 0x3C00);
        assert_eq!(f32_to_f16(65504.0), 0x7BFF);
    }

    #[test]
    fn narrowing_rounds_ties_to_even() {
        // 1 + 2^-11 sits exactly between 1.0 (even mantissa) and 1 + 2^-10.
        assert_eq!(f32_to_f16(1.0 + f32::powi(2.0, -11)), 0x3C00);
        // 1 + 3·2^-11 sits between 1 + 2^-10 (odd) and 1 + 2^-9 (even).
        assert_eq!(f32_to_f16(1.0 + 3.0 * f32::powi(2.0, -11)), 0x3C02);
    }

    #[test]
    fn saturation_at_the_representable_boundary() {
        // 65520 is exactly halfway between 65504 and the next step (2^16);
        // round-to-nearest-even sends it to infinity, as vcvtps2ph does.
        assert_eq!(f32_to_f16(65520.0), 0x7C00);
        assert_eq!(f32_to_f16(-65520.0), 0xFC00);
        assert_eq!(f32_to_f16(65519.996), 0x7BFF);
        assert_eq!(f32_to_f16(f32::INFINITY), 0x7C00);
        assert_eq!(f32_to_f16(f32::NEG_INFINITY), 0xFC00);
        assert_eq!(f32_to_f16(1e9), 0x7C00);
    }

    #[test]
    fn subnormals_and_underflow() {
        let smallest_sub = f32::powi(2.0, -24);
        assert_eq!(f32_to_f16(smallest_sub), 0x0001);
        assert_eq!(f16_to_f32(0x0001), smallest_sub);
        // Half the smallest subnormal ties to even zero.
        assert_eq!(f32_to_f16(smallest_sub / 2.0), 0x0000);
        // Three quarters rounds up to the smallest subnormal.
        assert_eq!(f32_to_f16(smallest_sub * 0.75), 0x0001);
        // Largest subnormal and smallest normal are adjacent.
        assert_eq!(f16_to_f32(0x03FF), 1023.0 * smallest_sub);
        assert_eq!(f16_to_f32(0x0400), f32::powi(2.0, -14));
        // A tiny normal f32 underflows to zero.
        assert_eq!(f32_to_f16(f32::powi(2.0, -30)), 0x0000);
    }

    #[test]
    fn nan_widening_quietises_and_keeps_payload() {
        // Signalling f16 NaN (quiet bit clear, payload 1).
        let wide = f16_to_f32_bits(0x7C01);
        assert_eq!(wide, 0x7FC0_2000);
        assert!(f32::from_bits(wide).is_nan());
        // Quiet NaN round-trips its payload through the widening.
        let q = f16_to_f32(0xFE00);
        assert!(q.is_nan() && q.is_sign_negative());
        assert_eq!(f32_to_f16(q), 0xFE00);
    }

    proptest! {
        /// Widening then narrowing is the identity for every non-NaN word.
        #[test]
        fn widen_narrow_roundtrip(h in any::<u16>()) {
            prop_assume!(!f16_to_f32(h).is_nan());
            prop_assert_eq!(f32_to_f16(f16_to_f32(h)), h);
        }

        /// Narrowing error is at most half an ULP of the f16 result.
        #[test]
        fn narrowing_error_is_bounded(v in -60000.0f32..60000.0f32) {
            let back = f16_to_f32(f32_to_f16(v));
            // ULP at magnitude |v| is 2^(e-10) with e = floor(log2 |v|).
            let ulp = if v == 0.0 {
                f32::powi(2.0, -24)
            } else {
                f32::powi(2.0, (v.abs().log2().floor() as i32 - 10).max(-24))
            };
            prop_assert!((back - v).abs() <= ulp / 2.0 + f32::EPSILON);
        }

        /// Narrowing is monotone (order-preserving) on finite values.
        #[test]
        fn narrowing_is_monotone(a in -66000.0f32..66000.0f32, b in -66000.0f32..66000.0f32) {
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            prop_assert!(f16_to_f32(f32_to_f16(lo)) <= f16_to_f32(f32_to_f16(hi)));
        }
    }
}
