//! Explicit-SIMD reduced-precision inference kernels with a bit-identical
//! scalar fallback.
//!
//! Every kernel here exists in two legs:
//!
//! * an **AVX2 + FMA + F16C** leg using explicit `std::arch` intrinsics,
//! * a **scalar** leg that mirrors the SIMD leg's arithmetic exactly — same
//!   lane structure, same fused multiply-adds, same reduction tree, same
//!   conversion semantics (via [`crate::half`]).
//!
//! The legs are **bit-identical by construction**: a dot product accumulates
//! into eight lanes in chunk order, reduces them in a fixed tree
//! (`(l₀+l₄)+(l₂+l₆)` then `(l₁+l₅)+(l₃+l₇)`, summed last), and folds the
//! `k mod 8` tail in with sequential scalar FMAs. The scalar leg performs
//! the same operations on the same values in the same order, so IEEE 754
//! determinism gives equal bits. The `scalar==SIMD` identity suite pins this
//! on hardware, and CI runs the whole test suite in both legs
//! (`FITACT_FORCE_SCALAR=1` force-disables dispatch).
//!
//! Runtime dispatch: [`simd_active`] caches x86-64 feature detection
//! (`avx2`, `fma`, `f16c`) and honours the `FITACT_FORCE_SCALAR`
//! environment variable (any value other than empty or `0` forces the
//! scalar leg). Non-x86-64 builds compile the scalar leg only.
//!
//! Large half-precision products split their *output-channel* range across
//! scoped threads (each thread streams a disjoint slice of the weight
//! words, which is what makes the bandwidth-bound serving case scale);
//! [`crate::matmul::serial_scope`] disables the fan-out exactly as it does
//! for the f32 kernel. Results are bit-identical either way — every output
//! element's arithmetic depends only on its own row/channel pair.

use crate::half::f16_to_f32;
use std::sync::OnceLock;

/// Minimum `m·k·n` before a reduced-precision product fans out threads.
const PARALLEL_THRESHOLD: usize = 1 << 18;

/// Whether this build/host supports the AVX2+FMA+F16C kernel leg.
pub fn simd_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        static AVAILABLE: OnceLock<bool> = OnceLock::new();
        *AVAILABLE.get_or_init(|| {
            std::arch::is_x86_feature_detected!("avx2")
                && std::arch::is_x86_feature_detected!("fma")
                && std::arch::is_x86_feature_detected!("f16c")
        })
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// Whether `FITACT_FORCE_SCALAR` pins this process to the scalar leg.
pub fn force_scalar() -> bool {
    static FORCED: OnceLock<bool> = OnceLock::new();
    *FORCED.get_or_init(|| {
        std::env::var("FITACT_FORCE_SCALAR").is_ok_and(|v| !v.is_empty() && v != "0")
    })
}

/// Which leg the dispatched kernels will take in this process.
pub fn simd_active() -> bool {
    simd_available() && !force_scalar()
}

/// Name of the active leg, for logs and reports.
pub fn backend_name() -> &'static str {
    if simd_active() {
        "avx2+fma+f16c"
    } else {
        "scalar"
    }
}

// ---------------------------------------------------------------------------
// The shared lane algorithm (scalar leg).
// ---------------------------------------------------------------------------

/// Reduces eight accumulator lanes in the fixed tree both legs share.
#[inline]
fn reduce8(l: [f32; 8]) -> f32 {
    let p0 = l[0] + l[4];
    let p1 = l[1] + l[5];
    let p2 = l[2] + l[6];
    let p3 = l[3] + l[7];
    (p0 + p2) + (p1 + p3)
}

/// Scalar dot product of one f32 row with one f16 weight row.
#[inline]
fn dot_f16_scalar(x: &[f32], w: &[u16]) -> f32 {
    let k = x.len();
    debug_assert_eq!(w.len(), k);
    let k8 = k & !7;
    let mut lanes = [0.0f32; 8];
    let mut i = 0;
    while i < k8 {
        for (j, lane) in lanes.iter_mut().enumerate() {
            *lane = x[i + j].mul_add(f16_to_f32(w[i + j]), *lane);
        }
        i += 8;
    }
    let mut sum = reduce8(lanes);
    for t in k8..k {
        sum = x[t].mul_add(f16_to_f32(w[t]), sum);
    }
    sum
}

/// Scalar dot product of one f32 row with one dequantised int8 weight row.
#[inline]
fn dot_i8_scalar(x: &[f32], q: &[i8], scale: f32, zp: i32) -> f32 {
    let k = x.len();
    debug_assert_eq!(q.len(), k);
    let k8 = k & !7;
    let mut lanes = [0.0f32; 8];
    let mut i = 0;
    while i < k8 {
        for (j, lane) in lanes.iter_mut().enumerate() {
            let wv = (i32::from(q[i + j]) - zp) as f32 * scale;
            *lane = x[i + j].mul_add(wv, *lane);
        }
        i += 8;
    }
    let mut sum = reduce8(lanes);
    for t in k8..k {
        let wv = (i32::from(q[t]) - zp) as f32 * scale;
        sum = x[t].mul_add(wv, sum);
    }
    sum
}

// ---------------------------------------------------------------------------
// AVX2 + FMA + F16C leg.
// ---------------------------------------------------------------------------

#[cfg(target_arch = "x86_64")]
mod avx {
    use super::*;
    use std::arch::x86_64::*;

    /// Reduces a 256-bit accumulator with the tree [`super::reduce8`] uses.
    ///
    /// # Safety
    ///
    /// Caller must have verified AVX2 support.
    #[target_feature(enable = "avx2")]
    unsafe fn reduce256(acc: __m256) -> f32 {
        let lo = _mm256_castps256_ps128(acc);
        let hi = _mm256_extractf128_ps(acc, 1);
        let p = _mm_add_ps(lo, hi); // (l0+l4, l1+l5, l2+l6, l3+l7)
        let q = _mm_add_ps(p, _mm_movehl_ps(p, p)); // (p0+p2, p1+p3, ..)
        let s = _mm_add_ss(q, _mm_shuffle_ps(q, q, 1)); // (p0+p2)+(p1+p3)
        _mm_cvtss_f32(s)
    }

    /// Four simultaneous f16 dot products against one shared `x` row.
    ///
    /// Each output's accumulation chain is exactly [`dot_f16_scalar`]'s;
    /// running four chains concurrently only adds instruction-level
    /// parallelism.
    ///
    /// # Safety
    ///
    /// Caller must have verified AVX2+FMA+F16C support; `x` and each of the
    /// four weight rows must be `k` elements long.
    #[target_feature(enable = "avx2,fma,f16c")]
    pub(super) unsafe fn dot4_f16(x: &[f32], w: [&[u16]; 4], k: usize) -> [f32; 4] {
        let k8 = k & !7;
        let mut acc = [_mm256_setzero_ps(); 4];
        let mut i = 0;
        while i < k8 {
            let xv = _mm256_loadu_ps(x.as_ptr().add(i));
            for r in 0..4 {
                let wv = _mm256_cvtph_ps(_mm_loadu_si128(w[r].as_ptr().add(i).cast()));
                acc[r] = _mm256_fmadd_ps(xv, wv, acc[r]);
            }
            i += 8;
        }
        let mut out = [0.0f32; 4];
        for r in 0..4 {
            let mut sum = reduce256(acc[r]);
            for (&xv, &wv) in x[k8..k].iter().zip(&w[r][k8..k]) {
                sum = xv.mul_add(f16_to_f32(wv), sum);
            }
            out[r] = sum;
        }
        out
    }

    /// Single f16 dot product (remainder rows).
    ///
    /// # Safety
    ///
    /// As for [`dot4_f16`].
    #[target_feature(enable = "avx2,fma,f16c")]
    pub(super) unsafe fn dot1_f16(x: &[f32], w: &[u16], k: usize) -> f32 {
        let k8 = k & !7;
        let mut acc = _mm256_setzero_ps();
        let mut i = 0;
        while i < k8 {
            let xv = _mm256_loadu_ps(x.as_ptr().add(i));
            let wv = _mm256_cvtph_ps(_mm_loadu_si128(w.as_ptr().add(i).cast()));
            acc = _mm256_fmadd_ps(xv, wv, acc);
            i += 8;
        }
        let mut sum = reduce256(acc);
        for (&xv, &wv) in x[k8..k].iter().zip(&w[k8..k]) {
            sum = xv.mul_add(f16_to_f32(wv), sum);
        }
        sum
    }

    /// Single int8 dot product with affine dequantisation.
    ///
    /// # Safety
    ///
    /// Caller must have verified AVX2+FMA support; `x` and `q` must be `k`
    /// elements long.
    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn dot1_i8(x: &[f32], q: &[i8], scale: f32, zp: i32, k: usize) -> f32 {
        let k8 = k & !7;
        let scale_v = _mm256_set1_ps(scale);
        let zp_v = _mm256_set1_epi32(zp);
        let mut acc = _mm256_setzero_ps();
        let mut i = 0;
        while i < k8 {
            let xv = _mm256_loadu_ps(x.as_ptr().add(i));
            let qv = _mm256_cvtepi8_epi32(_mm_loadl_epi64(q.as_ptr().add(i).cast()));
            let dv = _mm256_cvtepi32_ps(_mm256_sub_epi32(qv, zp_v));
            let wv = _mm256_mul_ps(dv, scale_v);
            acc = _mm256_fmadd_ps(xv, wv, acc);
            i += 8;
        }
        let mut sum = reduce256(acc);
        for (&xv, &qv) in x[k8..k].iter().zip(&q[k8..k]) {
            let wv = (i32::from(qv) - zp) as f32 * scale;
            sum = xv.mul_add(wv, sum);
        }
        sum
    }

    /// In-place `x if lo-exclusive < x ≤ bound else 0`, per-element bound.
    ///
    /// # Safety
    ///
    /// Caller must have verified AVX2 support; `bounds.len() == values.len()`.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn bounded_relu_rows(values: &mut [f32], bounds: &[f32]) {
        let n = values.len();
        let n8 = n & !7;
        let zero = _mm256_setzero_ps();
        let mut i = 0;
        while i < n8 {
            let v = _mm256_loadu_ps(values.as_ptr().add(i));
            let b = _mm256_loadu_ps(bounds.as_ptr().add(i));
            // (x > 0) & (x ≤ b); NaN compares false on both, so NaN → 0,
            // matching the scalar leg's else-branch.
            let keep = _mm256_and_ps(
                _mm256_cmp_ps(v, zero, _CMP_GT_OQ),
                _mm256_cmp_ps(v, b, _CMP_LE_OQ),
            );
            _mm256_storeu_ps(values.as_mut_ptr().add(i), _mm256_and_ps(v, keep));
            i += 8;
        }
        for t in n8..n {
            let x = values[t];
            values[t] = if x > 0.0 && x <= bounds[t] { x } else { 0.0 };
        }
    }

    /// In-place clamp to `[lo, hi]` with `f32::clamp` NaN semantics (NaN
    /// passes through unchanged).
    ///
    /// # Safety
    ///
    /// Caller must have verified AVX2 support.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn clamp_rows(values: &mut [f32], lo: f32, hi: f32) {
        let n = values.len();
        let n8 = n & !7;
        let lo_v = _mm256_set1_ps(lo);
        let hi_v = _mm256_set1_ps(hi);
        let mut i = 0;
        while i < n8 {
            let v = _mm256_loadu_ps(values.as_ptr().add(i));
            // blend keeps v where the compare is false — NaN keeps v, unlike
            // min/max whose NaN behaviour differs from Rust's clamp.
            let r = _mm256_blendv_ps(v, lo_v, _mm256_cmp_ps(v, lo_v, _CMP_LT_OQ));
            let r = _mm256_blendv_ps(r, hi_v, _mm256_cmp_ps(v, hi_v, _CMP_GT_OQ));
            _mm256_storeu_ps(values.as_mut_ptr().add(i), r);
            i += 8;
        }
        for v in values[n8..n].iter_mut() {
            *v = v.clamp(lo, hi);
        }
    }
}

// ---------------------------------------------------------------------------
// Public kernels: per-leg entry points plus runtime dispatch.
// ---------------------------------------------------------------------------

/// Validates the operand lengths of a reduced-precision product.
fn check_dims(
    xs: usize,
    ws: usize,
    outs: usize,
    bias: Option<usize>,
    m: usize,
    k: usize,
    n: usize,
) {
    assert_eq!(xs, m * k, "input length");
    assert_eq!(ws, n * k, "weight length");
    assert_eq!(outs, m * n, "out length");
    if let Some(b) = bias {
        assert_eq!(b, n, "bias length");
    }
}

/// `out[m,n] = x[m,k] · W[n,k]ᵀ (+ bias)` with f16 weights — scalar leg.
pub fn matmul_f16_scalar(
    x: &[f32],
    w: &[u16],
    bias: Option<&[f32]>,
    out: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
) {
    check_dims(x.len(), w.len(), out.len(), bias.map(<[f32]>::len), m, k, n);
    for b in 0..m {
        let xr = &x[b * k..(b + 1) * k];
        for o in 0..n {
            let mut v = dot_f16_scalar(xr, &w[o * k..(o + 1) * k]);
            if let Some(bias) = bias {
                v += bias[o];
            }
            out[b * n + o] = v;
        }
    }
}

/// `out[m,n] = x[m,k] · W[n,k]ᵀ (+ bias)` with f16 weights — SIMD leg.
///
/// # Panics
///
/// Panics when the host lacks AVX2/FMA/F16C (callers dispatch through
/// [`matmul_f16`], which never takes this leg on such hosts).
#[cfg(target_arch = "x86_64")]
pub fn matmul_f16_simd(
    x: &[f32],
    w: &[u16],
    bias: Option<&[f32]>,
    out: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
) {
    assert!(simd_available(), "AVX2+FMA+F16C unavailable on this host");
    check_dims(x.len(), w.len(), out.len(), bias.map(<[f32]>::len), m, k, n);
    // Iterate channel-major: a block of four weight rows stays cache-hot
    // across the whole batch while being streamed from memory exactly once.
    let n4 = n & !3;
    for o in (0..n4).step_by(4) {
        let rows = [
            &w[o * k..(o + 1) * k],
            &w[(o + 1) * k..(o + 2) * k],
            &w[(o + 2) * k..(o + 3) * k],
            &w[(o + 3) * k..(o + 4) * k],
        ];
        for b in 0..m {
            let xr = &x[b * k..(b + 1) * k];
            // SAFETY: simd_available() verified the required features.
            let mut vals = unsafe { avx::dot4_f16(xr, rows, k) };
            if let Some(bias) = bias {
                for (r, v) in vals.iter_mut().enumerate() {
                    *v += bias[o + r];
                }
            }
            for (r, v) in vals.iter().enumerate() {
                out[b * n + o + r] = *v;
            }
        }
    }
    for o in n4..n {
        let row = &w[o * k..(o + 1) * k];
        for b in 0..m {
            let xr = &x[b * k..(b + 1) * k];
            // SAFETY: simd_available() verified the required features.
            let mut v = unsafe { avx::dot1_f16(xr, row, k) };
            if let Some(bias) = bias {
                v += bias[o];
            }
            out[b * n + o] = v;
        }
    }
}

/// `out[m,n] = x[m,k] · W[n,k]ᵀ (+ bias)` with f16 weights, runtime
/// dispatched and (for large products outside a
/// [`crate::matmul::serial_scope`]) split channel-wise across threads.
///
/// Both legs and every thread count produce bit-identical results.
///
/// # Panics
///
/// Panics if a slice length disagrees with the dimensions.
pub fn matmul_f16(
    x: &[f32],
    w: &[u16],
    bias: Option<&[f32]>,
    out: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
) {
    check_dims(x.len(), w.len(), out.len(), bias.map(<[f32]>::len), m, k, n);
    let threads = kernel_threads(m, k, n);
    if threads <= 1 {
        run_f16_leg(x, w, bias, out, m, k, n);
        return;
    }
    // Split the channel range: each thread streams a disjoint slice of the
    // weight words (the bandwidth-dominant operand) and computes a private
    // [m, chunk] block, stitched into `out` afterwards. Every element's
    // arithmetic is independent, so the split cannot change any bit.
    let per = n.div_ceil(threads);
    let mut blocks: Vec<(usize, usize, Vec<f32>)> = Vec::new();
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        let mut o0 = 0;
        while o0 < n {
            let nc = per.min(n - o0);
            let wc = &w[o0 * k..(o0 + nc) * k];
            let bc = bias.map(|b| &b[o0..o0 + nc]);
            handles.push((
                o0,
                nc,
                scope.spawn(move || {
                    let mut block = vec![0.0f32; m * nc];
                    run_f16_leg(x, wc, bc, &mut block, m, k, nc);
                    block
                }),
            ));
            o0 += nc;
        }
        for (o0, nc, handle) in handles {
            blocks.push((o0, nc, handle.join().expect("kernel worker panicked")));
        }
    });
    for (o0, nc, block) in blocks {
        for b in 0..m {
            out[b * n + o0..b * n + o0 + nc].copy_from_slice(&block[b * nc..(b + 1) * nc]);
        }
    }
}

/// Runs the active leg on one contiguous channel block.
fn run_f16_leg(
    x: &[f32],
    w: &[u16],
    bias: Option<&[f32]>,
    out: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
) {
    #[cfg(target_arch = "x86_64")]
    if simd_active() {
        matmul_f16_simd(x, w, bias, out, m, k, n);
        return;
    }
    matmul_f16_scalar(x, w, bias, out, m, k, n);
}

/// `out[m,n] = x[m,k] · dequant(Q[n,k])ᵀ (+ bias)` — scalar leg. One
/// `(scale, zero_point)` pair per output channel.
#[allow(clippy::too_many_arguments)]
pub fn matmul_i8_scalar(
    x: &[f32],
    q: &[i8],
    scales: &[f32],
    zero_points: &[i8],
    bias: Option<&[f32]>,
    out: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
) {
    check_dims(x.len(), q.len(), out.len(), bias.map(<[f32]>::len), m, k, n);
    assert_eq!(scales.len(), n, "scale count");
    assert_eq!(zero_points.len(), n, "zero-point count");
    for b in 0..m {
        let xr = &x[b * k..(b + 1) * k];
        for o in 0..n {
            let mut v = dot_i8_scalar(
                xr,
                &q[o * k..(o + 1) * k],
                scales[o],
                i32::from(zero_points[o]),
            );
            if let Some(bias) = bias {
                v += bias[o];
            }
            out[b * n + o] = v;
        }
    }
}

/// `out[m,n] = x[m,k] · dequant(Q[n,k])ᵀ (+ bias)` — SIMD leg.
///
/// # Panics
///
/// Panics when the host lacks AVX2/FMA.
#[cfg(target_arch = "x86_64")]
#[allow(clippy::too_many_arguments)]
pub fn matmul_i8_simd(
    x: &[f32],
    q: &[i8],
    scales: &[f32],
    zero_points: &[i8],
    bias: Option<&[f32]>,
    out: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
) {
    assert!(simd_available(), "AVX2+FMA unavailable on this host");
    check_dims(x.len(), q.len(), out.len(), bias.map(<[f32]>::len), m, k, n);
    assert_eq!(scales.len(), n, "scale count");
    assert_eq!(zero_points.len(), n, "zero-point count");
    for o in 0..n {
        let row = &q[o * k..(o + 1) * k];
        let (scale, zp) = (scales[o], i32::from(zero_points[o]));
        for b in 0..m {
            let xr = &x[b * k..(b + 1) * k];
            // SAFETY: simd_available() verified the required features.
            let mut v = unsafe { avx::dot1_i8(xr, row, scale, zp, k) };
            if let Some(bias) = bias {
                v += bias[o];
            }
            out[b * n + o] = v;
        }
    }
}

/// Int8 product with runtime dispatch and channel-split threading; see
/// [`matmul_f16`] for the contract.
///
/// # Panics
///
/// Panics if a slice length disagrees with the dimensions.
#[allow(clippy::too_many_arguments)]
pub fn matmul_i8(
    x: &[f32],
    q: &[i8],
    scales: &[f32],
    zero_points: &[i8],
    bias: Option<&[f32]>,
    out: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
) {
    check_dims(x.len(), q.len(), out.len(), bias.map(<[f32]>::len), m, k, n);
    assert_eq!(scales.len(), n, "scale count");
    assert_eq!(zero_points.len(), n, "zero-point count");
    let threads = kernel_threads(m, k, n);
    if threads <= 1 {
        run_i8_leg(x, q, scales, zero_points, bias, out, m, k, n);
        return;
    }
    let per = n.div_ceil(threads);
    let mut blocks: Vec<(usize, usize, Vec<f32>)> = Vec::new();
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        let mut o0 = 0;
        while o0 < n {
            let nc = per.min(n - o0);
            let qc = &q[o0 * k..(o0 + nc) * k];
            let sc = &scales[o0..o0 + nc];
            let zc = &zero_points[o0..o0 + nc];
            let bc = bias.map(|b| &b[o0..o0 + nc]);
            handles.push((
                o0,
                nc,
                scope.spawn(move || {
                    let mut block = vec![0.0f32; m * nc];
                    run_i8_leg(x, qc, sc, zc, bc, &mut block, m, k, nc);
                    block
                }),
            ));
            o0 += nc;
        }
        for (o0, nc, handle) in handles {
            blocks.push((o0, nc, handle.join().expect("kernel worker panicked")));
        }
    });
    for (o0, nc, block) in blocks {
        for b in 0..m {
            out[b * n + o0..b * n + o0 + nc].copy_from_slice(&block[b * nc..(b + 1) * nc]);
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn run_i8_leg(
    x: &[f32],
    q: &[i8],
    scales: &[f32],
    zero_points: &[i8],
    bias: Option<&[f32]>,
    out: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
) {
    #[cfg(target_arch = "x86_64")]
    if simd_active() {
        matmul_i8_simd(x, q, scales, zero_points, bias, out, m, k, n);
        return;
    }
    matmul_i8_scalar(x, q, scales, zero_points, bias, out, m, k, n);
}

fn kernel_threads(m: usize, k: usize, n: usize) -> usize {
    if m * n * k >= PARALLEL_THRESHOLD && !crate::matmul::serial_forced() {
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
            .min(n)
    } else {
        1
    }
}

// ---------------------------------------------------------------------------
// Bounded-activation kernels.
// ---------------------------------------------------------------------------

/// In-place bounded ReLU with one bound per trailing-dimension position:
/// `x if 0 < x ≤ bounds[i mod bounds.len()] else 0` (NaN → 0).
///
/// # Panics
///
/// Panics if `bounds` is empty or `values.len()` is not a multiple of
/// `bounds.len()`.
pub fn bounded_relu_per_neuron(values: &mut [f32], bounds: &[f32]) {
    assert!(!bounds.is_empty(), "bounds must be non-empty");
    assert_eq!(
        values.len() % bounds.len(),
        0,
        "values must be whole rows of bounds"
    );
    for row in values.chunks_mut(bounds.len()) {
        #[cfg(target_arch = "x86_64")]
        if simd_active() {
            // SAFETY: simd_active() verified AVX2; lengths match.
            unsafe { avx::bounded_relu_rows(row, bounds) };
            continue;
        }
        for (v, &b) in row.iter_mut().zip(bounds) {
            *v = if *v > 0.0 && *v <= b { *v } else { 0.0 };
        }
    }
}

/// In-place bounded ReLU with a single shared bound:
/// `x if 0 < x ≤ bound else 0` (NaN → 0).
pub fn bounded_relu_uniform(values: &mut [f32], bound: f32) {
    #[cfg(target_arch = "x86_64")]
    if simd_active() {
        let uniform = [bound; 8];
        let n8 = values.len() & !7;
        let (head, tail) = values.split_at_mut(n8);
        for row in head.chunks_mut(8) {
            // SAFETY: simd_active() verified AVX2; row length is 8.
            unsafe { avx::bounded_relu_rows(row, &uniform) };
        }
        for v in tail {
            *v = if *v > 0.0 && *v <= bound { *v } else { 0.0 };
        }
        return;
    }
    for v in values {
        *v = if *v > 0.0 && *v <= bound { *v } else { 0.0 };
    }
}

/// In-place clamp to `[lo, hi]` with `f32::clamp` semantics (NaN passes
/// through unchanged).
pub fn clamp_in_place(values: &mut [f32], lo: f32, hi: f32) {
    #[cfg(target_arch = "x86_64")]
    if simd_active() {
        // SAFETY: simd_active() verified AVX2.
        unsafe { avx::clamp_rows(values, lo, hi) };
        return;
    }
    for v in values {
        *v = v.clamp(lo, hi);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::half::f32_to_f16;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_case(m: usize, k: usize, n: usize, seed: u64) -> (Vec<f32>, Vec<u16>, Vec<f32>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let x: Vec<f32> = (0..m * k).map(|_| rng.gen_range(-2.0..2.0)).collect();
        let w: Vec<u16> = (0..n * k)
            .map(|_| f32_to_f16(rng.gen_range(-1.5..1.5)))
            .collect();
        let bias: Vec<f32> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
        (x, w, bias)
    }

    #[test]
    fn scalar_f16_matches_reference_values() {
        // k < 8 exercises the pure-tail path; exact values, no rounding.
        let x = [1.0f32, 2.0, -3.0];
        let w: Vec<u16> = [0.5f32, 0.25, 1.0, -1.0, 2.0, 0.0]
            .iter()
            .map(|&v| f32_to_f16(v))
            .collect();
        let mut out = [0.0f32; 2];
        matmul_f16_scalar(&x, &w, None, &mut out, 1, 3, 2);
        assert_eq!(out, [1.0 * 0.5 + 2.0 * 0.25 - 3.0, -1.0 + 4.0]);
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn simd_f16_is_bit_identical_to_scalar() {
        if !simd_available() {
            eprintln!("skipping: host lacks AVX2/FMA/F16C");
            return;
        }
        for (m, k, n, seed) in [(1, 7, 1, 1), (3, 16, 5, 2), (4, 33, 9, 3), (32, 130, 17, 4)] {
            let (x, w, bias) = random_case(m, k, n, seed);
            let mut scalar = vec![0.0f32; m * n];
            let mut simd = vec![0.0f32; m * n];
            matmul_f16_scalar(&x, &w, Some(&bias), &mut scalar, m, k, n);
            matmul_f16_simd(&x, &w, Some(&bias), &mut simd, m, k, n);
            assert_eq!(
                scalar.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                simd.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "m={m} k={k} n={n}"
            );
        }
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn simd_f16_matches_scalar_on_nonfinite_weights() {
        if !simd_available() {
            eprintln!("skipping: host lacks AVX2/FMA/F16C");
            return;
        }
        // Inf, -Inf, quiet NaN, signalling NaN, subnormals — the words a
        // fault campaign actually produces.
        let w: Vec<u16> = vec![
            0x7C00, 0xFC00, 0x7E01, 0x7C01, 0x0001, 0x03FF, 0x8001, 0x3C00, 0x7BFF, 0xFBFF, 0x0000,
            0x8000,
        ];
        let x: Vec<f32> = (0..12).map(|i| (i as f32 - 6.0) * 0.25).collect();
        let mut scalar = vec![0.0f32; 1];
        let mut simd = vec![0.0f32; 1];
        matmul_f16_scalar(&x, &w, None, &mut scalar, 1, 12, 1);
        matmul_f16_simd(&x, &w, None, &mut simd, 1, 12, 1);
        assert_eq!(scalar[0].to_bits(), simd[0].to_bits());
    }

    #[test]
    fn threaded_f16_is_bit_identical_to_serial() {
        // Big enough to cross PARALLEL_THRESHOLD.
        let (m, k, n) = (32, 96, 128);
        let (x, w, bias) = random_case(m, k, n, 7);
        let mut threaded = vec![0.0f32; m * n];
        matmul_f16(&x, &w, Some(&bias), &mut threaded, m, k, n);
        let mut serial = vec![0.0f32; m * n];
        crate::matmul::serial_scope(|| {
            matmul_f16(&x, &w, Some(&bias), &mut serial, m, k, n);
        });
        assert_eq!(threaded, serial);
    }

    #[test]
    fn scalar_i8_dequantises_exactly() {
        let q: Vec<i8> = vec![10, -10, 0, 127];
        let x = [1.0f32, 1.0, 1.0, 1.0];
        let mut out = [0.0f32; 1];
        matmul_i8_scalar(&x, &q, &[0.5], &[-3], None, &mut out, 1, 4, 1);
        // (10+3) + (-10+3) + 3 + 130 = 139, × 0.5
        assert_eq!(out[0], 139.0 * 0.5);
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn simd_i8_is_bit_identical_to_scalar() {
        if !simd_available() {
            eprintln!("skipping: host lacks AVX2/FMA");
            return;
        }
        let mut rng = StdRng::seed_from_u64(11);
        let (m, k, n) = (5, 27, 6);
        let x: Vec<f32> = (0..m * k).map(|_| rng.gen_range(-2.0..2.0)).collect();
        let q: Vec<i8> = (0..n * k).map(|_| rng.gen_range(-128..=127)).collect();
        let scales: Vec<f32> = (0..n).map(|_| rng.gen_range(0.001..0.1)).collect();
        let zps: Vec<i8> = (0..n).map(|_| rng.gen_range(-20..20)).collect();
        let bias: Vec<f32> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let mut scalar = vec![0.0f32; m * n];
        let mut simd = vec![0.0f32; m * n];
        matmul_i8_scalar(&x, &q, &scales, &zps, Some(&bias), &mut scalar, m, k, n);
        matmul_i8_simd(&x, &q, &scales, &zps, Some(&bias), &mut simd, m, k, n);
        assert_eq!(
            scalar.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            simd.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        );
    }

    #[test]
    fn threaded_i8_is_bit_identical_to_serial() {
        let mut rng = StdRng::seed_from_u64(13);
        let (m, k, n) = (32, 96, 128);
        let x: Vec<f32> = (0..m * k).map(|_| rng.gen_range(-2.0..2.0)).collect();
        let q: Vec<i8> = (0..n * k).map(|_| rng.gen_range(-128..=127)).collect();
        let scales: Vec<f32> = (0..n).map(|_| rng.gen_range(0.001..0.1)).collect();
        let zps: Vec<i8> = (0..n).map(|_| rng.gen_range(-20..20)).collect();
        let mut threaded = vec![0.0f32; m * n];
        matmul_i8(&x, &q, &scales, &zps, None, &mut threaded, m, k, n);
        let mut serial = vec![0.0f32; m * n];
        crate::matmul::serial_scope(|| {
            matmul_i8(&x, &q, &scales, &zps, None, &mut serial, m, k, n);
        });
        assert_eq!(threaded, serial);
    }

    #[test]
    fn bounded_relu_per_neuron_matches_scalar_semantics() {
        let bounds = [1.0f32, 2.0, 0.5];
        let mut values = vec![
            0.5,
            1.5,
            0.4, // row 0: keep, keep, keep
            1.5,
            2.5,
            0.6, // row 1: squash, squash, squash
            -1.0,
            0.0,
            f32::NAN, // row 2: squash, squash, NaN → 0
        ];
        bounded_relu_per_neuron(&mut values, &bounds);
        assert_eq!(values, vec![0.5, 1.5, 0.4, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0]);
    }

    #[test]
    fn bounded_relu_uniform_handles_tails_and_nan() {
        let mut values: Vec<f32> = (0..11).map(|i| i as f32 - 3.0).collect();
        values[10] = f32::NAN;
        bounded_relu_uniform(&mut values, 5.0);
        assert_eq!(
            values,
            vec![0.0, 0.0, 0.0, 0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 0.0, 0.0]
        );
    }

    #[test]
    fn clamp_in_place_keeps_nan_like_f32_clamp() {
        let mut values = vec![-2.0, 0.5, 7.0, f32::NAN, -0.0, 3.0, 1.0, 2.0, 9.0];
        clamp_in_place(&mut values, 0.0, 3.0);
        assert_eq!(values[0], 0.0);
        assert_eq!(values[1], 0.5);
        assert_eq!(values[2], 3.0);
        assert!(values[3].is_nan(), "NaN passes through, as f32::clamp does");
        assert_eq!(values[4].to_bits(), (-0.0f32).to_bits());
        assert_eq!(values[8], 3.0);
    }

    #[test]
    fn backend_name_is_consistent_with_dispatch() {
        let name = backend_name();
        if simd_active() {
            assert_eq!(name, "avx2+fma+f16c");
        } else {
            assert_eq!(name, "scalar");
        }
    }
}
