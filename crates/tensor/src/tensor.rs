//! Dense row-major `f32` tensors.

use crate::matmul::{matmul_into, Layout};
use crate::{Shape, TensorError};
use std::fmt;
use std::sync::Arc;

/// A read-only slab of `f32` values that tensors can borrow windows of.
///
/// The canonical implementor is the mmap'd parameter region of a `.fitact`
/// v2 artifact: one file mapping backs every parameter tensor of every
/// server worker, instead of each worker owning a private copy. The slab is
/// reference-counted (`Arc<dyn F32Slab>`), so it stays alive as long as any
/// tensor still points into it.
pub trait F32Slab: Send + Sync + fmt::Debug {
    /// Returns the whole slab as a row-major `f32` slice.
    fn as_f32(&self) -> &[f32];
}

/// Backing storage of a [`Tensor`]: either a private owned buffer or a
/// window into a shared read-only [`F32Slab`].
///
/// Cloning a `Shared` storage clones the `Arc`, not the values — that is
/// the zero-copy share. Any mutation first materialises the window into an
/// owned buffer (copy-on-write), so shared slabs are never written through.
#[derive(Clone, Debug)]
enum Storage {
    Owned(Vec<f32>),
    Shared {
        slab: Arc<dyn F32Slab>,
        offset: usize,
        len: usize,
    },
}

/// A dense, row-major, `f32` n-dimensional array.
///
/// `Tensor` is deliberately small: it supports exactly the operations the
/// FitAct reproduction needs (layer forward/backward passes, activation
/// statistics and fault-injection bookkeeping) and nothing more. Data is
/// contiguous and either owned or a read-only window into a shared
/// [`F32Slab`] (e.g. an mmap'd artifact); mutation copies shared data out
/// first, so fault injection over parameter memory stays straightforward.
///
/// # Example
///
/// ```
/// # use fitact_tensor::{Tensor, TensorError};
/// # fn main() -> Result<(), TensorError> {
/// let x = Tensor::from_vec(vec![1.0, -2.0, 3.0], &[3])?;
/// let relu = x.map(|v| v.max(0.0));
/// assert_eq!(relu.as_slice(), &[1.0, 0.0, 3.0]);
/// # Ok(())
/// # }
/// ```
#[derive(Clone)]
pub struct Tensor {
    storage: Storage,
    shape: Shape,
}

impl PartialEq for Tensor {
    fn eq(&self, other: &Self) -> bool {
        self.shape == other.shape && self.as_slice() == other.as_slice()
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let slice = self.as_slice();
        let preview: Vec<f32> = slice.iter().copied().take(8).collect();
        f.debug_struct("Tensor")
            .field("shape", &self.shape)
            .field("numel", &slice.len())
            .field("shared", &self.is_shared())
            .field("data_prefix", &preview)
            .finish()
    }
}

impl Default for Tensor {
    fn default() -> Self {
        Tensor::zeros(&[0])
    }
}

impl Tensor {
    /// Creates a tensor of the given shape filled with `value`.
    pub fn full(shape: &[usize], value: f32) -> Self {
        let shape = Shape::new(shape);
        Tensor {
            storage: Storage::Owned(vec![value; shape.numel()]),
            shape,
        }
    }

    /// Creates a tensor of the given shape filled with zeros.
    pub fn zeros(shape: &[usize]) -> Self {
        Tensor::full(shape, 0.0)
    }

    /// Creates a tensor of the given shape filled with ones.
    pub fn ones(shape: &[usize]) -> Self {
        Tensor::full(shape, 1.0)
    }

    /// Creates a square identity matrix of size `n`.
    pub fn eye(n: usize) -> Self {
        let mut t = Tensor::zeros(&[n, n]);
        let data = t.as_mut_slice();
        for i in 0..n {
            data[i * n + i] = 1.0;
        }
        t
    }

    /// Creates a tensor from raw data and a shape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] if `data.len()` does not equal
    /// the number of elements implied by `shape`.
    pub fn from_vec(data: Vec<f32>, shape: &[usize]) -> Result<Self, TensorError> {
        let shape = Shape::new(shape);
        if data.len() != shape.numel() {
            return Err(TensorError::LengthMismatch {
                expected: shape.numel(),
                actual: data.len(),
            });
        }
        Ok(Tensor {
            storage: Storage::Owned(data),
            shape,
        })
    }

    /// Creates a tensor whose values are a read-only window into a shared
    /// slab, starting at `offset` (in elements).
    ///
    /// The tensor holds a reference count on the slab, not a copy of the
    /// values: cloning it (or the network holding it) shares the same
    /// memory. The first mutation copies the window into an owned buffer.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] if the window
    /// `offset..offset + shape.numel()` does not lie inside the slab.
    pub fn from_shared(
        slab: Arc<dyn F32Slab>,
        offset: usize,
        shape: &[usize],
    ) -> Result<Self, TensorError> {
        let shape = Shape::new(shape);
        let len = shape.numel();
        let end = offset.saturating_add(len);
        if end > slab.as_f32().len() {
            return Err(TensorError::LengthMismatch {
                expected: end,
                actual: slab.as_f32().len(),
            });
        }
        Ok(Tensor {
            storage: Storage::Shared { slab, offset, len },
            shape,
        })
    }

    /// Returns `true` if the tensor currently borrows a shared slab window
    /// instead of owning its values.
    pub fn is_shared(&self) -> bool {
        matches!(self.storage, Storage::Shared { .. })
    }

    /// Creates a 0-d tensor holding a single value.
    pub fn scalar(value: f32) -> Self {
        Tensor {
            storage: Storage::Owned(vec![value]),
            shape: Shape::new(&[]),
        }
    }

    /// Returns the shape of the tensor.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Returns the axis lengths as a slice.
    pub fn dims(&self) -> &[usize] {
        self.shape.dims()
    }

    /// Returns the number of dimensions.
    pub fn ndim(&self) -> usize {
        self.shape.ndim()
    }

    /// Returns the total number of elements.
    pub fn numel(&self) -> usize {
        match &self.storage {
            Storage::Owned(data) => data.len(),
            Storage::Shared { len, .. } => *len,
        }
    }

    /// Returns a read-only view of the underlying storage in row-major order.
    pub fn as_slice(&self) -> &[f32] {
        match &self.storage {
            Storage::Owned(data) => data,
            Storage::Shared { slab, offset, len } => &slab.as_f32()[*offset..*offset + *len],
        }
    }

    /// Copy-on-write access to the owned buffer: a tensor still borrowing a
    /// shared slab copies its window out first.
    fn data_mut(&mut self) -> &mut Vec<f32> {
        if let Storage::Shared { slab, offset, len } = &self.storage {
            let owned = slab.as_f32()[*offset..*offset + *len].to_vec();
            self.storage = Storage::Owned(owned);
        }
        match &mut self.storage {
            Storage::Owned(data) => data,
            Storage::Shared { .. } => unreachable!("shared storage was just materialised"),
        }
    }

    /// Returns a mutable view of the underlying storage in row-major order.
    ///
    /// If the tensor borrows a shared slab, its values are first copied into
    /// an owned buffer (copy-on-write) — shared slabs are never written.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        self.data_mut().as_mut_slice()
    }

    /// Consumes the tensor and returns its storage (copying if shared).
    pub fn into_vec(mut self) -> Vec<f32> {
        std::mem::take(self.data_mut())
    }

    /// Reads the element at a multi-dimensional index.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfBounds`] for invalid indices.
    pub fn get(&self, index: &[usize]) -> Result<f32, TensorError> {
        let off = self.shape.offset(index)?;
        Ok(self.as_slice()[off])
    }

    /// Writes the element at a multi-dimensional index.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfBounds`] for invalid indices.
    pub fn set(&mut self, index: &[usize], value: f32) -> Result<(), TensorError> {
        let off = self.shape.offset(index)?;
        self.as_mut_slice()[off] = value;
        Ok(())
    }

    /// Returns a copy of this tensor with a new shape holding the same data.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] if the new shape has a different
    /// number of elements.
    pub fn reshape(&self, shape: &[usize]) -> Result<Tensor, TensorError> {
        let new_shape = Shape::new(shape);
        if new_shape.numel() != self.numel() {
            return Err(TensorError::LengthMismatch {
                expected: new_shape.numel(),
                actual: self.numel(),
            });
        }
        Ok(Tensor {
            storage: self.storage.clone(),
            shape: new_shape,
        })
    }

    /// Reinterprets the tensor in place with a new shape holding the same data.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] if the new shape has a different
    /// number of elements.
    pub fn reshape_in_place(&mut self, shape: &[usize]) -> Result<(), TensorError> {
        let new_shape = Shape::new(shape);
        if new_shape.numel() != self.numel() {
            return Err(TensorError::LengthMismatch {
                expected: new_shape.numel(),
                actual: self.numel(),
            });
        }
        self.shape = new_shape;
        Ok(())
    }

    /// Applies `f` to every element, returning a new tensor of the same shape.
    pub fn map<F: Fn(f32) -> f32>(&self, f: F) -> Tensor {
        Tensor {
            storage: Storage::Owned(self.as_slice().iter().map(|&v| f(v)).collect()),
            shape: self.shape.clone(),
        }
    }

    /// Applies `f` to every element in place.
    pub fn map_in_place<F: Fn(f32) -> f32>(&mut self, f: F) {
        for v in self.as_mut_slice() {
            *v = f(*v);
        }
    }

    /// Combines two tensors element-wise with `f`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn zip_map<F: Fn(f32, f32) -> f32>(
        &self,
        other: &Tensor,
        f: F,
    ) -> Result<Tensor, TensorError> {
        if !self.shape.same_as(&other.shape) {
            return Err(TensorError::ShapeMismatch {
                left: self.dims().to_vec(),
                right: other.dims().to_vec(),
            });
        }
        Ok(Tensor {
            storage: Storage::Owned(
                self.as_slice()
                    .iter()
                    .zip(other.as_slice())
                    .map(|(&a, &b)| f(a, b))
                    .collect(),
            ),
            shape: self.shape.clone(),
        })
    }

    /// Element-wise addition.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn add(&self, other: &Tensor) -> Result<Tensor, TensorError> {
        self.zip_map(other, |a, b| a + b)
    }

    /// Element-wise subtraction.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn sub(&self, other: &Tensor) -> Result<Tensor, TensorError> {
        self.zip_map(other, |a, b| a - b)
    }

    /// Element-wise multiplication (Hadamard product).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn mul(&self, other: &Tensor) -> Result<Tensor, TensorError> {
        self.zip_map(other, |a, b| a * b)
    }

    /// Element-wise division.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn div(&self, other: &Tensor) -> Result<Tensor, TensorError> {
        self.zip_map(other, |a, b| a / b)
    }

    /// Adds `other` into `self` in place.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn add_assign(&mut self, other: &Tensor) -> Result<(), TensorError> {
        if !self.shape.same_as(&other.shape) {
            return Err(TensorError::ShapeMismatch {
                left: self.dims().to_vec(),
                right: other.dims().to_vec(),
            });
        }
        for (a, b) in self.as_mut_slice().iter_mut().zip(other.as_slice()) {
            *a += b;
        }
        Ok(())
    }

    /// Adds `scale * other` into `self` in place (axpy).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn add_scaled_assign(&mut self, other: &Tensor, scale: f32) -> Result<(), TensorError> {
        if !self.shape.same_as(&other.shape) {
            return Err(TensorError::ShapeMismatch {
                left: self.dims().to_vec(),
                right: other.dims().to_vec(),
            });
        }
        for (a, b) in self.as_mut_slice().iter_mut().zip(other.as_slice()) {
            *a += scale * b;
        }
        Ok(())
    }

    /// Returns a new tensor with `scalar` added to every element.
    pub fn add_scalar(&self, scalar: f32) -> Tensor {
        self.map(|v| v + scalar)
    }

    /// Returns a new tensor with every element multiplied by `scalar`.
    pub fn mul_scalar(&self, scalar: f32) -> Tensor {
        self.map(|v| v * scalar)
    }

    /// Fills the tensor with a constant value.
    pub fn fill(&mut self, value: f32) {
        for v in self.as_mut_slice() {
            *v = value;
        }
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.as_slice().iter().sum()
    }

    /// Mean of all elements.
    ///
    /// Returns `0.0` for an empty tensor.
    pub fn mean(&self) -> f32 {
        if self.numel() == 0 {
            0.0
        } else {
            self.sum() / self.numel() as f32
        }
    }

    /// Maximum element, or `f32::NEG_INFINITY` for an empty tensor.
    pub fn max(&self) -> f32 {
        self.as_slice()
            .iter()
            .copied()
            .fold(f32::NEG_INFINITY, f32::max)
    }

    /// Minimum element, or `f32::INFINITY` for an empty tensor.
    pub fn min(&self) -> f32 {
        self.as_slice()
            .iter()
            .copied()
            .fold(f32::INFINITY, f32::min)
    }

    /// Index of the maximum element in row-major order (ties go to the first).
    ///
    /// Returns `None` for an empty tensor.
    pub fn argmax(&self) -> Option<usize> {
        let data = self.as_slice();
        if data.is_empty() {
            return None;
        }
        let mut best = 0usize;
        for (i, &v) in data.iter().enumerate() {
            if v > data[best] {
                best = i;
            }
        }
        Some(best)
    }

    /// Treats the tensor as `[rows, cols]` and returns the argmax of each row.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidShape`] if the tensor is not 2-D.
    pub fn argmax_rows(&self) -> Result<Vec<usize>, TensorError> {
        if self.ndim() != 2 {
            return Err(TensorError::InvalidShape(self.dims().to_vec()));
        }
        let rows = self.dims()[0];
        let cols = self.dims()[1];
        let data = self.as_slice();
        let mut out = Vec::with_capacity(rows);
        for r in 0..rows {
            let row = &data[r * cols..(r + 1) * cols];
            let mut best = 0usize;
            for (i, &v) in row.iter().enumerate() {
                if v > row[best] {
                    best = i;
                }
            }
            out.push(best);
        }
        Ok(out)
    }

    /// Sums a 2-D tensor over its rows, producing a 1-D tensor of length `cols`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidShape`] if the tensor is not 2-D.
    pub fn sum_axis0(&self) -> Result<Tensor, TensorError> {
        if self.ndim() != 2 {
            return Err(TensorError::InvalidShape(self.dims().to_vec()));
        }
        let rows = self.dims()[0];
        let cols = self.dims()[1];
        let data = self.as_slice();
        let mut out = vec![0.0f32; cols];
        for r in 0..rows {
            for (o, v) in out.iter_mut().zip(&data[r * cols..(r + 1) * cols]) {
                *o += v;
            }
        }
        Tensor::from_vec(out, &[cols])
    }

    /// Transposes a 2-D tensor.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidShape`] if the tensor is not 2-D.
    pub fn transpose(&self) -> Result<Tensor, TensorError> {
        if self.ndim() != 2 {
            return Err(TensorError::InvalidShape(self.dims().to_vec()));
        }
        let rows = self.dims()[0];
        let cols = self.dims()[1];
        let data = self.as_slice();
        let mut out = vec![0.0f32; rows * cols];
        for r in 0..rows {
            for c in 0..cols {
                out[c * rows + r] = data[r * cols + c];
            }
        }
        Tensor::from_vec(out, &[cols, rows])
    }

    /// Matrix multiplication of two 2-D tensors: `[m, k] × [k, n] → [m, n]`.
    ///
    /// Runs on the cache-blocked packed kernel in [`crate::matmul`]; large
    /// products are split row-wise across threads.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::MatmulShape`] if either operand is not 2-D or the
    /// inner dimensions disagree.
    pub fn matmul(&self, other: &Tensor) -> Result<Tensor, TensorError> {
        if self.ndim() != 2 || other.ndim() != 2 || self.dims()[1] != other.dims()[0] {
            return Err(TensorError::MatmulShape {
                left: self.dims().to_vec(),
                right: other.dims().to_vec(),
            });
        }
        let m = self.dims()[0];
        let k = self.dims()[1];
        let n = other.dims()[1];
        let mut out = vec![0.0f32; m * n];
        matmul_into(
            Layout::Nn,
            self.as_slice(),
            other.as_slice(),
            &mut out,
            m,
            k,
            n,
            false,
        );
        Tensor::from_vec(out, &[m, n])
    }

    /// Computes `selfᵀ × other` without materialising the transpose:
    /// `[k, m]ᵀ × [k, n] → [m, n]`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::MatmulShape`] if either operand is not 2-D or the
    /// shared dimension disagrees.
    pub fn matmul_tn(&self, other: &Tensor) -> Result<Tensor, TensorError> {
        if self.ndim() != 2 || other.ndim() != 2 || self.dims()[0] != other.dims()[0] {
            return Err(TensorError::MatmulShape {
                left: self.dims().to_vec(),
                right: other.dims().to_vec(),
            });
        }
        let k = self.dims()[0];
        let m = self.dims()[1];
        let n = other.dims()[1];
        let mut out = vec![0.0f32; m * n];
        matmul_into(
            Layout::Tn,
            self.as_slice(),
            other.as_slice(),
            &mut out,
            m,
            k,
            n,
            false,
        );
        Tensor::from_vec(out, &[m, n])
    }

    /// Computes `self × otherᵀ` without materialising the transpose:
    /// `[m, k] × [n, k]ᵀ → [m, n]`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::MatmulShape`] if either operand is not 2-D or the
    /// shared dimension disagrees.
    pub fn matmul_nt(&self, other: &Tensor) -> Result<Tensor, TensorError> {
        if self.ndim() != 2 || other.ndim() != 2 || self.dims()[1] != other.dims()[1] {
            return Err(TensorError::MatmulShape {
                left: self.dims().to_vec(),
                right: other.dims().to_vec(),
            });
        }
        let m = self.dims()[0];
        let k = self.dims()[1];
        let n = other.dims()[0];
        let mut out = vec![0.0f32; m * n];
        matmul_into(
            Layout::Nt,
            self.as_slice(),
            other.as_slice(),
            &mut out,
            m,
            k,
            n,
            false,
        );
        Tensor::from_vec(out, &[m, n])
    }

    /// Reshapes this tensor in place to `dims`, reusing the existing storage.
    ///
    /// Unlike [`Tensor::reshape_in_place`] the element count may change: the
    /// backing buffer grows (allocating only when capacity is exceeded) or
    /// logically shrinks (never releasing memory). Contents are unspecified
    /// afterwards; this is a buffer-reuse primitive for workspace-style code,
    /// not a view operation.
    pub fn ensure_shape(&mut self, dims: &[usize]) {
        if self.dims() == dims {
            return;
        }
        let shape = Shape::new(dims);
        self.data_mut().resize(shape.numel(), 0.0);
        self.shape = shape;
    }

    /// Copies `src` into this tensor, adopting its shape and reusing the
    /// existing storage where capacity allows.
    pub fn copy_from(&mut self, src: &Tensor) {
        let data = self.data_mut();
        data.clear();
        data.extend_from_slice(src.as_slice());
        if !self.shape.same_as(&src.shape) {
            self.shape = src.shape.clone();
        }
    }

    /// Extracts the `i`-th sub-tensor along the first axis.
    ///
    /// For a `[n, ...rest]` tensor this returns a `[...rest]` tensor copied out
    /// of row `i`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfBounds`] if `i` is out of range or the
    /// tensor is 0-d.
    pub fn index_axis0(&self, i: usize) -> Result<Tensor, TensorError> {
        if self.ndim() == 0 || i >= self.dims()[0] {
            return Err(TensorError::IndexOutOfBounds {
                index: vec![i],
                shape: self.dims().to_vec(),
            });
        }
        let rest: Vec<usize> = self.dims()[1..].to_vec();
        let chunk = rest.iter().product::<usize>().max(1);
        let data = self.as_slice()[i * chunk..(i + 1) * chunk].to_vec();
        Tensor::from_vec(data, &rest)
    }

    /// Stacks tensors of identical shape along a new leading axis.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidShape`] if `items` is empty and
    /// [`TensorError::ShapeMismatch`] if any item disagrees with the first.
    pub fn stack(items: &[Tensor]) -> Result<Tensor, TensorError> {
        let first = items.first().ok_or(TensorError::InvalidShape(vec![]))?;
        let mut data = Vec::with_capacity(first.numel() * items.len());
        for item in items {
            if !item.shape.same_as(&first.shape) {
                return Err(TensorError::ShapeMismatch {
                    left: first.dims().to_vec(),
                    right: item.dims().to_vec(),
                });
            }
            data.extend_from_slice(item.as_slice());
        }
        let mut dims = vec![items.len()];
        dims.extend_from_slice(first.dims());
        Tensor::from_vec(data, &dims)
    }

    /// Returns the squared L2 norm of the tensor.
    pub fn sq_norm(&self) -> f32 {
        self.as_slice().iter().map(|v| v * v).sum()
    }

    /// Returns `true` if every element is finite (not NaN or infinite).
    pub fn is_finite(&self) -> bool {
        self.as_slice().iter().all(|v| v.is_finite())
    }
}

/// im2col for a single image in `[channels, height, width]` layout.
///
/// Produces a `[channels * kh * kw, out_h * out_w]` matrix where each column is
/// the receptive field of one output position, so a convolution becomes a
/// single matrix multiplication with a `[out_channels, channels * kh * kw]`
/// weight matrix.
///
/// # Errors
///
/// Returns [`TensorError::InvalidShape`] if `image` is not 3-D or the kernel
/// configuration produces no output positions.
pub fn im2col(
    image: &Tensor,
    kernel: (usize, usize),
    stride: usize,
    padding: usize,
) -> Result<Tensor, TensorError> {
    if image.ndim() != 3 {
        return Err(TensorError::InvalidShape(image.dims().to_vec()));
    }
    let (c, h, w) = (image.dims()[0], image.dims()[1], image.dims()[2]);
    let (kh, kw) = kernel;
    let (out_h, out_w) = conv_output_size((h, w), kernel, stride, padding)?;
    let mut out = vec![0.0f32; c * kh * kw * out_h * out_w];
    im2col_into(
        image.as_slice(),
        (c, h, w),
        kernel,
        stride,
        padding,
        &mut out,
    )?;
    Tensor::from_vec(out, &[c * kh * kw, out_h * out_w])
}

/// Allocation-free core of [`im2col`]: lowers an image given as a raw
/// `[channels, height, width]` slice into a caller-provided
/// `[channels · kh · kw, out_h · out_w]` buffer.
///
/// Every element of `out` is overwritten, so the buffer does not need to be
/// zeroed beforehand (padding positions are written as `0.0`).
///
/// # Errors
///
/// Returns [`TensorError::InvalidShape`] if `image` does not match
/// `image_dims`, the kernel does not fit, or `out` has the wrong length.
pub fn im2col_into(
    image: &[f32],
    image_dims: (usize, usize, usize),
    kernel: (usize, usize),
    stride: usize,
    padding: usize,
    out: &mut [f32],
) -> Result<(), TensorError> {
    let (c, h, w) = image_dims;
    let (kh, kw) = kernel;
    let (out_h, out_w) = conv_output_size((h, w), kernel, stride, padding)?;
    if image.len() != c * h * w {
        return Err(TensorError::LengthMismatch {
            expected: c * h * w,
            actual: image.len(),
        });
    }
    if out.len() != c * kh * kw * out_h * out_w {
        return Err(TensorError::LengthMismatch {
            expected: c * kh * kw * out_h * out_w,
            actual: out.len(),
        });
    }
    let cols = out_h * out_w;
    for ch in 0..c {
        for ky in 0..kh {
            for kx in 0..kw {
                let row = (ch * kh + ky) * kw + kx;
                for oy in 0..out_h {
                    let iy = (oy * stride + ky) as isize - padding as isize;
                    let out_row = &mut out[row * cols + oy * out_w..row * cols + (oy + 1) * out_w];
                    if iy < 0 || iy >= h as isize {
                        out_row.fill(0.0);
                        continue;
                    }
                    let src_row =
                        &image[(ch * h + iy as usize) * w..(ch * h + iy as usize + 1) * w];
                    if stride == 1 {
                        // Contiguous fast path: one bounds computation, then a
                        // straight copy of the in-image span.
                        let ix0 = kx as isize - padding as isize;
                        let start = (-ix0).clamp(0, out_w as isize) as usize;
                        let end = ((w as isize - ix0).clamp(0, out_w as isize) as usize).max(start);
                        out_row[..start].fill(0.0);
                        out_row[end..].fill(0.0);
                        let src0 = (ix0 + start as isize) as usize;
                        out_row[start..end].copy_from_slice(&src_row[src0..src0 + (end - start)]);
                    } else {
                        for (ox, o) in out_row.iter_mut().enumerate() {
                            let ix = (ox * stride + kx) as isize - padding as isize;
                            *o = if ix >= 0 && ix < w as isize {
                                src_row[ix as usize]
                            } else {
                                0.0
                            };
                        }
                    }
                }
            }
        }
    }
    Ok(())
}

/// Inverse of [`im2col`]: scatters a `[channels * kh * kw, out_h * out_w]`
/// matrix of column gradients back onto an image of shape
/// `[channels, height, width]`, summing overlapping contributions.
///
/// # Errors
///
/// Returns [`TensorError::InvalidShape`] if `cols` does not have the shape
/// implied by the image/kernel configuration.
pub fn col2im(
    cols: &Tensor,
    image_dims: (usize, usize, usize),
    kernel: (usize, usize),
    stride: usize,
    padding: usize,
) -> Result<Tensor, TensorError> {
    let (c, h, w) = image_dims;
    let (kh, kw) = kernel;
    let (out_h, out_w) = conv_output_size((h, w), kernel, stride, padding)?;
    if cols.ndim() != 2 || cols.dims()[0] != c * kh * kw || cols.dims()[1] != out_h * out_w {
        return Err(TensorError::InvalidShape(cols.dims().to_vec()));
    }
    let mut out = vec![0.0f32; c * h * w];
    col2im_into(
        cols.as_slice(),
        image_dims,
        kernel,
        stride,
        padding,
        &mut out,
    )?;
    Tensor::from_vec(out, &[c, h, w])
}

/// Allocation-free core of [`col2im`]: scatters a
/// `[channels · kh · kw, out_h · out_w]` column-gradient slice back onto a
/// caller-provided image buffer, summing overlapping contributions.
///
/// `out` is zero-filled first, so the buffer does not need to be cleared by
/// the caller.
///
/// # Errors
///
/// Returns [`TensorError::InvalidShape`] if the kernel configuration is
/// invalid and [`TensorError::LengthMismatch`] if a slice length disagrees
/// with the configuration.
pub fn col2im_into(
    cols: &[f32],
    image_dims: (usize, usize, usize),
    kernel: (usize, usize),
    stride: usize,
    padding: usize,
    out: &mut [f32],
) -> Result<(), TensorError> {
    let (c, h, w) = image_dims;
    let (kh, kw) = kernel;
    let (out_h, out_w) = conv_output_size((h, w), kernel, stride, padding)?;
    if cols.len() != c * kh * kw * out_h * out_w {
        return Err(TensorError::LengthMismatch {
            expected: c * kh * kw * out_h * out_w,
            actual: cols.len(),
        });
    }
    if out.len() != c * h * w {
        return Err(TensorError::LengthMismatch {
            expected: c * h * w,
            actual: out.len(),
        });
    }
    out.fill(0.0);
    let ncols = out_h * out_w;
    for ch in 0..c {
        for ky in 0..kh {
            for kx in 0..kw {
                let row = (ch * kh + ky) * kw + kx;
                for oy in 0..out_h {
                    let iy = (oy * stride + ky) as isize - padding as isize;
                    if iy < 0 || iy >= h as isize {
                        continue;
                    }
                    let col_row = &cols[row * ncols + oy * out_w..row * ncols + (oy + 1) * out_w];
                    let dst_row =
                        &mut out[(ch * h + iy as usize) * w..(ch * h + iy as usize + 1) * w];
                    for (ox, &v) in col_row.iter().enumerate() {
                        let ix = (ox * stride + kx) as isize - padding as isize;
                        if ix >= 0 && ix < w as isize {
                            dst_row[ix as usize] += v;
                        }
                    }
                }
            }
        }
    }
    Ok(())
}

/// Computes the spatial output size of a convolution or pooling window.
///
/// # Errors
///
/// Returns [`TensorError::InvalidShape`] if the window does not fit the padded
/// input at least once or `stride == 0`.
pub fn conv_output_size(
    input: (usize, usize),
    kernel: (usize, usize),
    stride: usize,
    padding: usize,
) -> Result<(usize, usize), TensorError> {
    let (h, w) = input;
    let (kh, kw) = kernel;
    if stride == 0 || h + 2 * padding < kh || w + 2 * padding < kw {
        return Err(TensorError::InvalidShape(vec![
            h, w, kh, kw, stride, padding,
        ]));
    }
    Ok((
        (h + 2 * padding - kh) / stride + 1,
        (w + 2 * padding - kw) / stride + 1,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_fill_values() {
        assert!(Tensor::zeros(&[2, 2]).as_slice().iter().all(|&v| v == 0.0));
        assert!(Tensor::ones(&[3]).as_slice().iter().all(|&v| v == 1.0));
        assert_eq!(Tensor::full(&[2], 7.5).as_slice(), &[7.5, 7.5]);
        assert_eq!(Tensor::scalar(3.0).numel(), 1);
    }

    #[test]
    fn from_vec_validates_length() {
        assert!(Tensor::from_vec(vec![1.0, 2.0], &[3]).is_err());
        assert!(Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]).is_ok());
    }

    #[derive(Debug)]
    struct VecSlab(Vec<f32>);

    impl F32Slab for VecSlab {
        fn as_f32(&self) -> &[f32] {
            &self.0
        }
    }

    #[test]
    fn shared_tensors_alias_the_slab_until_written() {
        let slab: Arc<dyn F32Slab> = Arc::new(VecSlab((0..8).map(|v| v as f32).collect()));
        let t = Tensor::from_shared(Arc::clone(&slab), 2, &[2, 3]).unwrap();
        assert!(t.is_shared());
        assert_eq!(t.as_slice(), &[2.0, 3.0, 4.0, 5.0, 6.0, 7.0]);
        assert_eq!(t.numel(), 6);

        // Cloning shares the same slab memory: identical base pointers.
        let c = t.clone();
        assert!(c.is_shared());
        assert_eq!(c.as_slice().as_ptr(), t.as_slice().as_ptr());

        // Mutation copies out (copy-on-write); the slab stays untouched.
        let mut m = t.clone();
        m.as_mut_slice()[0] = 99.0;
        assert!(!m.is_shared());
        assert_eq!(m.as_slice()[0], 99.0);
        assert_eq!(t.as_slice()[0], 2.0);
        assert_eq!(slab.as_f32()[2], 2.0);
    }

    #[test]
    fn from_shared_rejects_out_of_slab_windows() {
        let slab: Arc<dyn F32Slab> = Arc::new(VecSlab(vec![0.0; 4]));
        assert!(Tensor::from_shared(Arc::clone(&slab), 0, &[4]).is_ok());
        assert!(Tensor::from_shared(Arc::clone(&slab), 1, &[4]).is_err());
        assert!(Tensor::from_shared(Arc::clone(&slab), usize::MAX, &[2]).is_err());
    }

    #[test]
    fn shared_tensors_compare_and_reduce_like_owned() {
        let slab: Arc<dyn F32Slab> = Arc::new(VecSlab(vec![1.0, -2.0, 3.0, 0.5]));
        let shared = Tensor::from_shared(slab, 0, &[4]).unwrap();
        let owned = Tensor::from_vec(vec![1.0, -2.0, 3.0, 0.5], &[4]).unwrap();
        assert_eq!(shared, owned);
        assert_eq!(shared.sum(), owned.sum());
        assert_eq!(shared.argmax(), owned.argmax());
        assert_eq!(shared.clone().into_vec(), owned.as_slice());
    }

    #[test]
    fn eye_is_identity() {
        let i = Tensor::eye(3);
        let x = Tensor::from_vec((1..=9).map(|v| v as f32).collect(), &[3, 3]).unwrap();
        assert_eq!(x.matmul(&i).unwrap(), x);
        assert_eq!(i.matmul(&x).unwrap(), x);
    }

    #[test]
    fn get_set_roundtrip() {
        let mut t = Tensor::zeros(&[2, 3]);
        t.set(&[1, 2], 5.0).unwrap();
        assert_eq!(t.get(&[1, 2]).unwrap(), 5.0);
        assert_eq!(t.get(&[0, 0]).unwrap(), 0.0);
        assert!(t.get(&[2, 0]).is_err());
    }

    #[test]
    fn elementwise_arithmetic() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]).unwrap();
        let b = Tensor::from_vec(vec![4.0, 5.0, 6.0], &[3]).unwrap();
        assert_eq!(a.add(&b).unwrap().as_slice(), &[5.0, 7.0, 9.0]);
        assert_eq!(b.sub(&a).unwrap().as_slice(), &[3.0, 3.0, 3.0]);
        assert_eq!(a.mul(&b).unwrap().as_slice(), &[4.0, 10.0, 18.0]);
        assert_eq!(b.div(&a).unwrap().as_slice(), &[4.0, 2.5, 2.0]);
        assert_eq!(a.add_scalar(1.0).as_slice(), &[2.0, 3.0, 4.0]);
        assert_eq!(a.mul_scalar(2.0).as_slice(), &[2.0, 4.0, 6.0]);
    }

    #[test]
    fn elementwise_shape_mismatch_errors() {
        let a = Tensor::zeros(&[2]);
        let b = Tensor::zeros(&[3]);
        assert!(a.add(&b).is_err());
        assert!(a.mul(&b).is_err());
        let mut c = Tensor::zeros(&[2]);
        assert!(c.add_assign(&b).is_err());
        assert!(c.add_scaled_assign(&b, 1.0).is_err());
    }

    #[test]
    fn add_assign_and_axpy() {
        let mut a = Tensor::from_vec(vec![1.0, 1.0], &[2]).unwrap();
        let b = Tensor::from_vec(vec![2.0, 3.0], &[2]).unwrap();
        a.add_assign(&b).unwrap();
        assert_eq!(a.as_slice(), &[3.0, 4.0]);
        a.add_scaled_assign(&b, -1.0).unwrap();
        assert_eq!(a.as_slice(), &[1.0, 1.0]);
    }

    #[test]
    fn matmul_known_product() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]).unwrap();
        let b = Tensor::from_vec(vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0], &[3, 2]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.dims(), &[2, 2]);
        assert_eq!(c.as_slice(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_rejects_bad_shapes() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[2, 3]);
        assert!(a.matmul(&b).is_err());
        let v = Tensor::zeros(&[3]);
        assert!(a.matmul(&v).is_err());
    }

    #[test]
    fn matmul_tn_matches_explicit_transpose() {
        let a = Tensor::from_vec((0..12).map(|v| v as f32).collect(), &[4, 3]).unwrap();
        let b = Tensor::from_vec((0..8).map(|v| v as f32 * 0.5).collect(), &[4, 2]).unwrap();
        let expected = a.transpose().unwrap().matmul(&b).unwrap();
        assert_eq!(a.matmul_tn(&b).unwrap(), expected);
    }

    #[test]
    fn matmul_nt_matches_explicit_transpose() {
        let a = Tensor::from_vec((0..12).map(|v| v as f32).collect(), &[3, 4]).unwrap();
        let b = Tensor::from_vec((0..8).map(|v| v as f32 * 0.25).collect(), &[2, 4]).unwrap();
        let expected = a.matmul(&b.transpose().unwrap()).unwrap();
        assert_eq!(a.matmul_nt(&b).unwrap(), expected);
    }

    #[test]
    fn large_matmul_uses_threads_and_matches_serial() {
        // Big enough to cross PARALLEL_MATMUL_THRESHOLD.
        let m = 128;
        let k = 96;
        let n = 128;
        let a =
            Tensor::from_vec((0..m * k).map(|v| (v % 17) as f32 * 0.1).collect(), &[m, k]).unwrap();
        let b =
            Tensor::from_vec((0..k * n).map(|v| (v % 13) as f32 * 0.2).collect(), &[k, n]).unwrap();
        let c = a.matmul(&b).unwrap();
        // Spot-check a few entries against a direct dot product.
        for &(i, j) in &[(0usize, 0usize), (m - 1, n - 1), (37, 59)] {
            let mut acc = 0.0f32;
            for p in 0..k {
                acc += a.as_slice()[i * k + p] * b.as_slice()[p * n + j];
            }
            let got = c.as_slice()[i * n + j];
            assert!(
                (acc - got).abs() < 1e-3,
                "mismatch at ({i},{j}): {acc} vs {got}"
            );
        }
    }

    #[test]
    fn matmul_propagates_nan_through_zero_lhs() {
        // Regression: the old scalar kernel skipped a == 0.0 entries in the
        // inner loop, so a NaN (or Inf) in `b` multiplied by an exact zero in
        // `a` was silently dropped. IEEE 754 requires 0 · NaN = NaN.
        let a = Tensor::from_vec(vec![0.0, 0.0], &[1, 2]).unwrap();
        let b = Tensor::from_vec(vec![f32::NAN, f32::INFINITY], &[2, 1]).unwrap();
        assert!(a.matmul(&b).unwrap().as_slice()[0].is_nan());

        let at = Tensor::from_vec(vec![0.0, 0.0], &[2, 1]).unwrap();
        assert!(at.matmul_tn(&b).unwrap().as_slice()[0].is_nan());

        let bt = Tensor::from_vec(vec![f32::NAN, f32::INFINITY], &[1, 2]).unwrap();
        assert!(a.matmul_nt(&bt).unwrap().as_slice()[0].is_nan());
    }

    /// Scalar triple-loop reference for the parity property tests.
    fn naive_matmul(a: &Tensor, b: &Tensor) -> Tensor {
        let (m, k) = (a.dims()[0], a.dims()[1]);
        let n = b.dims()[1];
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                let mut s = 0.0f32;
                for p in 0..k {
                    s += a.as_slice()[i * k + p] * b.as_slice()[p * n + j];
                }
                out[i * n + j] = s;
            }
        }
        Tensor::from_vec(out, &[m, n]).unwrap()
    }

    fn ramp(dims: &[usize], scale: f32) -> Tensor {
        let numel: usize = dims.iter().product();
        Tensor::from_vec(
            (0..numel)
                .map(|v| ((v * 2_654_435_761) % 1000) as f32 * scale - 1.0)
                .collect(),
            dims,
        )
        .unwrap()
    }

    #[test]
    fn blocked_kernel_parity_on_odd_and_prime_shapes() {
        for &(m, k, n) in &[
            (1, 1, 1),
            (3, 7, 5),
            (64, 64, 64),
            (13, 1, 29),
            (65, 129, 67),
            (2, 300, 3),
        ] {
            let a = ramp(&[m, k], 2e-3);
            let b = ramp(&[k, n], 3e-3);
            let got = a.matmul(&b).unwrap();
            let expected = naive_matmul(&a, &b);
            for (g, e) in got.as_slice().iter().zip(expected.as_slice()) {
                assert!(
                    (g - e).abs() <= 1e-4 * (1.0 + e.abs()),
                    "{m}x{k}x{n}: {g} vs {e}"
                );
            }
            // Transposed variants against their materialised-transpose
            // definitions on the same shapes.
            let tn = a.transpose().unwrap().matmul_tn(&b).unwrap();
            for (g, e) in tn.as_slice().iter().zip(expected.as_slice()) {
                assert!(
                    (g - e).abs() <= 1e-4 * (1.0 + e.abs()),
                    "tn {m}x{k}x{n}: {g} vs {e}"
                );
            }
            let nt = a.matmul_nt(&b.transpose().unwrap()).unwrap();
            for (g, e) in nt.as_slice().iter().zip(expected.as_slice()) {
                assert!(
                    (g - e).abs() <= 1e-4 * (1.0 + e.abs()),
                    "nt {m}x{k}x{n}: {g} vs {e}"
                );
            }
        }
    }

    #[test]
    fn ensure_shape_reuses_storage() {
        let mut t = Tensor::zeros(&[8, 8]);
        t.ensure_shape(&[4, 4]);
        assert_eq!(t.dims(), &[4, 4]);
        assert_eq!(t.numel(), 16);
        t.ensure_shape(&[8, 8]);
        assert_eq!(t.numel(), 64);
    }

    #[test]
    fn copy_from_adopts_shape_and_contents() {
        let src = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]).unwrap();
        let mut dst = Tensor::zeros(&[10]);
        dst.copy_from(&src);
        assert_eq!(dst, src);
    }

    #[test]
    fn into_variants_validate_lengths() {
        let mut small = vec![0.0f32; 3];
        assert!(im2col_into(&[1.0; 4], (1, 2, 2), (1, 1), 1, 0, &mut small).is_err());
        assert!(col2im_into(&[1.0; 4], (1, 2, 2), (1, 1), 1, 0, &mut small).is_err());
    }

    #[test]
    fn transpose_swaps_axes() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]).unwrap();
        let t = a.transpose().unwrap();
        assert_eq!(t.dims(), &[3, 2]);
        assert_eq!(t.as_slice(), &[1.0, 4.0, 2.0, 5.0, 3.0, 6.0]);
    }

    #[test]
    fn reductions() {
        let a = Tensor::from_vec(vec![1.0, -2.0, 3.0, 0.5], &[4]).unwrap();
        assert_eq!(a.sum(), 2.5);
        assert_eq!(a.mean(), 0.625);
        assert_eq!(a.max(), 3.0);
        assert_eq!(a.min(), -2.0);
        assert_eq!(a.argmax(), Some(2));
        assert_eq!(a.sq_norm(), 1.0 + 4.0 + 9.0 + 0.25);
    }

    #[test]
    fn argmax_rows_per_row() {
        let a = Tensor::from_vec(vec![0.1, 0.9, 0.0, 0.7, 0.2, 0.1], &[2, 3]).unwrap();
        assert_eq!(a.argmax_rows().unwrap(), vec![1, 0]);
        assert!(Tensor::zeros(&[3]).argmax_rows().is_err());
    }

    #[test]
    fn sum_axis0_sums_rows() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
        assert_eq!(a.sum_axis0().unwrap().as_slice(), &[4.0, 6.0]);
    }

    #[test]
    fn reshape_preserves_data() {
        let a = Tensor::from_vec((0..6).map(|v| v as f32).collect(), &[2, 3]).unwrap();
        let b = a.reshape(&[3, 2]).unwrap();
        assert_eq!(b.dims(), &[3, 2]);
        assert_eq!(b.as_slice(), a.as_slice());
        assert!(a.reshape(&[4]).is_err());
        let mut c = a.clone();
        c.reshape_in_place(&[6]).unwrap();
        assert_eq!(c.dims(), &[6]);
        assert!(c.reshape_in_place(&[7]).is_err());
    }

    #[test]
    fn index_axis0_extracts_rows() {
        let a = Tensor::from_vec((0..6).map(|v| v as f32).collect(), &[3, 2]).unwrap();
        assert_eq!(a.index_axis0(1).unwrap().as_slice(), &[2.0, 3.0]);
        assert!(a.index_axis0(3).is_err());
    }

    #[test]
    fn stack_builds_batch() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[2]).unwrap();
        let b = Tensor::from_vec(vec![3.0, 4.0], &[2]).unwrap();
        let s = Tensor::stack(&[a.clone(), b]).unwrap();
        assert_eq!(s.dims(), &[2, 2]);
        assert_eq!(s.index_axis0(0).unwrap(), a);
        assert!(Tensor::stack(&[]).is_err());
        let c = Tensor::zeros(&[3]);
        assert!(Tensor::stack(&[a, c]).is_err());
    }

    #[test]
    fn map_and_zip_map() {
        let a = Tensor::from_vec(vec![-1.0, 2.0], &[2]).unwrap();
        assert_eq!(a.map(f32::abs).as_slice(), &[1.0, 2.0]);
        let mut b = a.clone();
        b.map_in_place(|v| v * 10.0);
        assert_eq!(b.as_slice(), &[-10.0, 20.0]);
        let z = a.zip_map(&b, |x, y| x + y).unwrap();
        assert_eq!(z.as_slice(), &[-11.0, 22.0]);
    }

    #[test]
    fn conv_output_size_formula() {
        assert_eq!(conv_output_size((32, 32), (3, 3), 1, 1).unwrap(), (32, 32));
        assert_eq!(conv_output_size((32, 32), (2, 2), 2, 0).unwrap(), (16, 16));
        assert_eq!(conv_output_size((5, 5), (3, 3), 2, 0).unwrap(), (2, 2));
        assert!(conv_output_size((2, 2), (3, 3), 1, 0).is_err());
        assert!(conv_output_size((4, 4), (3, 3), 0, 0).is_err());
    }

    #[test]
    fn im2col_identity_kernel() {
        // A 1x1 kernel with stride 1 and no padding is just a reshape.
        let img = Tensor::from_vec((0..12).map(|v| v as f32).collect(), &[3, 2, 2]).unwrap();
        let cols = im2col(&img, (1, 1), 1, 0).unwrap();
        assert_eq!(cols.dims(), &[3, 4]);
        assert_eq!(cols.as_slice(), img.as_slice());
    }

    #[test]
    fn im2col_known_values() {
        // Single channel 3x3 image, 2x2 kernel, stride 1, no padding.
        let img = Tensor::from_vec((1..=9).map(|v| v as f32).collect(), &[1, 3, 3]).unwrap();
        let cols = im2col(&img, (2, 2), 1, 0).unwrap();
        assert_eq!(cols.dims(), &[4, 4]);
        // Columns are the four 2x2 patches in row-major output order.
        let expect = vec![
            1.0, 2.0, 4.0, 5.0, // kernel position (0,0)
            2.0, 3.0, 5.0, 6.0, // kernel position (0,1)
            4.0, 5.0, 7.0, 8.0, // kernel position (1,0)
            5.0, 6.0, 8.0, 9.0, // kernel position (1,1)
        ];
        assert_eq!(cols.as_slice(), expect.as_slice());
    }

    #[test]
    fn im2col_padding_zero_fills() {
        let img = Tensor::ones(&[1, 2, 2]);
        let cols = im2col(&img, (3, 3), 1, 1).unwrap();
        assert_eq!(cols.dims(), &[9, 4]);
        // Centre kernel tap always hits the image; corner taps hit padding.
        let total: f32 = cols.as_slice().iter().sum();
        assert_eq!(total, 16.0); // each of the 4 ones appears in 4 of the 9 taps
    }

    #[test]
    fn col2im_is_adjoint_of_im2col_for_disjoint_patches() {
        // With stride equal to kernel size the patches are disjoint, so
        // col2im(im2col(x)) == x exactly.
        let img = Tensor::from_vec((0..16).map(|v| v as f32).collect(), &[1, 4, 4]).unwrap();
        let cols = im2col(&img, (2, 2), 2, 0).unwrap();
        let back = col2im(&cols, (1, 4, 4), (2, 2), 2, 0).unwrap();
        assert_eq!(back, img);
    }

    #[test]
    fn col2im_accumulates_overlaps() {
        let img = Tensor::ones(&[1, 3, 3]);
        let cols = im2col(&img, (2, 2), 1, 0).unwrap();
        let back = col2im(&cols, (1, 3, 3), (2, 2), 1, 0).unwrap();
        // The centre pixel participates in all four patches.
        assert_eq!(back.get(&[0, 1, 1]).unwrap(), 4.0);
        // Corners participate in exactly one patch.
        assert_eq!(back.get(&[0, 0, 0]).unwrap(), 1.0);
    }

    #[test]
    fn col2im_rejects_wrong_shapes() {
        let cols = Tensor::zeros(&[4, 5]);
        assert!(col2im(&cols, (1, 3, 3), (2, 2), 1, 0).is_err());
    }

    #[test]
    fn is_finite_detects_nan() {
        let mut t = Tensor::ones(&[2]);
        assert!(t.is_finite());
        t.as_mut_slice()[0] = f32::NAN;
        assert!(!t.is_finite());
    }

    #[test]
    fn debug_output_is_compact() {
        let t = Tensor::zeros(&[100]);
        let s = format!("{t:?}");
        assert!(s.contains("numel"));
        assert!(s.len() < 300);
    }
}
