//! Cache-blocked, panel-packed matrix-multiplication kernels.
//!
//! This module implements the GEBP (general block-times-panel) decomposition
//! used by high-performance BLAS libraries, specialised to row-major `f32`:
//!
//! * the operand matrices are processed in `MC × KC` blocks of `A` and
//!   `KC × NC` panels of `B`, sized so the packed `A` block lives in L2 and
//!   the packed `B` panel streams through L3,
//! * both operands are **packed** into contiguous micro-tile layouts
//!   (`MR`-row tiles of `A`, `NR`-column tiles of `B`) so the inner loop reads
//!   memory strictly sequentially regardless of the logical layout
//!   (normal, transposed-A or transposed-B),
//! * the micro-kernel keeps an `MR × NR` accumulator block entirely in
//!   registers, turning the classic axpy-style inner loop (2 memory ops per
//!   FMA) into register-resident FMAs (2 loads per `MR × NR` tile update).
//!
//! The same packed micro-kernel serves `A·B`, `Aᵀ·B` and `A·Bᵀ`; only the
//! pack routines differ, so the transposed variants no longer materialise a
//! transposed copy (and no variant special-cases zero elements — `0 · NaN`
//! must stay `NaN`, which the old scalar kernel got wrong).
//!
//! Large products are additionally split row-wise across scoped threads; each
//! thread runs the full blocked loop nest over its row range with its own
//! pack buffers, so no synchronisation is needed beyond the final join.
//! Callers that parallelise at a coarser level (e.g. trial-parallel fault
//! campaigns) wrap their per-worker code in [`serial_scope`] so the kernel
//! does not oversubscribe the machine with nested thread fan-out.
//!
//! Pack buffers are cached in thread-local storage: repeated multiplications
//! from the same long-lived thread — the single-thread path that
//! convolution/linear layers and `serial_scope` workers hit — perform
//! **zero heap allocations** after warm-up. The row-parallel path spawns
//! fresh scoped threads per call, so its workers pack into newly allocated
//! buffers each time; that cost is amortised by the `PARALLEL_THRESHOLD`-sized
//! work it fans out over.

use std::cell::{Cell, RefCell};

/// Rows per micro-tile of `A` (accumulator height).
pub const MR: usize = 4;
/// Columns per micro-tile of `B` (accumulator width; two AVX2 vectors).
pub const NR: usize = 16;
/// Rows of `A` packed per block (sized for L2 residency: `MC·KC` floats).
const MC: usize = 64;
/// Shared-dimension depth packed per block (sized for L1-friendly tiles).
const KC: usize = 256;
/// Columns of `B` packed per panel (sized so the panel streams through L3).
const NC: usize = 512;

/// Minimum `m·k·n` before the kernel spreads row-blocks across threads.
///
/// Lower than the old scalar kernel's `1 << 20`: the packed micro-kernel
/// saturates a core's FMA pipes, so the per-thread fixed cost is amortised
/// sooner.
const PARALLEL_THRESHOLD: usize = 1 << 18;

/// Maximum `m·k·n` handled by the unpacked direct kernel (≈ 64³: below this
/// the operands sit in L1/L2 anyway and packing is pure overhead).
const DIRECT_THRESHOLD: usize = 1 << 18;

/// Operand layout of a product `C[m,n] = op(A) · op(B)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Layout {
    /// `A[m,k] · B[k,n]`.
    Nn,
    /// `A[k,m]ᵀ · B[k,n]` (transposed left operand, not materialised).
    Tn,
    /// `A[m,k] · B[n,k]ᵀ` (transposed right operand, not materialised).
    Nt,
}

thread_local! {
    /// Per-thread pack buffers: `(packed A block, packed B panel)`.
    ///
    /// Reused across calls so steady-state multiplications allocate nothing.
    static PACK_BUFFERS: RefCell<(Vec<f32>, Vec<f32>)> =
        const { RefCell::new((Vec::new(), Vec::new())) };

    /// When set, [`matmul_into`] never spawns threads on this thread.
    static FORCE_SERIAL: Cell<bool> = const { Cell::new(false) };
}

/// Runs `f` with the kernel's internal row-parallelism disabled on this
/// thread.
///
/// Use this inside worker threads of a coarser parallel decomposition (one
/// worker per core already exists, so nested matmul fan-out would
/// oversubscribe the machine to ~cores² threads). Results are unaffected —
/// the threaded split is bit-identical to the serial loop — only the
/// scheduling changes. The flag is thread-local and restored on exit, so
/// nesting and panics are safe.
pub fn serial_scope<R>(f: impl FnOnce() -> R) -> R {
    struct Reset(bool);
    impl Drop for Reset {
        fn drop(&mut self) {
            FORCE_SERIAL.with(|flag| flag.set(self.0));
        }
    }
    let _reset = Reset(FORCE_SERIAL.with(|flag| flag.replace(true)));
    f()
}

/// Whether a [`serial_scope`] on this thread currently disables kernel
/// thread fan-out (shared with the reduced-precision kernels in
/// [`crate::simd`]).
pub(crate) fn serial_forced() -> bool {
    FORCE_SERIAL.with(Cell::get)
}

/// Computes `out[m,n] = op(a) · op(b)` (or `out += …` when `accumulate`).
///
/// Slice lengths must match the layout: `a` is `m·k` elements (`k·m` for
/// [`Layout::Tn`]), `b` is `k·n` (`n·k` for [`Layout::Nt`]) and `out` is
/// `m·n`. All slices are dense row-major.
///
/// # Panics
///
/// Panics if a slice length disagrees with the dimensions (the `Tensor`
/// wrappers validate shapes and report typed errors instead).
#[allow(clippy::too_many_arguments)]
pub fn matmul_into(
    layout: Layout,
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    accumulate: bool,
) {
    assert_eq!(a.len(), m * k, "lhs length");
    assert_eq!(b.len(), k * n, "rhs length");
    assert_eq!(out.len(), m * n, "out length");
    if m == 0 || n == 0 {
        return;
    }
    if k == 0 {
        if !accumulate {
            out.fill(0.0);
        }
        return;
    }
    // Small products: packing overhead outweighs the cache benefit (the
    // whole working set already fits in L1/L2), so run an unpacked
    // vectorised loop instead. `Nt` always packs — its inner dimension is a
    // strided gather that defeats autovectorisation without packing.
    if m * n * k <= DIRECT_THRESHOLD && layout != Layout::Nt {
        direct_kernel(layout, a, b, out, m, k, n, accumulate);
        return;
    }
    let threads = if m * n * k >= PARALLEL_THRESHOLD && !FORCE_SERIAL.with(Cell::get) {
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
            .min(m)
    } else {
        1
    };
    if threads <= 1 {
        gebp(layout, a, b, out, 0, m, k, n, accumulate);
        return;
    }
    // Partition rows into contiguous chunks, one scoped thread per chunk.
    // Each thread writes a disjoint slice of `out`, so the split is the only
    // synchronisation needed.
    let rows_per = m.div_ceil(threads);
    std::thread::scope(|scope| {
        let mut remaining = out;
        let mut row_start = 0usize;
        while row_start < m {
            let rows = rows_per.min(m - row_start);
            let (chunk, rest) = remaining.split_at_mut(rows * n);
            remaining = rest;
            let start = row_start;
            scope.spawn(move || {
                gebp(layout, a, b, chunk, start, rows, k, n, accumulate);
            });
            row_start += rows;
        }
    });
}

/// Unpacked kernel for small products: an axpy-style row loop (`Nn`) or
/// depth loop (`Tn`) whose inner updates autovectorise, with no zero-skip
/// branch and no packing traffic.
#[allow(clippy::too_many_arguments)]
fn direct_kernel(
    layout: Layout,
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    accumulate: bool,
) {
    if !accumulate {
        out.fill(0.0);
    }
    match layout {
        Layout::Nn => {
            for i in 0..m {
                let a_row = &a[i * k..(i + 1) * k];
                let out_row = &mut out[i * n..(i + 1) * n];
                for (p, &av) in a_row.iter().enumerate() {
                    let b_row = &b[p * n..(p + 1) * n];
                    for (o, &bv) in out_row.iter_mut().zip(b_row) {
                        *o = av.mul_add(bv, *o);
                    }
                }
            }
        }
        Layout::Tn => {
            // A is [k, m]: walk the shared dimension outermost so both A and
            // B rows are read contiguously.
            for p in 0..k {
                let a_row = &a[p * m..(p + 1) * m];
                let b_row = &b[p * n..(p + 1) * n];
                for (i, &av) in a_row.iter().enumerate() {
                    let out_row = &mut out[i * n..(i + 1) * n];
                    for (o, &bv) in out_row.iter_mut().zip(b_row) {
                        *o = av.mul_add(bv, *o);
                    }
                }
            }
        }
        Layout::Nt => unreachable!("Nt always takes the packed path"),
    }
}

/// Blocked loop nest over the row range `[row_start, row_start + rows)`,
/// writing into `out` indexed from `row_start` (i.e. `out` holds `rows · n`
/// elements).
#[allow(clippy::too_many_arguments)]
fn gebp(
    layout: Layout,
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    row_start: usize,
    rows: usize,
    k: usize,
    n: usize,
    accumulate: bool,
) {
    // Logical row count of op(A): a.len() is m·k for every layout.
    let m_total = a.len() / k;
    debug_assert!(row_start + rows <= m_total);
    PACK_BUFFERS.with(|cell| {
        let (apack, bpack) = &mut *cell.borrow_mut();
        apack.resize(MC.next_multiple_of(MR) * KC, 0.0);
        bpack.resize(KC * NC.next_multiple_of(NR), 0.0);
        for jc in (0..n).step_by(NC) {
            let nc = NC.min(n - jc);
            let j_tiles = nc.div_ceil(NR);
            for pc in (0..k).step_by(KC) {
                let kc = KC.min(k - pc);
                pack_b(layout, b, bpack, pc, kc, jc, nc, k, n);
                let first_panel = pc == 0 && !accumulate;
                for ic in (0..rows).step_by(MC) {
                    let mc = MC.min(rows - ic);
                    let i_tiles = mc.div_ceil(MR);
                    pack_a(layout, a, apack, row_start + ic, mc, pc, kc, m_total, k);
                    for jt in 0..j_tiles {
                        let bp = &bpack[jt * kc * NR..(jt + 1) * kc * NR];
                        for it in 0..i_tiles {
                            let ap = &apack[it * kc * MR..(it + 1) * kc * MR];
                            let mut acc = [[0.0f32; NR]; MR];
                            microkernel(ap, bp, kc, &mut acc);
                            store_tile(
                                out,
                                &acc,
                                ic + it * MR,
                                jc + jt * NR,
                                mc.min(it * MR + MR) - it * MR,
                                nc.min(jt * NR + NR) - jt * NR,
                                n,
                                first_panel,
                            );
                        }
                    }
                }
            }
        }
    });
}

/// Packs the `mc × kc` block of `op(A)` starting at logical row `i0`, depth
/// `pc`, into `MR`-row micro-tiles: `apack[tile][p][r] = A[i0 + tile·MR + r][pc + p]`.
/// Rows beyond `mc` are zero-filled so the micro-kernel never branches.
#[allow(clippy::too_many_arguments)]
fn pack_a(
    layout: Layout,
    a: &[f32],
    apack: &mut [f32],
    i0: usize,
    mc: usize,
    pc: usize,
    kc: usize,
    m: usize,
    k: usize,
) {
    let tiles = mc.div_ceil(MR);
    for tile in 0..tiles {
        let base = tile * kc * MR;
        for p in 0..kc {
            for r in 0..MR {
                let i = i0 + tile * MR + r;
                apack[base + p * MR + r] = if tile * MR + r < mc {
                    match layout {
                        // A is [m, k] row-major.
                        Layout::Nn | Layout::Nt => a[i * k + pc + p],
                        // A is [k, m] row-major, read transposed.
                        Layout::Tn => {
                            debug_assert!(i < m);
                            a[(pc + p) * m + i]
                        }
                    }
                } else {
                    0.0
                };
            }
        }
    }
}

/// Packs the `kc × nc` panel of `op(B)` starting at depth `pc`, column `jc`,
/// into `NR`-column micro-tiles: `bpack[tile][p][c] = B[pc + p][jc + tile·NR + c]`.
/// Columns beyond `nc` are zero-filled.
#[allow(clippy::too_many_arguments)]
fn pack_b(
    layout: Layout,
    b: &[f32],
    bpack: &mut [f32],
    pc: usize,
    kc: usize,
    jc: usize,
    nc: usize,
    k: usize,
    n: usize,
) {
    let tiles = nc.div_ceil(NR);
    for tile in 0..tiles {
        let base = tile * kc * NR;
        match layout {
            // B is [k, n] row-major: copy NR-wide row segments.
            Layout::Nn | Layout::Tn => {
                let j = jc + tile * NR;
                let width = NR.min(nc - tile * NR);
                for p in 0..kc {
                    let src = (pc + p) * n + j;
                    let dst = base + p * NR;
                    bpack[dst..dst + width].copy_from_slice(&b[src..src + width]);
                    bpack[dst + width..dst + NR].fill(0.0);
                }
            }
            // B is [n, k] row-major, read transposed: gather down columns.
            Layout::Nt => {
                for c in 0..NR {
                    let j = jc + tile * NR + c;
                    if tile * NR + c < nc {
                        for p in 0..kc {
                            bpack[base + p * NR + c] = b[j * k + pc + p];
                        }
                    } else {
                        for p in 0..kc {
                            bpack[base + p * NR + c] = 0.0;
                        }
                    }
                }
            }
        }
    }
}

/// Register-blocked inner kernel: `acc[MR][NR] += apᵀ · bp` over `kc` steps of
/// contiguous packed panels. The constant-bound loops fully unroll; each of
/// the `MR` accumulator rows is a register-resident `NR`-wide FMA update.
#[inline]
fn microkernel(ap: &[f32], bp: &[f32], kc: usize, acc: &mut [[f32; NR]; MR]) {
    debug_assert!(ap.len() >= kc * MR && bp.len() >= kc * NR);
    let (a_tiles, _) = ap.as_chunks::<MR>();
    let (b_tiles, _) = bp.as_chunks::<NR>();
    let a_tiles = &a_tiles[..kc];
    let b_tiles = &b_tiles[..kc];
    // Two k-interleaved accumulator sets double the number of independent
    // FMA dependency chains (2·MR per column vector), hiding FMA latency that
    // a single MR-row set cannot. Each set is small enough (MR·NR floats)
    // for the optimiser to keep fully in registers.
    let mut even = [[0.0f32; NR]; MR];
    let mut odd = [[0.0f32; NR]; MR];
    let mut pairs_a = a_tiles.chunks_exact(2);
    let mut pairs_b = b_tiles.chunks_exact(2);
    for (a2, b2) in (&mut pairs_a).zip(&mut pairs_b) {
        for r in 0..MR {
            let (a0, a1) = (a2[0][r], a2[1][r]);
            for c in 0..NR {
                even[r][c] = a0.mul_add(b2[0][c], even[r][c]);
            }
            for c in 0..NR {
                odd[r][c] = a1.mul_add(b2[1][c], odd[r][c]);
            }
        }
    }
    if let ([a], [b]) = (pairs_a.remainder(), pairs_b.remainder()) {
        for r in 0..MR {
            let ar = a[r];
            for c in 0..NR {
                even[r][c] = ar.mul_add(b[c], even[r][c]);
            }
        }
    }
    for r in 0..MR {
        for c in 0..NR {
            acc[r][c] += even[r][c] + odd[r][c];
        }
    }
}

/// Writes (or adds) the valid `rows × cols` region of an accumulator tile to
/// `out` at `(i0, j0)`; `first_panel` selects store vs accumulate semantics
/// across `KC` blocks.
#[allow(clippy::too_many_arguments)]
fn store_tile(
    out: &mut [f32],
    acc: &[[f32; NR]; MR],
    i0: usize,
    j0: usize,
    rows: usize,
    cols: usize,
    n: usize,
    first_panel: bool,
) {
    for (r, acc_row) in acc.iter().enumerate().take(rows) {
        let dst = &mut out[(i0 + r) * n + j0..(i0 + r) * n + j0 + cols];
        if first_panel {
            dst.copy_from_slice(&acc_row[..cols]);
        } else {
            for (d, &v) in dst.iter_mut().zip(acc_row.iter()) {
                *d += v;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Scalar three-loop reference (no blocking, no zero-skipping).
    fn naive(layout: Layout, a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                let mut s = 0.0f32;
                for p in 0..k {
                    let av = match layout {
                        Layout::Nn | Layout::Nt => a[i * k + p],
                        Layout::Tn => a[p * m + i],
                    };
                    let bv = match layout {
                        Layout::Nn | Layout::Tn => b[p * n + j],
                        Layout::Nt => b[j * k + p],
                    };
                    s += av * bv;
                }
                out[i * n + j] = s;
            }
        }
        out
    }

    fn fill(len: usize, salt: u32) -> Vec<f32> {
        (0..len)
            .map(|i| {
                let x = (i as u32).wrapping_mul(2654435761).wrapping_add(salt);
                (x % 1000) as f32 / 500.0 - 1.0
            })
            .collect()
    }

    fn check_all_layouts(m: usize, k: usize, n: usize) {
        for layout in [Layout::Nn, Layout::Tn, Layout::Nt] {
            let a = fill(m * k, 1);
            let b = fill(k * n, 2);
            let expected = naive(layout, &a, &b, m, k, n);
            let mut got = vec![0.0f32; m * n];
            matmul_into(layout, &a, &b, &mut got, m, k, n, false);
            for (i, (g, e)) in got.iter().zip(&expected).enumerate() {
                assert!(
                    (g - e).abs() <= 1e-4 * (1.0 + e.abs()),
                    "{layout:?} {m}x{k}x{n} idx {i}: got {g}, expected {e}"
                );
            }
        }
    }

    #[test]
    fn parity_with_naive_across_odd_shapes() {
        // 1×1, degenerate k, primes, tile-boundary and beyond-one-block sizes.
        for &(m, k, n) in &[
            (1, 1, 1),
            (3, 7, 5),
            (1, 64, 1),
            (64, 1, 64),
            (4, 16, 16),
            (5, 17, 19),
            (64, 64, 64),
            (65, 257, 63),
            (31, 300, 47),
        ] {
            check_all_layouts(m, k, n);
        }
    }

    #[test]
    fn accumulate_adds_to_existing_output() {
        let (m, k, n) = (5, 9, 7);
        let a = fill(m * k, 3);
        let b = fill(k * n, 4);
        let expected: Vec<f32> = naive(Layout::Nn, &a, &b, m, k, n)
            .iter()
            .map(|v| v + 1.0)
            .collect();
        let mut out = vec![1.0f32; m * n];
        matmul_into(Layout::Nn, &a, &b, &mut out, m, k, n, true);
        for (g, e) in out.iter().zip(&expected) {
            assert!((g - e).abs() <= 1e-4, "got {g}, expected {e}");
        }
    }

    #[test]
    fn zero_times_nan_is_nan() {
        // The old scalar kernel skipped a == 0.0 entries, silently dropping
        // NaN/Inf coming from the right operand. 0 · NaN must be NaN.
        let a = vec![0.0f32, 1.0];
        let b = vec![f32::NAN, 2.0];
        let mut out = vec![0.0f32; 1];
        matmul_into(Layout::Nn, &a, &b, &mut out, 1, 2, 1, false);
        assert!(out[0].is_nan(), "0·NaN + 1·2 must be NaN, got {}", out[0]);
    }

    #[test]
    fn parallel_path_matches_single_thread() {
        // Big enough to cross PARALLEL_THRESHOLD.
        let (m, k, n) = (128, 96, 128);
        let a = fill(m * k, 5);
        let b = fill(k * n, 6);
        let mut parallel = vec![0.0f32; m * n];
        matmul_into(Layout::Nn, &a, &b, &mut parallel, m, k, n, false);
        let mut serial = vec![0.0f32; m * n];
        gebp(Layout::Nn, &a, &b, &mut serial, 0, m, k, n, false);
        assert_eq!(parallel, serial, "threaded split must be bit-identical");
    }

    /// Serving bit-identity foundation: in the packed kernel, one output
    /// row's arithmetic depends only on that row of `op(A)` and on `B` —
    /// never on how many other rows share the product. `Nt` (the layout
    /// `Linear::forward` uses, and the only batch-shaped matmul in an
    /// eval-mode forward pass) always takes the packed path, so a sample's
    /// logits are bit-identical whether it is evaluated alone or inside any
    /// micro-batch. `fitact_serve` builds its guarantee on this; the
    /// `forward_is_batch_invariant` suite in `fitact_nn` pins the
    /// layer-level consequence.
    #[test]
    fn nt_rows_are_independent_of_row_count() {
        // Odd sizes, spanning multiple KC blocks (k > 256) and NR tiles.
        let (k, n) = (300, 47);
        let b = fill(n * k, 11); // B is [n, k], read transposed.
        for m in [2usize, 3, 8, 33] {
            let a = fill(m * k, 12);
            let mut batched = vec![0.0f32; m * n];
            matmul_into(Layout::Nt, &a, &b, &mut batched, m, k, n, false);
            for i in 0..m {
                let mut single = vec![0.0f32; n];
                matmul_into(
                    Layout::Nt,
                    &a[i * k..(i + 1) * k],
                    &b,
                    &mut single,
                    1,
                    k,
                    n,
                    false,
                );
                assert_eq!(
                    &batched[i * n..(i + 1) * n],
                    &single[..],
                    "m={m} row {i} must be bit-identical to the single-row product"
                );
            }
        }
    }

    #[test]
    fn empty_dims_are_handled() {
        let mut out = vec![7.0f32; 4];
        matmul_into(Layout::Nn, &[], &[], &mut out, 2, 0, 2, false);
        assert_eq!(out, vec![0.0; 4]);
        let mut out = vec![7.0f32; 4];
        matmul_into(Layout::Nn, &[], &[], &mut out, 2, 0, 2, true);
        assert_eq!(out, vec![7.0; 4]);
        matmul_into(Layout::Nn, &[], &[], &mut [], 0, 3, 0, false);
    }
}
