//! Workspace root crate for the FitAct reproduction.
//!
//! This crate only re-exports the member crates so that the runnable
//! `examples/` and the cross-crate integration tests in `tests/` have a single
//! dependency root. The actual functionality lives in:
//!
//! * [`fitact_tensor`] — tensors and Q15.16 fixed-point arithmetic,
//! * [`fitact_nn`] — the from-scratch DNN substrate (layers, models, training),
//! * [`fitact_data`] — synthetic CIFAR-like datasets and data loading,
//! * [`fitact_faults`] — bit-flip fault injection and campaign running,
//! * [`fitact`] — the paper's contribution: FitReLU and the FitAct workflow,
//! * [`fitact_io`] — versioned on-disk model artifacts (and the `fitact` CLI
//!   in `crates/cli` that composes pipelines out of them),
//! * [`fitact_serve`] — the HTTP serving tier: micro-batched inference and
//!   the distributed campaign coordinator/worker protocol.
pub use fitact;
pub use fitact_data;
pub use fitact_faults;
pub use fitact_io;
pub use fitact_nn;
pub use fitact_serve;
pub use fitact_tensor;
