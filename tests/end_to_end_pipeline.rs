//! End-to-end integration test of the full FitAct workflow on a small MLP:
//! stage-1 training, calibration, architecture modification, stage-2 bound
//! post-training, and a fault-injection campaign comparing protected and
//! unprotected models.

use fitact::{FitAct, FitActConfig, ProtectionScheme};
use fitact_data::{materialize, Blobs, BlobsConfig};
use fitact_faults::{quantize_network, Campaign, CampaignConfig};
use fitact_nn::layers::{ActivationLayer, Linear, Sequential};
use fitact_nn::Network;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn base_network(seed: u64) -> Network {
    let mut rng = StdRng::seed_from_u64(seed);
    Network::new(
        "mlp",
        Sequential::new()
            .with(Box::new(Linear::new(8, 32, &mut rng)))
            .with(Box::new(ActivationLayer::relu("h1", &[32])))
            .with(Box::new(Linear::new(32, 3, &mut rng))),
    )
}

fn data(samples: usize, seed: u64) -> (fitact_tensor::Tensor, Vec<usize>) {
    let ds = Blobs::new(BlobsConfig {
        samples,
        seed,
        ..Default::default()
    })
    .unwrap();
    materialize(&ds).unwrap()
}

#[test]
fn full_workflow_produces_a_more_resilient_model() {
    let (train_x, train_y) = data(384, 1);
    // The evaluation set shares the class structure of the training set (the
    // Blobs centres are derived from the seed); resilience, not
    // generalisation, is what this test measures.
    let (test_x, test_y) = data(192, 1);

    // Stage 1: accuracy training.
    let mut network = base_network(0);
    let fitact = FitAct::new(FitActConfig {
        post_train_epochs: 3,
        zeta: 0.1,
        ..Default::default()
    });
    fitact
        .train_for_accuracy(&mut network, &train_x, &train_y, 25, 0.05)
        .unwrap();
    let mut unprotected = network.clone();
    quantize_network(&mut unprotected);
    let baseline = unprotected.evaluate(&test_x, &test_y, 64).unwrap();
    assert!(
        baseline > 0.85,
        "stage-1 training should learn the blobs problem, got {baseline}"
    );

    // Stage 2: resilience post-training.
    let mut resilient = fitact.build_resilient(network, &train_x, &train_y).unwrap();
    quantize_network(resilient.network_mut());
    let report = *resilient.report();
    assert!(
        report.constraint_satisfied,
        "accuracy-drop constraint must hold"
    );
    assert!(
        report.initial_accuracy - report.final_accuracy <= fitact.config().delta + 1e-6,
        "fault-free accuracy dropped more than delta"
    );
    assert!(
        report.mean_bound_after <= report.mean_bound_before,
        "post-training should not grow the bounds"
    );

    // Fault campaign at an aggressive rate (the toy model is tiny, so the rate
    // is far above the paper's — what matters is the protected-vs-unprotected
    // ordering).
    let config = CampaignConfig {
        fault_rate: 3e-3,
        trials: 15,
        batch_size: 64,
        seed: 5,
    };
    let unprotected_result = Campaign::new(&mut unprotected, &test_x, &test_y)
        .unwrap()
        .run(&config)
        .unwrap();
    let protected_result = Campaign::new(resilient.network_mut(), &test_x, &test_y)
        .unwrap()
        .run(&config)
        .unwrap();

    assert!(
        protected_result.mean_accuracy() >= unprotected_result.mean_accuracy(),
        "FitAct ({:.3}) should be at least as resilient as unprotected ({:.3})",
        protected_result.mean_accuracy(),
        unprotected_result.mean_accuracy()
    );
    // The protected model keeps most of its fault-free accuracy.
    assert!(
        protected_result.fault_free_accuracy >= baseline - 0.06,
        "protection cost too much clean accuracy: {} vs {}",
        protected_result.fault_free_accuracy,
        baseline
    );
}

#[test]
fn all_paper_schemes_run_through_the_pipeline() {
    // Like the resilience test above, the evaluation set must share the
    // training set's class structure (Blobs centres are derived from the
    // seed): with disjoint seeds the "destroyed the model" threshold below
    // would compare against an unlearnable label assignment.
    let (train_x, train_y) = data(192, 3);
    let (test_x, test_y) = data(96, 3);
    let mut network = base_network(1);
    let fitact = FitAct::new(FitActConfig {
        post_train_epochs: 1,
        ..Default::default()
    });
    fitact
        .train_for_accuracy(&mut network, &train_x, &train_y, 10, 0.05)
        .unwrap();
    let profile = fitact.calibrate(&mut network, &train_x).unwrap();

    for scheme in ProtectionScheme::paper_schemes() {
        let mut protected = network.clone();
        fitact::apply_protection(&mut protected, &profile, scheme).unwrap();
        quantize_network(&mut protected);
        let accuracy = protected.evaluate(&test_x, &test_y, 32).unwrap();
        assert!(
            accuracy > 0.3,
            "{scheme} destroyed the model: accuracy {accuracy}"
        );
        // A campaign runs and restores the network.
        let before = protected.snapshot();
        Campaign::new(&mut protected, &test_x, &test_y)
            .unwrap()
            .run(&CampaignConfig {
                fault_rate: 1e-3,
                trials: 3,
                batch_size: 32,
                seed: 9,
            })
            .unwrap();
        assert_eq!(protected.snapshot(), before);
    }
}

#[test]
fn post_training_only_touches_bound_parameters() {
    let (train_x, train_y) = data(128, 5);
    let mut network = base_network(2);
    let fitact = FitAct::new(FitActConfig {
        post_train_epochs: 2,
        ..Default::default()
    });
    fitact
        .train_for_accuracy(&mut network, &train_x, &train_y, 5, 0.05)
        .unwrap();
    let profile = fitact.calibrate(&mut network, &train_x).unwrap();
    fitact.modify(&mut network, &profile).unwrap();

    let weights_before: Vec<_> = network
        .param_info()
        .iter()
        .zip(network.params())
        .filter(|(info, _)| !info.path.ends_with("lambda"))
        .map(|(_, p)| p.data().clone())
        .collect();
    let bounds_before: Vec<_> = network
        .param_info()
        .iter()
        .zip(network.params())
        .filter(|(info, _)| info.path.ends_with("lambda"))
        .map(|(_, p)| p.data().clone())
        .collect();
    assert!(!bounds_before.is_empty());

    fitact.post_train(&mut network, &train_x, &train_y).unwrap();

    let weights_after: Vec<_> = network
        .param_info()
        .iter()
        .zip(network.params())
        .filter(|(info, _)| !info.path.ends_with("lambda"))
        .map(|(_, p)| p.data().clone())
        .collect();
    let bounds_after: Vec<_> = network
        .param_info()
        .iter()
        .zip(network.params())
        .filter(|(info, _)| info.path.ends_with("lambda"))
        .map(|(_, p)| p.data().clone())
        .collect();

    assert_eq!(
        weights_before, weights_after,
        "Θ_A must be frozen during post-training"
    );
    assert_ne!(bounds_before, bounds_after, "Θ_R should have been updated");
}
