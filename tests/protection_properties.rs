//! Cross-crate property tests of the protection schemes: bounded activations
//! really do stop fault propagation, and the fault space includes the
//! activation-bound parameters.

use fitact::{apply_protection, ActivationProfiler, ProtectionScheme};
use fitact_data::{materialize, Blobs, BlobsConfig};
use fitact_faults::{BitFlipInjector, FaultSite, MemoryMap};
use fitact_nn::layers::{ActivationLayer, Linear, Sequential};
use fitact_nn::loss::CrossEntropyLoss;
use fitact_nn::optim::Sgd;
use fitact_nn::{Mode, Network};
use fitact_tensor::Tensor;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn trained_network() -> (Network, Tensor, Vec<usize>) {
    let mut rng = StdRng::seed_from_u64(0);
    let root = Sequential::new()
        .with(Box::new(Linear::new(8, 24, &mut rng)))
        .with(Box::new(ActivationLayer::relu("h1", &[24])))
        .with(Box::new(Linear::new(24, 16, &mut rng)))
        .with(Box::new(ActivationLayer::relu("h2", &[16])))
        .with(Box::new(Linear::new(16, 3, &mut rng)));
    let mut net = Network::new("mlp", root);
    let ds = Blobs::new(BlobsConfig {
        samples: 256,
        seed: 1,
        ..Default::default()
    })
    .unwrap();
    let (x, y) = materialize(&ds).unwrap();
    let loss = CrossEntropyLoss::new();
    let mut opt = Sgd::with_momentum(0.05, 0.9, 0.0);
    for _ in 0..40 {
        net.train_batch(&x, &y, &loss, &mut opt).unwrap();
    }
    (net, x, y)
}

#[test]
fn protected_activations_never_exceed_their_bounds_under_weight_corruption() {
    let (mut net, x, _) = trained_network();
    let profile = ActivationProfiler::new(64)
        .unwrap()
        .profile(&mut net, &x)
        .unwrap();

    for scheme in [ProtectionScheme::ClipAct, ProtectionScheme::FitActNaive] {
        let mut protected = net.clone();
        apply_protection(&mut protected, &profile, scheme).unwrap();
        // Corrupt the first-layer weights with sign-bit flips (the worst case).
        let injector = BitFlipInjector::new(3);
        let sites: Vec<FaultSite> = (0..8)
            .map(|e| FaultSite {
                param_index: 0,
                element: e,
                bit: 31,
            })
            .collect();
        injector.inject(&mut protected, &sites);
        // The hidden activations cannot exceed the calibrated layer maxima, so
        // the logits stay in a sane range instead of exploding to ~1e4.
        let logits = protected.forward(&x, Mode::Eval).unwrap();
        assert!(logits.is_finite());
        let limit = 100.0 * (profile.slots[0].layer_max + profile.slots[1].layer_max + 1.0);
        assert!(
            logits.max().abs() < limit && logits.min().abs() < limit,
            "{scheme}: corrupted logits escaped the bounded range: {} / {}",
            logits.max(),
            logits.min()
        );
    }
}

#[test]
fn unprotected_network_lets_corrupted_values_explode() {
    let (mut net, x, _) = trained_network();
    let injector = BitFlipInjector::new(3);
    let sites: Vec<FaultSite> = (0..8)
        .map(|e| FaultSite {
            param_index: 0,
            element: e,
            bit: 31,
        })
        .collect();
    injector.inject(&mut net, &sites);
    let logits = net.forward(&x, Mode::Eval).unwrap();
    // With plain ReLU the sign-flipped weights (≈ ±32768) drive the logits to
    // enormous magnitudes — the failure mode the paper protects against.
    assert!(logits.max().abs() > 1_000.0 || logits.min().abs() > 1_000.0);
}

#[test]
fn fitact_bound_parameters_are_part_of_the_fault_space() {
    let (mut net, x, _) = trained_network();
    let profile = ActivationProfiler::new(64)
        .unwrap()
        .profile(&mut net, &x)
        .unwrap();
    let base_bits = MemoryMap::of_network(&net).total_bits();
    apply_protection(&mut net, &profile, ProtectionScheme::FitAct { slope: 8.0 }).unwrap();
    let protected_bits = MemoryMap::of_network(&net).total_bits();
    let extra_words = (protected_bits - base_bits) / 32;
    assert_eq!(extra_words as usize, profile.total_neurons());
    // And the lambda spans are addressable by the injector.
    let map = MemoryMap::of_network(&net);
    assert!(map.spans().iter().any(|s| s.path.ends_with("lambda")));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Whatever single bit is flipped anywhere in the parameter memory, the
    /// Clip-Act protected model's output stays finite and bounded.
    #[test]
    fn any_single_bit_flip_is_contained_by_clipact(bit in 0u32..32, element in 0usize..16, param in 0usize..6) {
        let (mut net, x, _) = trained_network();
        let profile = ActivationProfiler::new(64).unwrap().profile(&mut net, &x).unwrap();
        apply_protection(&mut net, &profile, ProtectionScheme::ClipAct).unwrap();
        let injector = BitFlipInjector::new(0);
        injector.inject(&mut net, &[FaultSite { param_index: param, element, bit }]);
        let logits = net.forward(&x, Mode::Eval).unwrap();
        prop_assert!(logits.is_finite());
    }
}
