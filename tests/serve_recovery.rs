//! End-to-end detect-and-retry recovery over real sockets.
//!
//! The protected golden AlexNet serves live traffic with `--retry-policy
//! retry` and a fault-injecting canary shadow replica. The pinned claims:
//!
//! * live responses stay **bit-identical** to direct single-sample
//!   evaluation — violation tracing, retry checks and the canary mirror are
//!   all invisible to the served numerics,
//! * the canary injects real faults into shadow traffic and the bounded
//!   activations detect them (`/metrics` reports nonzero measured
//!   detection coverage),
//! * retried shadow rows reproduce the clean forward **bit-for-bit** —
//!   resuming from the last clean layer boundary recovers the
//!   uncorrupted answer, end to end over HTTP.

mod common;

use fitact::{apply_protection, ActivationProfiler, ProtectionScheme};
use fitact_io::{JsonValue, ModelArtifact};
use fitact_nn::{copy_batch_into, Mode, Network};
use fitact_serve::{RetryPolicy, ServeConfig, Server};
use fitact_tensor::Tensor;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

/// Per-bit canary fault rate: across an AlexNet activation volume this
/// lands a handful of flips in every shadow batch, so a short traffic burst
/// measures coverage without swamping every batch.
const CANARY_RATE: f64 = 3e-6;

fn http(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, JsonValue) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .unwrap();
    let request = format!(
        "{method} {path} HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(request.as_bytes()).expect("write request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let status: u16 = response
        .split(' ')
        .nth(1)
        .expect("status line")
        .parse()
        .expect("numeric status");
    let json_body = response.split("\r\n\r\n").nth(1).expect("body");
    (status, JsonValue::parse(json_body).expect("JSON body"))
}

fn predict_body(inputs: &Tensor, rows: &[usize]) -> String {
    let features: usize = inputs.dims()[1..].iter().product();
    let values = inputs.as_slice();
    let rows_json: Vec<JsonValue> = rows
        .iter()
        .map(|&r| {
            JsonValue::Array(
                values[r * features..(r + 1) * features]
                    .iter()
                    .map(|&v| JsonValue::Number(f64::from(v)))
                    .collect(),
            )
        })
        .collect();
    JsonValue::Object(vec![("inputs".into(), JsonValue::Array(rows_json))]).to_string()
}

fn response_logits(body: &JsonValue) -> Vec<Vec<f32>> {
    body.get("outputs")
        .expect("outputs")
        .as_array()
        .expect("array")
        .iter()
        .map(|row| {
            row.as_array()
                .expect("row array")
                .iter()
                .map(|v| v.as_f64().expect("number") as f32)
                .collect()
        })
        .collect()
}

fn single_sample_logits(net: &mut Network, inputs: &Tensor) -> Vec<Vec<f32>> {
    let n = inputs.dims()[0];
    let mut staging = Tensor::default();
    (0..n)
        .map(|i| {
            copy_batch_into(inputs, i, i + 1, &mut staging).unwrap();
            net.forward(&staging, Mode::Eval).unwrap().into_vec()
        })
        .collect()
}

/// The protected golden AlexNet (same construction as `serve_identity.rs`):
/// calibrated on its training split, FitAct bounds installed.
fn protected_artifact() -> ModelArtifact {
    let artifact = common::trained_alexnet_artifact();
    let mut net = artifact.instantiate().expect("golden instantiates");
    let (train_x, _) = common::cnn_train_spec()
        .with_samples(24)
        .materialize()
        .expect("dataset");
    let profile = ActivationProfiler::new(8)
        .unwrap()
        .profile(&mut net, &train_x)
        .unwrap();
    let scheme = ProtectionScheme::FitAct { slope: 8.0 };
    apply_protection(&mut net, &profile, scheme).unwrap();
    let mut protected = ModelArtifact::capture_protected(&net, Some(&profile), Some(scheme))
        .expect("capture protected");
    protected.meta = artifact.meta.clone();
    protected
}

fn canary_counter(metrics: &JsonValue, field: &str) -> f64 {
    metrics
        .path(&["canary", field])
        .unwrap_or(&JsonValue::Null)
        .as_f64()
        .unwrap_or(0.0)
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "triple AlexNet traffic (live + clean/faulty shadow); run with --release (the CI release-test job does)"
)]
fn canary_faults_are_detected_and_retries_recover_bitwise_over_http() {
    let dir = std::env::temp_dir().join(format!("fitact_serve_recovery_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let model_path = dir.join("model.fitact");
    let protected = protected_artifact();
    protected.save(&model_path).unwrap();
    let mut reference = protected.instantiate().unwrap();
    let (eval_x, _) = common::cnn_train_spec()
        .test()
        .with_samples(12)
        .materialize()
        .unwrap();
    let expected = single_sample_logits(&mut reference, &eval_x);

    let server = Server::start(
        &model_path,
        &ServeConfig {
            max_batch: 4,
            max_wait: Duration::from_millis(25),
            workers: 2,
            retry_policy: RetryPolicy::Retry,
            violation_threshold: 1,
            canary_rate: CANARY_RATE,
            ..ServeConfig::default()
        },
    )
    .expect("server starts");
    let addr = server.addr();

    // Live traffic: every response must stay bit-identical to direct
    // evaluation — detection, the canary mirror and any retries the policy
    // runs are invisible to the served numerics.
    for _ in 0..8 {
        let (status, body) = http(
            addr,
            "POST",
            "/predict",
            &predict_body(&eval_x, &(0..12).collect::<Vec<_>>()),
        );
        assert_eq!(status, 200, "{body}");
        assert_eq!(
            response_logits(&body),
            expected,
            "recovery instrumentation must never change live responses"
        );
    }

    // The shadow replica drains asynchronously; wait for it to have both
    // mirrored traffic and landed injected faults.
    let deadline = Instant::now() + Duration::from_secs(60);
    let metrics = loop {
        let (status, metrics) = http(addr, "GET", "/metrics", "");
        assert_eq!(status, 200);
        let mirrored =
            canary_counter(&metrics, "batches_total") + canary_counter(&metrics, "dropped_total");
        if (mirrored >= 8.0 && canary_counter(&metrics, "detected_batches_total") > 0.0)
            || Instant::now() > deadline
        {
            break metrics;
        }
        std::thread::sleep(Duration::from_millis(100));
    };

    // Faults were injected into shadow traffic and the bounded activations
    // caught them: measured detection coverage is reported and nonzero.
    assert!(
        canary_counter(&metrics, "faults_injected_total") > 0.0,
        "the canary must actually inject faults: {metrics}"
    );
    assert!(
        canary_counter(&metrics, "injected_batches_total") > 0.0,
        "{metrics}"
    );
    assert!(
        canary_counter(&metrics, "detected_batches_total") > 0.0,
        "violation telemetry must catch injected faults: {metrics}"
    );
    let coverage = metrics
        .path(&["canary", "detection_coverage"])
        .expect("coverage field present")
        .as_f64()
        .expect("coverage measured, not null");
    assert!(
        coverage > 0.0 && coverage <= 1.0,
        "measured detection coverage must be a nonzero fraction, got {coverage}"
    );

    // Detected shadow batches were retried from their last clean boundary,
    // and retried rows reproduce the clean forward bit-for-bit. (Rows where
    // a sub-bound corruption upstream of the resume point survives are
    // counted as mismatches — the canary quantifies them, it does not hide
    // them — but boundary resumption must recover at least some rows
    // exactly.)
    let clean_matches = canary_counter(&metrics, "retry_clean_match_rows");
    let mismatches = canary_counter(&metrics, "retry_mismatch_rows");
    assert!(
        clean_matches + mismatches > 0.0,
        "detected batches must have been retried: {metrics}"
    );
    assert!(
        clean_matches > 0.0,
        "retried rows must reproduce the clean forward bit-for-bit: {metrics}"
    );
    assert!(
        canary_counter(&metrics, "retry_transient_rows") > 0.0,
        "a retry that repaired anything differs from the faulted forward: {metrics}"
    );

    // Violation telemetry is live on the serving path itself: every slot of
    // the protected model reports its element volume.
    let layers = metrics
        .path(&["violations", "layers"])
        .expect("per-layer block");
    if let JsonValue::Object(entries) = layers {
        assert!(!entries.is_empty(), "per-layer telemetry present");
        for (label, stats) in entries {
            let elements = stats.get("elements").unwrap().as_f64().unwrap();
            assert!(elements > 0.0, "slot {label} inspected nothing");
        }
    } else {
        panic!("violations.layers must be an object: {layers}");
    }

    let (status, _) = http(addr, "POST", "/admin/shutdown", "");
    assert_eq!(status, 200);
    let final_metrics = server.join();
    assert_eq!(final_metrics.errors_total, 0);
    assert_eq!(final_metrics.responses_total, 96);
    assert_eq!(final_metrics.rows_total, 96);
    assert!(final_metrics.canary.faults_injected_total > 0);
    std::fs::remove_dir_all(&dir).ok();
}

/// `--retry-policy flag` counts suspect batches without retrying, and the
/// full recovery configuration surface is exercised in-process: flagging is
/// observe-only too.
#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "AlexNet traffic; run with --release (the CI release-test job does)"
)]
fn flag_policy_counts_without_changing_responses() {
    let dir = std::env::temp_dir().join(format!("fitact_serve_flag_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let model_path = dir.join("model.fitact");
    let protected = protected_artifact();
    protected.save(&model_path).unwrap();
    let mut reference = protected.instantiate().unwrap();
    let (eval_x, _) = common::cnn_train_spec()
        .test()
        .with_samples(8)
        .materialize()
        .unwrap();
    let expected = single_sample_logits(&mut reference, &eval_x);
    let server = Server::start(
        &model_path,
        &ServeConfig {
            max_batch: 4,
            max_wait: Duration::from_millis(25),
            workers: 2,
            retry_policy: RetryPolicy::Flag,
            ..ServeConfig::default()
        },
    )
    .expect("server starts");
    let addr = server.addr();
    let (status, body) = http(
        addr,
        "POST",
        "/predict",
        &predict_body(&eval_x, &(0..8).collect::<Vec<_>>()),
    );
    assert_eq!(status, 200, "{body}");
    assert_eq!(response_logits(&body), expected);
    let (_, metrics) = http(addr, "GET", "/metrics", "");
    // No canary: the shadow counters all stay zero.
    assert_eq!(canary_counter(&metrics, "batches_total"), 0.0);
    let (status, _) = http(addr, "POST", "/admin/shutdown", "");
    assert_eq!(status, 200);
    let final_metrics = server.join();
    assert_eq!(final_metrics.errors_total, 0);
    std::fs::remove_dir_all(&dir).ok();
}
