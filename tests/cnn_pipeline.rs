//! Integration test of the pipeline on a (very small) convolutional network
//! and the synthetic CIFAR stand-in: the path every figure harness follows.
//!
//! The stage-1 trained CNN is shared with the other integration suites
//! through the golden-artifact cache (`tests/common`): the first suite to
//! run trains it once, everyone else loads the saved artifact.

mod common;

use fitact::{apply_protection, ActivationProfiler, FitAct, FitActConfig, ProtectionScheme};
use fitact_faults::{quantize_network, Campaign, CampaignConfig};

#[test]
fn alexnet_learns_the_synthetic_task_and_protection_preserves_accuracy() {
    let (train_x, _) = common::cnn_train_spec().materialize().unwrap();
    let (test_x, test_y) = common::cnn_train_spec()
        .test()
        .with_samples(80)
        .materialize()
        .unwrap();

    let mut net = common::trained_alexnet();
    quantize_network(&mut net);

    let baseline = net.evaluate(&test_x, &test_y, 40).unwrap();
    assert!(
        baseline > 0.15,
        "a briefly-trained AlexNet should beat 10% chance, got {baseline}"
    );

    // Calibration + Clip-Act protection keeps the fault-free accuracy intact.
    let profile = ActivationProfiler::new(40)
        .unwrap()
        .profile(&mut net, &train_x)
        .unwrap();
    let mut clipact = net.clone();
    apply_protection(&mut clipact, &profile, ProtectionScheme::ClipAct).unwrap();
    let clipact_accuracy = clipact.evaluate(&test_x, &test_y, 40).unwrap();
    assert!(
        (clipact_accuracy - baseline).abs() < 0.1,
        "Clip-Act with calibrated bounds should not change fault-free accuracy much: {clipact_accuracy} vs {baseline}"
    );

    // A short fault campaign runs end-to-end on the CNN and restores it.
    let before = clipact.snapshot();
    let result = Campaign::new(&mut clipact, &test_x, &test_y)
        .unwrap()
        .run(&CampaignConfig {
            fault_rate: 1e-4,
            trials: 2,
            batch_size: 40,
            seed: 1,
        })
        .unwrap();
    assert_eq!(clipact.snapshot(), before);
    assert!(result.mean_accuracy() >= 0.0 && result.mean_accuracy() <= 1.0);
}

#[test]
fn fitact_modification_and_post_training_work_on_a_cnn() {
    let (train_x, train_y) = common::cnn_train_spec().materialize().unwrap();
    let mut net = common::trained_alexnet();
    let fitact = FitAct::new(FitActConfig {
        post_train_epochs: 1,
        batch_size: 20,
        ..Default::default()
    });

    let profile = fitact.calibrate(&mut net, &train_x).unwrap();
    assert_eq!(profile.len(), 7, "AlexNet has 7 activation slots");
    fitact.modify(&mut net, &profile).unwrap();
    for slot in net.activation_slots() {
        assert_eq!(slot.activation().name(), "fitrelu");
    }
    let report = fitact.post_train(&mut net, &train_x, &train_y).unwrap();
    assert!(report.epochs_run >= 1);
    assert!(report.mean_bound_after <= report.mean_bound_before + 1e-6);
}
