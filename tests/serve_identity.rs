//! End-to-end serving identity: the `fitact_serve` server, loaded from the
//! golden AlexNet artifact, answers concurrent micro-batched `/predict`
//! requests **bit-identically** to evaluating the same samples directly on
//! the instantiated `Network` — the acceptance gate of the serving PR.
//!
//! The guarantee composes three pinned facts:
//!
//! 1. artifact round-trips are bit-exact (`tests/artifact_identity.rs`),
//! 2. eval-mode forwards are batch-invariant
//!    (`crates/nn/tests/batch_invariance.rs`, plus the protected variant
//!    below),
//! 3. logits survive the JSON wire format exactly (`f32 → f64` widening is
//!    exact, and the emitter prints shortest-round-trip decimals).
//!
//! So whatever micro-batch composition the scheduler happens to pick under
//! concurrency, every response must equal the single-sample forward.

mod common;

use fitact::{apply_protection, ActivationProfiler, ProtectionScheme};
use fitact_io::{JsonValue, ModelArtifact};
use fitact_nn::{copy_batch_into, Mode, Network};
use fitact_serve::{ServeConfig, Server};
use fitact_tensor::Tensor;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// Minimal HTTP/1.1 client: one request, read to EOF (the server always
/// closes), parse status + JSON body.
fn http(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, JsonValue) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .unwrap();
    let request = format!(
        "{method} {path} HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(request.as_bytes()).expect("write request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let status: u16 = response
        .split(' ')
        .nth(1)
        .expect("status line")
        .parse()
        .expect("numeric status");
    let json_body = response.split("\r\n\r\n").nth(1).expect("body");
    (status, JsonValue::parse(json_body).expect("JSON body"))
}

/// Renders sample rows as a `/predict` body. `f32 → f64` is exact and the
/// emitter prints shortest-round-trip decimals, so the server parses back
/// the identical `f32` bits.
fn predict_body(inputs: &Tensor, rows: &[usize]) -> String {
    let features: usize = inputs.dims()[1..].iter().product();
    let values = inputs.as_slice();
    let rows_json: Vec<JsonValue> = rows
        .iter()
        .map(|&r| {
            JsonValue::Array(
                values[r * features..(r + 1) * features]
                    .iter()
                    .map(|&v| JsonValue::Number(f64::from(v)))
                    .collect(),
            )
        })
        .collect();
    JsonValue::Object(vec![("inputs".into(), JsonValue::Array(rows_json))]).to_string()
}

/// Extracts `outputs` rows back into `f32` logits.
fn response_logits(body: &JsonValue) -> Vec<Vec<f32>> {
    body.get("outputs")
        .expect("outputs")
        .as_array()
        .expect("array")
        .iter()
        .map(|row| {
            row.as_array()
                .expect("row array")
                .iter()
                .map(|v| v.as_f64().expect("number") as f32)
                .collect()
        })
        .collect()
}

/// Single-sample forwards — the reference the server must match bit-wise.
fn single_sample_logits(net: &mut Network, inputs: &Tensor) -> Vec<Vec<f32>> {
    let n = inputs.dims()[0];
    let mut staging = Tensor::default();
    (0..n)
        .map(|i| {
            copy_batch_into(inputs, i, i + 1, &mut staging).unwrap();
            net.forward(&staging, Mode::Eval).unwrap().into_vec()
        })
        .collect()
}

/// The protected golden AlexNet: calibrated on its training split, FitAct
/// bounds installed (no post-training — identity needs a protected
/// topology, not a tuned one).
fn protected_artifact() -> ModelArtifact {
    let artifact = common::trained_alexnet_artifact();
    let mut net = artifact.instantiate().expect("golden instantiates");
    let (train_x, _) = common::cnn_train_spec()
        .with_samples(24)
        .materialize()
        .expect("dataset");
    let profile = ActivationProfiler::new(8)
        .unwrap()
        .profile(&mut net, &train_x)
        .unwrap();
    let scheme = ProtectionScheme::FitAct { slope: 8.0 };
    apply_protection(&mut net, &profile, scheme).unwrap();
    let mut protected = ModelArtifact::capture_protected(&net, Some(&profile), Some(scheme))
        .expect("capture protected");
    protected.meta = artifact.meta.clone();
    protected
}

#[test]
fn concurrent_batched_predictions_are_bit_identical_to_direct_evaluation() {
    let dir = std::env::temp_dir().join(format!("fitact_serve_identity_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let model_path = dir.join("model.fitact");

    // Stage 1: serve the unprotected golden artifact.
    let artifact = common::trained_alexnet_artifact();
    artifact.save(&model_path).unwrap();
    let mut reference = artifact.instantiate().unwrap();
    let (eval_x, _) = common::cnn_train_spec()
        .test()
        .with_samples(12)
        .materialize()
        .unwrap();
    let expected = single_sample_logits(&mut reference, &eval_x);
    // Batch invariance of the reference itself: the full batch reproduces
    // the single-sample rows bit-for-bit.
    let full = reference.forward(&eval_x, Mode::Eval).unwrap();
    let width = full.numel() / 12;
    for (i, row) in expected.iter().enumerate() {
        assert_eq!(&full.as_slice()[i * width..(i + 1) * width], &row[..]);
    }

    let server = Server::start(
        &model_path,
        &ServeConfig {
            max_batch: 4,
            max_wait: Duration::from_millis(25),
            workers: 2,
            ..ServeConfig::default()
        },
    )
    .expect("server starts");
    let addr = server.addr();

    // One 12-row request: the scheduler must split it into full batches of
    // exactly max_batch (the push is atomic, each worker drains at most 4).
    let (status, body) = http(
        addr,
        "POST",
        "/predict",
        &predict_body(&eval_x, &(0..12).collect::<Vec<_>>()),
    );
    assert_eq!(status, 200, "{body}");
    assert_eq!(response_logits(&body), expected);
    let batch_sizes: Vec<f64> = body
        .get("batch_sizes")
        .unwrap()
        .as_array()
        .unwrap()
        .iter()
        .map(|v| v.as_f64().unwrap())
        .collect();
    assert!(
        batch_sizes.iter().all(|&b| b == 4.0),
        "12 atomically queued rows with max_batch 4 execute as 3 full batches, got {batch_sizes:?}"
    );

    // Concurrent single-row clients: whatever micro-batches the scheduler
    // coalesces across connections, every response matches its sample's
    // single-forward logits bit-for-bit.
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..8)
            .map(|i| {
                let eval_x = &eval_x;
                let expected = &expected;
                scope.spawn(move || {
                    let (status, body) =
                        http(addr, "POST", "/predict", &predict_body(eval_x, &[i]));
                    assert_eq!(status, 200, "{body}");
                    assert_eq!(response_logits(&body), vec![expected[i].clone()]);
                })
            })
            .collect();
        for handle in handles {
            handle.join().unwrap();
        }
    });

    // The metrics agree with what was served.
    let (status, metrics) = http(addr, "GET", "/metrics", "");
    assert_eq!(status, 200);
    assert_eq!(metrics.get("rows_total").unwrap().as_f64(), Some(20.0));
    assert_eq!(metrics.get("responses_total").unwrap().as_f64(), Some(20.0));
    assert_eq!(metrics.get("errors_total").unwrap().as_f64(), Some(0.0));
    let histogram = metrics.get("batch_size_histogram").unwrap();
    let (_, health) = http(addr, "GET", "/healthz", "");
    assert_eq!(health.get("status").unwrap().as_str(), Some("ok"));
    assert!(
        histogram.get("4").is_some(),
        "the 12-row request produced full batches: {histogram}"
    );

    // Stage 2: hot reload onto the protected model — the serving numerics
    // must switch to the protected network's, again bit-identically.
    let protected = protected_artifact();
    protected.save(&model_path).unwrap();
    let mut protected_reference = protected.instantiate().unwrap();
    let protected_expected = single_sample_logits(&mut protected_reference, &eval_x);
    assert_ne!(
        protected_expected, expected,
        "protection must actually change the logits for the reload to be observable"
    );
    let (status, reload) = http(addr, "POST", "/admin/reload", "");
    assert_eq!(status, 200, "{reload}");
    assert_eq!(reload.get("generation").unwrap().as_f64(), Some(2.0));
    let (status, body) = http(
        addr,
        "POST",
        "/predict",
        &predict_body(&eval_x, &(0..12).collect::<Vec<_>>()),
    );
    assert_eq!(status, 200, "{body}");
    assert_eq!(
        response_logits(&body),
        protected_expected,
        "after reload, responses are bit-identical to the protected model"
    );

    // Graceful shutdown: the admin call is answered, join() returns the
    // final snapshot, and the totals cover everything served.
    let (status, bye) = http(addr, "POST", "/admin/shutdown", "");
    assert_eq!(status, 200);
    assert_eq!(bye.get("status").unwrap().as_str(), Some("shutting down"));
    let final_metrics = server.join();
    assert_eq!(final_metrics.rows_total, 32);
    assert_eq!(final_metrics.responses_total, 32);
    assert_eq!(final_metrics.errors_total, 0);
    assert_eq!(final_metrics.reloads_total, 1);
    std::fs::remove_dir_all(&dir).ok();
}

/// The batch-invariance pin for a *protected* network (the unprotected
/// variants live in `crates/nn/tests/batch_invariance.rs`; the protection
/// schemes come from the `fitact` core crate, so this one lives here):
/// FitAct wrappers are elementwise, so protection cannot reintroduce batch
/// coupling — a fault-campaign-validated model serves traffic with the
/// exact numerics the campaign measured.
#[test]
fn protected_forward_is_batch_invariant() {
    let protected = protected_artifact();
    let mut net = protected.instantiate().unwrap();
    let (eval_x, _) = common::cnn_train_spec()
        .test()
        .with_samples(10)
        .materialize()
        .unwrap();
    let full = net.forward(&eval_x, Mode::Eval).unwrap();
    let singles = single_sample_logits(&mut net, &eval_x);
    let width = full.numel() / 10;
    for (i, row) in singles.iter().enumerate() {
        assert_eq!(
            &full.as_slice()[i * width..(i + 1) * width],
            &row[..],
            "sample {i}"
        );
    }
}
