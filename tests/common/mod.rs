//! Shared golden artifacts for the workspace integration tests.
//!
//! Stage-1 training is the expensive part of every pipeline test; it is also
//! deterministic, so tests share one trained model through the artifact
//! cache in `target/golden` instead of each retraining it. The first test
//! binary to need the model trains and publishes it (atomically — see
//! `fitact_io::golden`); everyone else loads.

use fitact::{FitAct, FitActConfig};
use fitact_data::DataSpec;
use fitact_io::{golden, ModelArtifact};
use fitact_nn::models::{alexnet, ModelConfig};
use fitact_nn::Network;
use std::path::PathBuf;

/// The workspace golden-artifact directory (`target/golden`).
pub fn golden_dir() -> PathBuf {
    golden::golden_dir(env!("CARGO_MANIFEST_DIR"))
}

/// The dataset the golden CNN was trained on (and that its artifact records
/// as metadata): the 10-class synthetic CIFAR stand-in, 160 samples, seed 33.
pub fn cnn_train_spec() -> DataSpec {
    DataSpec::synthetic_cifar(10, 160, 33)
}

/// A tiny AlexNet (width 0.0626, seed 7) trained for 4 epochs on
/// [`cnn_train_spec`] — trained once per workspace, then loaded from the
/// artifact cache.
pub fn trained_alexnet_artifact() -> ModelArtifact {
    // The cache key fingerprints everything that determines the trained
    // weights (arch/width/seed/dropout, epochs/lr/batch, dataset spec) —
    // change a hyperparameter, change the name.
    golden::load_or_build(
        &golden_dir(),
        "alexnet-w0626-s7-d01-e4-lr005-b20-cifar10x160s33",
        || {
            let spec = cnn_train_spec();
            let (train_x, train_y) = spec.materialize().expect("synthetic data generates");
            let mut net = alexnet(
                &ModelConfig::new(10)
                    .with_width(0.0626)
                    .with_seed(7)
                    .with_dropout(0.1),
            )
            .expect("alexnet config is valid");
            let fitact = FitAct::new(FitActConfig {
                batch_size: 20,
                ..Default::default()
            });
            fitact
                .train_for_accuracy(&mut net, &train_x, &train_y, 4, 0.05)
                .expect("training runs");
            let mut artifact = ModelArtifact::capture(&net)?;
            for (k, v) in spec.to_meta() {
                artifact.set_meta(k, v);
            }
            artifact.set_meta("stage", "trained");
            Ok(artifact)
        },
    )
    .expect("golden artifact builds or loads")
}

/// The golden CNN instantiated as a live network.
// Each test binary compiles this module independently; not every suite
// uses every helper.
#[allow(dead_code)]
pub fn trained_alexnet() -> Network {
    trained_alexnet_artifact()
        .instantiate()
        .expect("golden artifact instantiates")
}
