//! Integration tests of the model zoo: every paper architecture builds,
//! runs forward and backward, and exposes the structure the FitAct workflow
//! and the fault injector rely on.

use fitact_faults::MemoryMap;
use fitact_nn::models::{Architecture, ModelConfig};
use fitact_nn::Mode;
use fitact_tensor::Tensor;

fn tiny(classes: usize) -> ModelConfig {
    ModelConfig::new(classes).with_width(0.0626).with_seed(9)
}

#[test]
fn all_architectures_build_and_classify_both_datasets() {
    for architecture in Architecture::ALL {
        for classes in [10usize, 100] {
            let mut net = architecture.build(&tiny(classes)).unwrap();
            let logits = net
                .forward(&Tensor::zeros(&[2, 3, 32, 32]), Mode::Eval)
                .unwrap();
            assert_eq!(
                logits.dims(),
                &[2, classes],
                "{architecture} with {classes} classes"
            );
            assert!(logits.is_finite());
        }
    }
}

#[test]
fn all_architectures_support_backward() {
    for architecture in Architecture::ALL {
        let mut net = architecture.build(&tiny(10)).unwrap();
        let x = Tensor::ones(&[1, 3, 32, 32]);
        let y = net.forward(&x, Mode::Train).unwrap();
        let dx = net.backward(&Tensor::ones(y.dims())).unwrap();
        assert_eq!(dx.dims(), x.dims(), "{architecture}");
        // At least one parameter received gradient.
        assert!(
            net.params().iter().any(|p| p.grad().sq_norm() > 0.0),
            "{architecture} produced no gradients"
        );
    }
}

#[test]
fn activation_slot_counts_match_the_architectures() {
    let expectations = [
        (Architecture::AlexNet, 7),   // 5 conv + 2 classifier ReLUs
        (Architecture::Vgg16, 14),    // 13 conv + 1 classifier ReLUs
        (Architecture::ResNet50, 49), // stem + 3 per bottleneck × 16
    ];
    for (architecture, expected) in expectations {
        let mut net = architecture.build(&tiny(10)).unwrap();
        assert_eq!(net.activation_slots().len(), expected, "{architecture}");
    }
}

#[test]
fn parameter_paths_are_unique_and_cover_the_memory_map() {
    for architecture in Architecture::ALL {
        let net = architecture.build(&tiny(10)).unwrap();
        let info = net.param_info();
        let mut paths: Vec<&str> = info.iter().map(|i| i.path.as_str()).collect();
        let total: usize = info.iter().map(|i| i.numel).sum();
        paths.sort();
        let before = paths.len();
        paths.dedup();
        assert_eq!(
            paths.len(),
            before,
            "{architecture} has duplicate parameter paths"
        );
        let map = MemoryMap::of_network(&net);
        assert_eq!(map.total_words() as usize, total, "{architecture}");
        assert_eq!(net.num_parameters(), total, "{architecture}");
    }
}

#[test]
fn width_multiplier_scales_every_architecture() {
    for architecture in Architecture::ALL {
        let narrow = architecture.build(&tiny(10)).unwrap().num_parameters();
        let wider = architecture
            .build(&ModelConfig::new(10).with_width(0.25).with_seed(9))
            .unwrap()
            .num_parameters();
        assert!(
            wider > narrow,
            "{architecture}: {wider} should exceed {narrow}"
        );
    }
}

#[test]
fn resnet_is_the_largest_model_at_full_width() {
    let resnet = Architecture::ResNet50
        .build(&ModelConfig::new(10))
        .unwrap()
        .num_parameters();
    let vgg = Architecture::Vgg16
        .build(&ModelConfig::new(10))
        .unwrap()
        .num_parameters();
    let alex = Architecture::AlexNet
        .build(&ModelConfig::new(10))
        .unwrap()
        .num_parameters();
    // Matches the ordering of the paper's Table I memory column.
    assert!(resnet > vgg);
    assert!(vgg > alex);
}
