//! Save→load identity pinning (extends the `checkpoint_identity`-style
//! guarantees to persistence): a model reloaded from its artifact reproduces
//! the original's evaluation accuracy and fault-campaign results **exactly**,
//! for unprotected and protected models, under both campaign engines'
//! stopping rules.

mod common;

use fitact::{apply_protection, ActivationProfiler, ProtectionScheme};
use fitact_faults::{quantize_network, Campaign, CampaignConfig, StatCampaignConfig};
use fitact_io::ModelArtifact;
use fitact_nn::{Mode, Network};

fn eval_data() -> (fitact_tensor::Tensor, Vec<usize>) {
    common::cnn_train_spec()
        .test()
        .with_samples(60)
        .materialize()
        .unwrap()
}

/// Round-trips `net` through an artifact and asserts bit-identical forward
/// outputs, evaluation accuracy, fixed-count campaign results and
/// statistical campaign reports.
fn assert_identity(mut net: Network, scheme: Option<ProtectionScheme>) {
    let (x, y) = eval_data();
    let artifact = ModelArtifact::capture_protected(&net, None, scheme).unwrap();
    let mut reloaded = ModelArtifact::from_bytes(&artifact.to_bytes())
        .unwrap()
        .instantiate()
        .unwrap();

    // Forward pass and evaluation are bit-identical.
    let want = net.forward(&x, Mode::Eval).unwrap();
    let got = reloaded.forward(&x, Mode::Eval).unwrap();
    assert_eq!(want, got, "forward outputs must be bit-identical");
    let acc_a = net.evaluate(&x, &y, 20).unwrap();
    let acc_b = reloaded.evaluate(&x, &y, 20).unwrap();
    assert_eq!(acc_a.to_bits(), acc_b.to_bits(), "accuracy must match");

    // Fixed-count campaign: identical per-trial accuracies and fault counts.
    let config = CampaignConfig {
        fault_rate: 1e-4,
        trials: 4,
        batch_size: 20,
        seed: 13,
    };
    let run_a = Campaign::new(&mut net, &x, &y)
        .unwrap()
        .run(&config)
        .unwrap();
    let run_b = Campaign::new(&mut reloaded, &x, &y)
        .unwrap()
        .run(&config)
        .unwrap();
    assert_eq!(run_a, run_b, "fixed-count campaign results must match");

    // Statistical campaign: identical stratified Wilson-CI reports.
    let stat = StatCampaignConfig {
        fault_rate: 1e-4,
        batch_size: 20,
        seed: 29,
        epsilon: 0.2,
        round_trials: 2,
        min_trials: 6,
        max_trials: 12,
        ..Default::default()
    };
    let report_a = Campaign::new(&mut net, &x, &y)
        .unwrap()
        .run_until(&stat, &fitact_faults::TransientBitFlip)
        .unwrap();
    let report_b = Campaign::new(&mut reloaded, &x, &y)
        .unwrap()
        .run_until(&stat, &fitact_faults::TransientBitFlip)
        .unwrap();
    assert_eq!(
        report_a, report_b,
        "statistical campaign reports must match"
    );
    assert_eq!(report_a.to_json(), report_b.to_json(), "JSON reports match");
}

#[test]
fn unprotected_model_round_trips_with_identical_campaigns() {
    let mut net = common::trained_alexnet();
    quantize_network(&mut net);
    assert_identity(net, None);
}

#[test]
fn fitact_protected_model_round_trips_with_identical_campaigns() {
    let mut net = common::trained_alexnet();
    let (calib_x, _) = common::cnn_train_spec().materialize().unwrap();
    let profile = ActivationProfiler::new(20)
        .unwrap()
        .profile(&mut net, &calib_x)
        .unwrap();
    apply_protection(&mut net, &profile, ProtectionScheme::FitAct { slope: 8.0 }).unwrap();
    quantize_network(&mut net);
    assert_identity(net, Some(ProtectionScheme::FitAct { slope: 8.0 }));
}

#[test]
fn clipact_protected_model_round_trips_with_identical_campaigns() {
    let mut net = common::trained_alexnet();
    let (calib_x, _) = common::cnn_train_spec().materialize().unwrap();
    let profile = ActivationProfiler::new(20)
        .unwrap()
        .profile(&mut net, &calib_x)
        .unwrap();
    apply_protection(&mut net, &profile, ProtectionScheme::ClipAct).unwrap();
    quantize_network(&mut net);
    assert_identity(net, Some(ProtectionScheme::ClipAct));
}

/// The artifact preserves the protection state itself: scheme tag, profile
/// and per-neuron λ bounds reload exactly.
#[test]
fn protection_state_round_trips() {
    let mut net = common::trained_alexnet();
    let (calib_x, _) = common::cnn_train_spec().materialize().unwrap();
    let profile = ActivationProfiler::new(20)
        .unwrap()
        .profile(&mut net, &calib_x)
        .unwrap();
    let scheme = ProtectionScheme::FitAct { slope: 8.0 };
    apply_protection(&mut net, &profile, scheme).unwrap();
    let artifact = ModelArtifact::capture_protected(&net, Some(&profile), Some(scheme)).unwrap();
    let decoded = ModelArtifact::from_bytes(&artifact.to_bytes()).unwrap();
    assert_eq!(decoded.scheme, Some(scheme));
    assert_eq!(decoded.profile.as_ref(), Some(&profile));
    // λ bounds live in the `lambda` parameter tensors.
    let lambda_words: usize = decoded
        .params
        .iter()
        .filter(|p| p.path.ends_with("lambda"))
        .map(|p| p.data.len())
        .sum();
    assert_eq!(lambda_words, profile.total_neurons());
}
