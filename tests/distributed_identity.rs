//! Tentpole identity suite for the distributed campaign engine: a campaign
//! sharded across a coordinator and workers — with a worker killed mid-run,
//! leases abandoned and re-dispatched, stale duplicates delivered, and the
//! coordinator itself stopped and restarted from its checkpoint — produces a
//! [`fitact_faults::CampaignReport`] **bit-identical** to the single-process
//! serial run of the same seed.
//!
//! This is the acceptance contract of the coordinator/worker mode (see
//! `docs/distributed.md`): every fault-tolerance mechanism must be invisible
//! in the report.

use fitact_data::DataSpec;
use fitact_faults::{
    quantize_network, AllocationPolicy, Campaign, CampaignControl, RunOutcome, StatCampaignConfig,
    TransientBitFlip, UnitRunner,
};
use fitact_io::ModelArtifact;
use fitact_nn::layers::{ActivationLayer, Flatten, Linear, Sequential};
use fitact_nn::Network;
use fitact_serve::http::Response;
use fitact_serve::protocol::{http_call, Grant, UnitResult, WorkUnit, MAX_CONTROL_BODY};
use fitact_serve::{run_worker_until, Coordinator, CoordinatorConfig, WorkerConfig};
use fitact_tensor::Precision;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::net::SocketAddr;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// The dataset every run rematerialises: 3-class blobs, deterministic.
fn data_spec() -> DataSpec {
    DataSpec::blobs(3, 96, 5)
}

/// A tiny deterministic MLP over the blobs features, captured as an
/// artifact. Untrained — resilience of random weights is as deterministic
/// as resilience of trained ones, and orders of magnitude cheaper here.
fn artifact_bytes() -> Vec<u8> {
    let features: usize = data_spec().input_shape().iter().product();
    let hidden = 16;
    let mut rng = StdRng::seed_from_u64(9);
    let network = Network::new(
        "mlp",
        Sequential::new()
            .with(Box::new(Flatten::new()))
            .with(Box::new(Linear::new(features, hidden, &mut rng)))
            .with(Box::new(ActivationLayer::relu("h1", &[hidden])))
            .with(Box::new(Linear::new(hidden, 3, &mut rng))),
    );
    ModelArtifact::capture(&network).unwrap().to_bytes()
}

/// The same MLP captured with native f16 words: half-width storage, f16
/// sign/exponent/mantissa fault strata in the campaign.
fn f16_artifact_bytes() -> Vec<u8> {
    let artifact = ModelArtifact::from_bytes(&artifact_bytes()).unwrap();
    let mut network = artifact.instantiate().unwrap();
    network.quantize_to(Precision::F16);
    ModelArtifact::capture(&network).unwrap().to_bytes()
}

/// A campaign small enough to finish in milliseconds but large enough to
/// span several rounds of several work units each.
fn campaign_config() -> StatCampaignConfig {
    StatCampaignConfig {
        fault_rate: 2e-3,
        batch_size: 32,
        seed: 11,
        epsilon: 0.18,
        confidence: 0.9,
        critical_threshold: 0.05,
        round_trials: 6,
        min_trials: 18,
        max_trials: 54,
        ..Default::default()
    }
}

/// The same campaign under adaptive Neyman allocation — every identity
/// scenario must hold for the adaptive planner too, since its plans depend
/// only on merged pool state.
fn neyman_config() -> StatCampaignConfig {
    StatCampaignConfig {
        allocation: AllocationPolicy::Neyman,
        ..campaign_config()
    }
}

/// The single-process reference: exactly the `fitact campaign` serial path.
fn serial_reference(config: &StatCampaignConfig) -> fitact_faults::CampaignReport {
    let artifact = ModelArtifact::from_bytes(&artifact_bytes()).unwrap();
    let mut network = artifact.instantiate().unwrap();
    let (inputs, targets) = data_spec().materialize().unwrap();
    fitact::assess_resilience(&mut network, &inputs, &targets, config, &TransientBitFlip).unwrap()
}

/// The same bit-identical trial engine the workers embed, for driving the
/// coordinator protocol by hand.
fn make_runner(config: &StatCampaignConfig) -> UnitRunner {
    let artifact = ModelArtifact::from_bytes(&artifact_bytes()).unwrap();
    let mut network = artifact.instantiate().unwrap();
    quantize_network(&mut network);
    let (inputs, targets) = data_spec().materialize().unwrap();
    UnitRunner::new(network, inputs, targets, config, 1).unwrap()
}

fn call(addr: SocketAddr, method: &str, target: &str, body: &[u8]) -> Response {
    http_call(
        &addr.to_string(),
        method,
        target,
        body,
        Duration::from_secs(5),
        MAX_CONTROL_BODY,
    )
    .unwrap()
}

fn fetch_unit(addr: SocketAddr, worker: &str) -> Grant {
    let response = call(addr, "GET", &format!("/campaign/unit?worker={worker}"), b"");
    assert_eq!(response.status, 200);
    Grant::from_json(std::str::from_utf8(&response.body).unwrap()).unwrap()
}

fn execute(runner: &mut UnitRunner, unit: WorkUnit, worker: &str) -> UnitResult {
    UnitResult {
        worker: worker.into(),
        unit,
        points: runner
            .run_unit(&TransientBitFlip, unit.stratum, unit.start, unit.count)
            .unwrap(),
    }
}

/// A unique scratch path under the target dir (kept out of the source tree).
fn scratch_path(name: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR"));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(format!("{name}-{}", std::process::id()))
}

/// Extracts `"key":<integer>` from a status JSON line.
fn status_field(status: &str, key: &str) -> u64 {
    let needle = format!("\"{key}\":");
    let rest = &status[status.find(&needle).expect("status field present") + needle.len()..];
    rest.chars()
        .take_while(char::is_ascii_digit)
        .collect::<String>()
        .parse()
        .unwrap()
}

/// Degradation floor: with `local_execute` the coordinator completes the
/// campaign with zero workers, bit-identical to the serial run.
fn solo_matches_serial(config: StatCampaignConfig) {
    let reference = serial_reference(&config);
    let coordinator = Coordinator::start_with_data(
        artifact_bytes(),
        data_spec(),
        config,
        Arc::new(TransientBitFlip),
        &CoordinatorConfig {
            local_execute: true,
            ..Default::default()
        },
    )
    .unwrap();
    let report = coordinator
        .run_to_completion()
        .unwrap()
        .expect("solo coordinator finishes the campaign");
    coordinator.shutdown();
    assert_eq!(report, reference, "solo coordinator must match serial");
}

#[test]
fn coordinator_solo_matches_the_serial_run() {
    solo_matches_serial(campaign_config());
}

#[test]
fn neyman_coordinator_solo_matches_the_serial_run() {
    solo_matches_serial(neyman_config());
}

/// The tentpole scenario: a worker that dies after two units, a ghost worker
/// that dies holding a lease, a coordinator stop/checkpoint/restart on the
/// same port, then two real HTTP workers (one killed while the campaign
/// runs) — and the final report is bit-identical to serial.
fn death_and_restart_matches_serial(config: StatCampaignConfig, ckpt_name: &str) {
    let reference = serial_reference(&config);
    let checkpoint = scratch_path(ckpt_name);
    let _ = std::fs::remove_file(&checkpoint);

    let options = CoordinatorConfig {
        checkpoint: Some(checkpoint.clone()),
        local_execute: false,
        ..Default::default()
    };

    // Phase 1: worker `mortal` completes exactly two units over the real
    // protocol and dies; worker `ghost` leases a unit and dies without ever
    // reporting; then the coordinator is stopped gracefully.
    let mut merged_trials = 0usize;
    let port = {
        let coordinator = Coordinator::start_with_data(
            artifact_bytes(),
            data_spec(),
            config.clone(),
            Arc::new(TransientBitFlip),
            &options,
        )
        .unwrap();
        let addr = coordinator.addr();
        let mut runner = make_runner(&config);

        for _ in 0..2 {
            let Grant::Unit { unit, .. } = fetch_unit(addr, "mortal") else {
                panic!("round 0 has pending units to grant");
            };
            merged_trials += unit.count;
            let result = execute(&mut runner, unit, "mortal");
            let response = call(
                addr,
                "POST",
                "/campaign/result",
                result.to_json().as_bytes(),
            );
            assert_eq!(response.status, 200);
        }
        // The ghost's lease must not survive the restart: leases are
        // in-memory, so the restarted coordinator re-plans the unit as
        // pending and re-dispatches it.
        assert!(
            matches!(fetch_unit(addr, "ghost"), Grant::Unit { .. }),
            "mid-campaign grant hands out a unit"
        );

        coordinator.stop();
        assert!(
            coordinator.run_to_completion().unwrap().is_none(),
            "a stopped campaign reports resumable, not finished"
        );
        assert!(checkpoint.exists(), "stop checkpointed the campaign");
        let port = addr.port();
        coordinator.shutdown();
        port
    };

    // Phase 2: restart on the same port from the checkpoint, with two real
    // workers; one of them is killed while the campaign runs.
    let coordinator = Coordinator::start_with_data(
        artifact_bytes(),
        data_spec(),
        config,
        Arc::new(TransientBitFlip),
        &CoordinatorConfig {
            listen: format!("127.0.0.1:{port}"),
            ..options
        },
    )
    .unwrap();
    let addr = coordinator.addr();
    assert_eq!(addr.port(), port, "coordinator rebinds its old port");
    assert!(
        status_field(&coordinator.status(), "total_trials") >= merged_trials as u64,
        "restart resumed the two merged units from the checkpoint"
    );
    assert!(merged_trials > 0, "mortal merged at least one trial");

    let doomed_stop = Arc::new(AtomicBool::new(false));
    let spawn_worker = |id: &str, stop: &Arc<AtomicBool>| {
        let stop = Arc::clone(stop);
        let id = id.to_owned();
        std::thread::spawn(move || {
            run_worker_until(
                &WorkerConfig {
                    coordinator: addr.to_string(),
                    worker_id: id,
                    ..Default::default()
                },
                &stop,
            )
        })
    };
    let doomed = spawn_worker("doomed", &doomed_stop);
    let survivor = spawn_worker("survivor", &Arc::new(AtomicBool::new(false)));
    // Kill one worker while the campaign is (possibly still) running. Any
    // unit it held is handed to the survivor by straggler re-issue; if it
    // was mid-report the "stopped" error below is expected.
    std::thread::sleep(Duration::from_millis(20));
    doomed_stop.store(true, Ordering::SeqCst);

    let report = coordinator
        .run_to_completion()
        .unwrap()
        .expect("restarted campaign runs to completion");
    let _ = doomed.join().unwrap();
    survivor.join().unwrap().unwrap();
    coordinator.shutdown();

    assert_eq!(
        report, reference,
        "distributed + death + restart must be bit-identical to serial"
    );
    assert!(
        !checkpoint.exists(),
        "completion removes the checkpoint file"
    );
}

#[test]
fn distributed_with_worker_death_and_coordinator_restart_matches_serial() {
    death_and_restart_matches_serial(campaign_config(), "distributed-restart.ckpt");
}

/// The same fault-tolerance gauntlet under adaptive allocation: worker
/// death, lease abandonment and a coordinator restart must be invisible in
/// the neyman report too — its plans replay from pool state alone.
#[test]
fn neyman_distributed_with_worker_death_and_coordinator_restart_matches_serial() {
    death_and_restart_matches_serial(neyman_config(), "neyman-restart.ckpt");
}

/// Lease-machinery contract over the raw protocol: straggler re-issue,
/// expired-lease re-dispatch, idempotent duplicate completion and the 409
/// taxonomy — then the manually-driven campaign still matches serial.
#[test]
fn leases_redispatch_and_duplicates_are_idempotent() {
    let reference = serial_reference(&campaign_config());
    let coordinator = Coordinator::start_with_data(
        artifact_bytes(),
        data_spec(),
        campaign_config(),
        Arc::new(TransientBitFlip),
        &CoordinatorConfig {
            local_execute: false,
            unit_trials: 6,
            lease: Duration::from_millis(100),
            ..Default::default()
        },
    )
    .unwrap();
    let addr = coordinator.addr();
    let mut runner = make_runner(&campaign_config());

    // Worker `slow` leases every unit of round 0 and reports nothing.
    let mut held = Vec::new();
    while let Grant::Unit { unit, lease_ms } = fetch_unit(addr, "slow") {
        assert_eq!(lease_ms, 100);
        held.push(unit);
    }
    assert!(held.len() >= 2, "round 0 has several units, got {held:?}");

    // Straggler re-issue: with nothing pending, a second worker is handed
    // the earliest-deadline unit another worker holds — before it expires.
    let Grant::Unit { unit: reissued, .. } = fetch_unit(addr, "fast") else {
        panic!("straggler re-issue must grant a unit");
    };
    assert_eq!(reissued, held[0], "re-issue hands out the oldest lease");

    // `fast` completes it; the stale holder's duplicate is an idempotent
    // no-op answered from pool content.
    let result = execute(&mut runner, reissued, "fast").to_json();
    let fresh = call(addr, "POST", "/campaign/result", result.as_bytes());
    assert_eq!(fresh.status, 200);
    assert!(std::str::from_utf8(&fresh.body)
        .unwrap()
        .contains("\"fresh\":true"));
    let duplicate = execute(&mut runner, reissued, "slow").to_json();
    let stale = call(addr, "POST", "/campaign/result", duplicate.as_bytes());
    assert_eq!(stale.status, 200);
    assert!(std::str::from_utf8(&stale.body)
        .unwrap()
        .contains("\"fresh\":false"));

    // A result for a unit the coordinator never planned is a 409 — and not
    // fatal: the campaign keeps running.
    let mut bogus = execute(&mut runner, reissued, "fast");
    bogus.unit.id += 7;
    let rejected = call(addr, "POST", "/campaign/result", bogus.to_json().as_bytes());
    assert_eq!(rejected.status, 409);

    // Let the remaining `slow` leases expire, then drive the campaign to
    // completion as `fast`: every further grant is an expired-lease
    // re-dispatch until round 0 closes, then fresh rounds.
    std::thread::sleep(Duration::from_millis(150));
    loop {
        match fetch_unit(addr, "fast") {
            Grant::Done => break,
            Grant::Wait { retry_ms } => std::thread::sleep(Duration::from_millis(retry_ms.min(50))),
            Grant::Unit { unit, .. } => {
                let result = execute(&mut runner, unit, "fast").to_json();
                let response = call(addr, "POST", "/campaign/result", result.as_bytes());
                assert_eq!(response.status, 200);
            }
        }
    }

    let report = coordinator
        .run_to_completion()
        .unwrap()
        .expect("manually driven campaign finishes");
    coordinator.shutdown();
    assert_eq!(
        report, reference,
        "lease churn must be invisible in the report"
    );
}

/// Reduced-precision acceptance: the campaign over the f16-native artifact —
/// half-width words, f16 bit-class strata, native-encoding flips — is
/// bit-identical between the serial path, a solo coordinator, and a
/// coordinator feeding a real HTTP worker.
#[test]
fn f16_distributed_campaign_matches_serial() {
    let reference = {
        let artifact = ModelArtifact::from_bytes(&f16_artifact_bytes()).unwrap();
        let mut network = artifact.instantiate().unwrap();
        assert_eq!(network.precision(), Precision::F16, "artifact stores f16");
        let (inputs, targets) = data_spec().materialize().unwrap();
        fitact::assess_resilience(
            &mut network,
            &inputs,
            &targets,
            &campaign_config(),
            &TransientBitFlip,
        )
        .unwrap()
    };

    // Degradation floor in half precision: solo coordinator, no workers.
    let solo = Coordinator::start_with_data(
        f16_artifact_bytes(),
        data_spec(),
        campaign_config(),
        Arc::new(TransientBitFlip),
        &CoordinatorConfig {
            local_execute: true,
            ..Default::default()
        },
    )
    .unwrap();
    let solo_report = solo
        .run_to_completion()
        .unwrap()
        .expect("solo f16 coordinator finishes the campaign");
    solo.shutdown();
    assert_eq!(
        solo_report, reference,
        "f16 solo coordinator must match serial"
    );

    // The full protocol: every trial executed by a real HTTP worker that
    // pulled config, dataset spec and the f16 model from the coordinator.
    let coordinator = Coordinator::start_with_data(
        f16_artifact_bytes(),
        data_spec(),
        campaign_config(),
        Arc::new(TransientBitFlip),
        &CoordinatorConfig {
            local_execute: false,
            ..Default::default()
        },
    )
    .unwrap();
    let addr = coordinator.addr();
    let worker = std::thread::spawn(move || {
        run_worker_until(
            &WorkerConfig {
                coordinator: addr.to_string(),
                worker_id: "half".into(),
                ..Default::default()
            },
            &AtomicBool::new(false),
        )
    });
    let report = coordinator
        .run_to_completion()
        .unwrap()
        .expect("worker-driven f16 campaign finishes");
    worker.join().unwrap().unwrap();
    coordinator.shutdown();
    assert_eq!(
        report, reference,
        "f16 worker-executed campaign must be bit-identical to serial"
    );
}

/// Graceful interruption of the in-process engine (what the CLI's SIGTERM
/// path uses): stop after the first round, resume from the captured pools,
/// and the finished report is bit-identical to an uninterrupted run.
fn interrupt_resume_matches_uninterrupted(base: StatCampaignConfig) {
    let artifact = ModelArtifact::from_bytes(&artifact_bytes()).unwrap();
    let (inputs, targets) = data_spec().materialize().unwrap();
    // At least two rounds (min_trials > one round's worth), so the observer
    // is consulted after round one instead of the campaign finishing first.
    let config = StatCampaignConfig {
        min_trials: 36,
        ..base
    };
    let reference = {
        let mut network = artifact.instantiate().unwrap();
        fitact::assess_resilience(&mut network, &inputs, &targets, &config, &TransientBitFlip)
            .unwrap()
    };

    let mut network = artifact.instantiate().unwrap();
    quantize_network(&mut network);
    let outcome = Campaign::new(&mut network, &inputs, &targets)
        .unwrap()
        .run_until_resumable(&config, &TransientBitFlip, 1, None, &mut |_| {
            CampaignControl::Stop
        })
        .unwrap();
    let RunOutcome::Interrupted(progress) = outcome else {
        panic!("observer requested a stop after round one");
    };
    assert!(progress.total_trials() > 0, "one round of trials ran");

    // Resume in a fresh process-equivalent: new network, prior pools.
    let mut network = artifact.instantiate().unwrap();
    quantize_network(&mut network);
    let resumed = Campaign::new(&mut network, &inputs, &targets)
        .unwrap()
        .run_until_resumable(
            &config,
            &TransientBitFlip,
            1,
            Some(progress.pools),
            &mut |_| CampaignControl::Continue,
        )
        .unwrap();
    let RunOutcome::Finished(report) = resumed else {
        panic!("resumed campaign runs to completion");
    };
    assert_eq!(report, reference, "interrupt/resume must be invisible");
}

#[test]
fn interrupted_and_resumed_serial_campaign_matches_uninterrupted() {
    interrupt_resume_matches_uninterrupted(campaign_config());
}

/// Interrupt/resume under adaptive allocation: the resumed engine replans
/// every round from the captured pools, so the adaptive plans — which depend
/// on those very pools — must replay identically.
#[test]
fn neyman_interrupted_and_resumed_campaign_matches_uninterrupted() {
    interrupt_resume_matches_uninterrupted(neyman_config());
}
