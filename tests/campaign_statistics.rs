//! Integration test of the statistical fault-campaign engine on the CNN
//! pipeline model: stratified sampling by bit class, outcome classification,
//! Wilson confidence intervals and sequential early stopping.
//!
//! This is the demo campaign of the statistical subsystem: it shows that (a)
//! the sequential stopping rule reaches the target precision with far fewer
//! trials than the fixed-count budget a worst-case-variance design needs, and
//! (b) the stratified report reproduces the qualitative finding of the
//! resilience literature — exponent-bit flips are far more dangerous than
//! mantissa-bit flips.

use fitact::{FitAct, FitActConfig};
use fitact_data::{materialize, DataSpec, SyntheticCifar};
use fitact_faults::{
    quantize_network, z_for_confidence, AllocationPolicy, Campaign, MemoryMap, StatCampaignConfig,
    StratumSpec, TransientBitFlip,
};
use fitact_nn::layers::{ActivationLayer, Flatten, Linear, Sequential};
use fitact_nn::models::{alexnet, ModelConfig};
use fitact_nn::Network;
use fitact_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The briefly-trained, quantised tiny AlexNet used by the CNN pipeline
/// tests, plus its evaluation set.
fn trained_cnn() -> (Network, Tensor, Vec<usize>) {
    let train = SyntheticCifar::train(10, 160, 33);
    let test = SyntheticCifar::test(10, 80, 33);
    let (train_x, train_y) = materialize(&train).unwrap();
    let (test_x, test_y) = materialize(&test).unwrap();
    let mut net = alexnet(
        &ModelConfig::new(10)
            .with_width(0.0626)
            .with_seed(7)
            .with_dropout(0.1),
    )
    .unwrap();
    let fitact = FitAct::new(FitActConfig {
        batch_size: 20,
        ..Default::default()
    });
    fitact
        .train_for_accuracy(&mut net, &train_x, &train_y, 4, 0.05)
        .unwrap();
    quantize_network(&mut net);
    (net, test_x, test_y)
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "hundreds of CNN evaluations; run with --release (the CI release-test job does)"
)]
fn stratified_campaign_converges_early_and_ranks_bit_classes() {
    let (mut net, test_x, test_y) = trained_cnn();
    let baseline = net.evaluate(&test_x, &test_y, 40).unwrap();
    assert!(
        baseline > 0.15,
        "baseline {baseline} should beat 10% chance"
    );

    // Aim for ~0.5 expected exponent-bit flips per trial: most trials are
    // masked, a visible minority are critical — the lopsided regime early
    // stopping is designed to exploit.
    let words = MemoryMap::of_network(&net).total_words();
    let fault_rate = 0.5 / (words as f64 * 15.0);

    let epsilon = 0.02;
    let confidence = 0.95;
    let config = StatCampaignConfig {
        fault_rate,
        batch_size: 40,
        seed: 2024,
        epsilon,
        confidence,
        critical_threshold: 0.1,
        round_trials: 12,
        min_trials: 90,
        max_trials: 2500,
        strata: StratumSpec::by_bit_class(),
        ..Default::default()
    };
    let report = Campaign::new(&mut net, &test_x, &test_y)
        .unwrap()
        .run_until(&config, &TransientBitFlip)
        .unwrap();

    // The campaign reached the 95% Wilson half-width target on the pooled
    // critical-SDC rate ...
    assert!(
        report.converged,
        "campaign should converge within the budget"
    );
    let pooled = report.pooled_critical();
    assert!(
        pooled.half_width() <= epsilon,
        "pooled critical-SDC CI half-width {} exceeds ε {epsilon}",
        pooled.half_width()
    );

    // ... with measurably fewer trials than a fixed-count design: without
    // sequential stopping, guaranteeing half-width ≤ ε for *any* outcome rate
    // requires budgeting the worst case p = 1/2, i.e. about z²/(4ε²) trials.
    let z = z_for_confidence(confidence);
    let fixed_count_baseline = (z * z / (4.0 * epsilon * epsilon)).ceil() as usize; // ≈ 2401
    assert!(
        report.total_trials() * 2 < fixed_count_baseline,
        "adaptive campaign used {} trials, not measurably fewer than the {} \
         of the fixed-count baseline",
        report.total_trials(),
        fixed_count_baseline
    );

    eprintln!(
        "[campaign_statistics] converged in {} trials / {} rounds (fixed-count baseline {}), \
         pooled critical-SDC {:.3} ∈ [{:.3}, {:.3}]",
        report.total_trials(),
        report.rounds,
        fixed_count_baseline,
        pooled.point(),
        pooled.low,
        pooled.high
    );

    // Per-stratum bookkeeping is consistent.
    assert_eq!(report.strata.len(), 3);
    for stratum in &report.strata {
        assert_eq!(
            stratum.masked + stratum.tolerable + stratum.critical,
            stratum.trials(),
            "stratum {}",
            stratum.label
        );
        assert!(stratum.trials() >= config.min_trials / 3);
        assert!(stratum.critical_ci.low <= stratum.critical_ci.high);
    }

    // The headline stratified finding: exponent-bit flips are more critical
    // than mantissa-bit flips (FT-ClipAct's vulnerability analysis).
    let exponent = report.stratum("exponent").unwrap();
    let mantissa = report.stratum("mantissa").unwrap();
    assert!(
        exponent.critical > mantissa.critical,
        "exponent flips ({} critical of {}) should dominate mantissa flips \
         ({} critical of {})",
        exponent.critical,
        exponent.trials(),
        mantissa.critical,
        mantissa.trials()
    );
    assert!(
        exponent.critical_rate() > mantissa.critical_rate(),
        "exponent critical rate {} vs mantissa {}",
        exponent.critical_rate(),
        mantissa.critical_rate()
    );
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "three CNN campaigns back to back; run with --release (the CI release-test job does)"
)]
fn statistical_campaign_is_deterministic_across_thread_counts_on_the_cnn() {
    let (mut net, test_x, test_y) = trained_cnn();
    let words = MemoryMap::of_network(&net).total_words();
    // A loose ε and tight budget keep this regression test fast: what it pins
    // is bit-identity of the early-stopped stratified path across worker
    // counts, extending the fixed-count pinning tests to `run_until`.
    let config = StatCampaignConfig {
        fault_rate: 0.2 / (words as f64 * 15.0),
        batch_size: 40,
        seed: 7,
        epsilon: 0.12,
        round_trials: 4,
        min_trials: 12,
        max_trials: 36,
        ..Default::default()
    };
    let serial = Campaign::new(&mut net, &test_x, &test_y)
        .unwrap()
        .run_until_with_threads(&config, &TransientBitFlip, 1)
        .unwrap();
    for threads in [2, 5] {
        let parallel = Campaign::new(&mut net, &test_x, &test_y)
            .unwrap()
            .run_until_with_threads(&config, &TransientBitFlip, threads)
            .unwrap();
        assert_eq!(parallel, serial, "threads = {threads}");
    }
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "three CNN campaigns back to back; run with --release (the CI release-test job does)"
)]
fn neyman_campaign_is_deterministic_across_thread_counts_on_the_cnn() {
    let (mut net, test_x, test_y) = trained_cnn();
    let words = MemoryMap::of_network(&net).total_words();
    // The adaptive planner reallocates every round from the merged pools;
    // this pins that its early-stopped reports are bit-identical at any
    // worker count, exactly as the equal-allocation leg above.
    let config = StatCampaignConfig {
        fault_rate: 0.2 / (words as f64 * 15.0),
        batch_size: 40,
        seed: 7,
        epsilon: 0.12,
        round_trials: 4,
        min_trials: 12,
        max_trials: 36,
        allocation: AllocationPolicy::Neyman,
        ..Default::default()
    };
    let serial = Campaign::new(&mut net, &test_x, &test_y)
        .unwrap()
        .run_until_with_threads(&config, &TransientBitFlip, 1)
        .unwrap();
    assert_eq!(serial.allocation, AllocationPolicy::Neyman);
    for threads in [2, 4] {
        let parallel = Campaign::new(&mut net, &test_x, &test_y)
            .unwrap()
            .run_until_with_threads(&config, &TransientBitFlip, threads)
            .unwrap();
        assert_eq!(parallel, serial, "threads = {threads}");
    }
}

/// A tiny deterministic MLP over 3-class blobs — cheap enough to run an
/// effectively exhaustive campaign against in debug builds.
fn small_mlp() -> (Network, Tensor, Vec<usize>) {
    let spec = DataSpec::blobs(3, 96, 5);
    let features: usize = spec.input_shape().iter().product();
    let mut rng = StdRng::seed_from_u64(9);
    let mut net = Network::new(
        "mlp",
        Sequential::new()
            .with(Box::new(Flatten::new()))
            .with(Box::new(Linear::new(features, 16, &mut rng)))
            .with(Box::new(ActivationLayer::relu("h1", &[16])))
            .with(Box::new(Linear::new(16, 3, &mut rng))),
    );
    quantize_network(&mut net);
    let (x, y) = spec.materialize().unwrap();
    (net, x, y)
}

/// Statistical correctness of the adaptive estimator: the Neyman campaign's
/// stratified CI must cover the critical rate established by a near-
/// exhaustive reference campaign of the same model, seed and fault process.
#[test]
fn neyman_ci_covers_the_exhaustive_ground_truth_on_the_small_mlp() {
    let base = StatCampaignConfig {
        fault_rate: 2e-3,
        batch_size: 32,
        seed: 11,
        confidence: 0.95,
        critical_threshold: 0.05,
        ..Default::default()
    };

    // Ground truth: a fixed-budget equal-allocation campaign with an
    // unreachable ε so it never stops early — the population-weighted
    // critical rate over 1800 trials, with its own (tight) uncertainty.
    let truth = {
        let (mut net, x, y) = small_mlp();
        let config = StatCampaignConfig {
            epsilon: 1e-9,
            round_trials: 100,
            min_trials: 1800,
            max_trials: 1800,
            ..base.clone()
        };
        Campaign::new(&mut net, &x, &y)
            .unwrap()
            .run_until(&config, &TransientBitFlip)
            .unwrap()
    };
    assert_eq!(truth.total_trials(), 1800);
    let truth_rate = truth.population_weighted_critical_rate();
    let truth_slack = truth.stratified_critical_half_width();

    // The adaptive campaign: stops as soon as the stratified CI half-width
    // reaches ε, reallocating every round.
    let adaptive = {
        let (mut net, x, y) = small_mlp();
        let config = StatCampaignConfig {
            epsilon: 0.05,
            round_trials: 12,
            min_trials: 72,
            max_trials: 1200,
            allocation: AllocationPolicy::Neyman,
            ..base
        };
        Campaign::new(&mut net, &x, &y)
            .unwrap()
            .run_until(&config, &TransientBitFlip)
            .unwrap()
    };
    assert!(
        adaptive.converged,
        "the adaptive campaign should reach ε within its budget \
         ({} trials, half-width {})",
        adaptive.total_trials(),
        adaptive.stratified_critical_half_width()
    );
    assert!(
        adaptive.total_trials() < truth.total_trials(),
        "early stopping must beat the exhaustive budget"
    );

    let estimate = adaptive.population_weighted_critical_rate();
    let half_width = adaptive.stratified_critical_half_width();
    assert!(
        (estimate - truth_rate).abs() <= half_width + truth_slack,
        "adaptive estimate {estimate} ± {half_width} must cover the \
         exhaustive ground truth {truth_rate} ± {truth_slack}"
    );
}
