//! Bound calibration study: why one global bound per layer is not enough.
//!
//! ```bash
//! cargo run --release --example bound_calibration
//! ```
//!
//! Reproduces the reasoning behind the paper's Figs. 1–2 on a small scale: it
//! profiles the per-neuron activation maxima of a trained network, prints
//! their spread, and then shows how sweeping a single global bound trades
//! fault-free accuracy against fault coverage, while per-neuron bounds avoid
//! the trade-off.

use fitact::{apply_protection, ActivationProfiler, GbRelu, ProtectionScheme};
use fitact_data::{materialize, Blobs, BlobsConfig};
use fitact_faults::{quantize_network, Campaign, CampaignConfig};
use fitact_nn::layers::{ActivationLayer, Linear, Sequential};
use fitact_nn::loss::CrossEntropyLoss;
use fitact_nn::optim::Sgd;
use fitact_nn::Network;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Train a small MLP.
    let mut rng = StdRng::seed_from_u64(5);
    let root = Sequential::new()
        .with(Box::new(Linear::new(8, 48, &mut rng)))
        .with(Box::new(ActivationLayer::relu("hidden", &[48])))
        .with(Box::new(Linear::new(48, 3, &mut rng)));
    let mut network = Network::new("calibration-mlp", root);
    let train = Blobs::new(BlobsConfig {
        samples: 384,
        seed: 8,
        ..Default::default()
    })?;
    let test = Blobs::new(BlobsConfig {
        samples: 192,
        // Same seed as the training set (Blobs centres derive from the
        // seed); the comparison measures resilience, not generalisation.
        seed: 8,
        ..Default::default()
    })?;
    let (train_x, train_y) = materialize(&train)?;
    let (test_x, test_y) = materialize(&test)?;
    let loss = CrossEntropyLoss::new();
    let mut opt = Sgd::with_momentum(0.05, 0.9, 0.0);
    for _ in 0..60 {
        network.train_batch(&train_x, &train_y, &loss, &mut opt)?;
    }
    quantize_network(&mut network);
    let baseline = network.evaluate(&test_x, &test_y, 64)?;
    println!("fault-free accuracy: {:.1}%", 100.0 * baseline);

    // Profile the per-neuron maxima of the hidden layer (the data of Fig. 2).
    let profile = ActivationProfiler::new(64)?.profile(&mut network, &train_x)?;
    let slot = &profile.slots[0];
    let min = slot
        .per_neuron_max
        .iter()
        .copied()
        .fold(f32::INFINITY, f32::min);
    println!(
        "hidden-layer neuron maxima: min {:.2}, max {:.2} ({} neurons) — a single bound cannot fit all of them",
        min,
        slot.layer_max,
        slot.num_neurons()
    );
    println!("density histogram of the per-neuron maxima (Fig. 2 analogue):");
    for (center, density) in slot.histogram(8) {
        let bar = "#".repeat((density * 20.0).round() as usize);
        println!("  {center:6.2}  {density:6.3}  {bar}");
    }

    // Sweep a single global bound on the hidden layer (Fig. 1 analogue).
    let fault_rate = 2e-3;
    let campaign_config = CampaignConfig {
        fault_rate,
        trials: 12,
        batch_size: 64,
        seed: 4,
    };
    println!();
    println!("global-bound sweep at fault rate {fault_rate:.0e}:");
    println!(
        "  {:>8}  {:>18}  {:>18}",
        "bound", "fault-free acc (%)", "acc under fault (%)"
    );
    for step in 1..=8 {
        let bound = slot.layer_max * step as f32 / 4.0;
        let mut candidate = network.clone();
        candidate.activation_slots()[0].replace_activation(Box::new(GbRelu::new(bound)));
        let fault_free = candidate.evaluate(&test_x, &test_y, 64)?;
        let result = Campaign::new(&mut candidate, &test_x, &test_y)?.run(&campaign_config)?;
        println!(
            "  {:>8.2}  {:>18.1}  {:>18.1}",
            bound,
            100.0 * fault_free,
            100.0 * result.mean_accuracy()
        );
    }

    // Per-neuron bounds (FitAct's granularity) get both at once.
    let mut per_neuron = network.clone();
    apply_protection(&mut per_neuron, &profile, ProtectionScheme::FitActNaive)?;
    let fault_free = per_neuron.evaluate(&test_x, &test_y, 64)?;
    let result = Campaign::new(&mut per_neuron, &test_x, &test_y)?.run(&campaign_config)?;
    println!(
        "  per-neuron bounds: fault-free {:.1}%, under fault {:.1}%",
        100.0 * fault_free,
        100.0 * result.mean_accuracy()
    );
    Ok(())
}
