//! Quickstart: the full FitAct workflow on a small MLP.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```
//!
//! The example trains a small classifier (stage 1), builds the FitAct-protected
//! variant (calibration + FitReLU + bound post-training, stage 2), and then
//! compares the accuracy of the unprotected and protected models under random
//! bit-flip faults in their parameter memory.

use fitact::{FitAct, FitActConfig};
use fitact_data::{materialize, Blobs, BlobsConfig};
use fitact_faults::{quantize_network, Campaign, CampaignConfig};
use fitact_nn::layers::{ActivationLayer, Linear, Sequential};
use fitact_nn::Network;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A small base model with plain ReLU activations.
    let mut rng = StdRng::seed_from_u64(0);
    let root = Sequential::new()
        .with(Box::new(Linear::new(8, 32, &mut rng)))
        .with(Box::new(ActivationLayer::relu("hidden", &[32])))
        .with(Box::new(Linear::new(32, 3, &mut rng)));
    let mut network = Network::new("quickstart-mlp", root);

    // 2. A small synthetic classification dataset.
    let train = Blobs::new(BlobsConfig {
        samples: 384,
        seed: 1,
        ..Default::default()
    })?;
    let test = Blobs::new(BlobsConfig {
        samples: 192,
        // Same seed as the training set: Blobs centres derive from the
        // seed, so a disjoint seed would relabel the classes. Resilience,
        // not generalisation, is what the comparison measures.
        seed: 1,
        ..Default::default()
    })?;
    let (train_x, train_y) = materialize(&train)?;
    let (test_x, test_y) = materialize(&test)?;

    // 3. Stage 1: conventional training for accuracy.
    let fitact = FitAct::new(FitActConfig {
        post_train_epochs: 3,
        ..Default::default()
    });
    let report = fitact.train_for_accuracy(&mut network, &train_x, &train_y, 20, 0.05)?;
    println!(
        "stage 1 (accuracy training): {} epochs, final train accuracy {:.1}%",
        report.epochs,
        100.0 * report.final_accuracy
    );

    // 4. Keep an unprotected copy for comparison, then build the resilient model.
    let mut unprotected = network.clone();
    quantize_network(&mut unprotected);
    let mut resilient = fitact.build_resilient(network, &train_x, &train_y)?;
    quantize_network(resilient.network_mut());
    println!(
        "stage 2 (resilience post-training): {} epochs, fault-free accuracy {:.1}% -> {:.1}%, mean bound {:.3} -> {:.3}",
        resilient.report().epochs_run,
        100.0 * resilient.report().initial_accuracy,
        100.0 * resilient.report().final_accuracy,
        resilient.report().mean_bound_before,
        resilient.report().mean_bound_after,
    );

    // 5. Compare resilience under random bit flips in parameter memory.
    let fault_rate = 2e-3; // aggressive, because the toy model is tiny
    let config = CampaignConfig {
        fault_rate,
        trials: 20,
        batch_size: 64,
        seed: 7,
    };
    let unprotected_result = Campaign::new(&mut unprotected, &test_x, &test_y)?.run(&config)?;
    let protected_result =
        Campaign::new(resilient.network_mut(), &test_x, &test_y)?.run(&config)?;

    println!();
    println!(
        "fault rate {fault_rate:.0e} (per bit), {} trials:",
        config.trials
    );
    println!(
        "  unprotected : fault-free {:.1}%, mean under fault {:.1}%",
        100.0 * unprotected_result.fault_free_accuracy,
        100.0 * unprotected_result.mean_accuracy()
    );
    println!(
        "  FitAct      : fault-free {:.1}%, mean under fault {:.1}%",
        100.0 * protected_result.fault_free_accuracy,
        100.0 * protected_result.mean_accuracy()
    );
    Ok(())
}
