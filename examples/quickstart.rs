//! Quickstart: the full FitAct workflow on a small MLP.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```
//!
//! The example trains a small classifier (stage 1), builds the FitAct-protected
//! variant (calibration + FitReLU + bound post-training, stage 2), and then
//! runs the statistical fault campaign on both models and reports what the
//! paper's evaluation actually measures: the **critical-SDC rate** — the
//! probability that one fault trial degrades top-1 accuracy beyond the
//! tolerance threshold — with its Wilson confidence interval, and the
//! protected-vs-unprotected delta. (`docs/serving.md` points here: this
//! delta is the quantity a deployment buys by serving the protected
//! artifact.)

use fitact::{FitAct, FitActConfig};
use fitact_data::{materialize, Blobs, BlobsConfig};
use fitact_faults::{
    quantize_network, Campaign, CampaignReport, StatCampaignConfig, TransientBitFlip,
};
use fitact_nn::layers::{ActivationLayer, Linear, Sequential};
use fitact_nn::Network;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A small base model with plain ReLU activations.
    let mut rng = StdRng::seed_from_u64(0);
    let root = Sequential::new()
        .with(Box::new(Linear::new(8, 32, &mut rng)))
        .with(Box::new(ActivationLayer::relu("hidden", &[32])))
        .with(Box::new(Linear::new(32, 3, &mut rng)));
    let mut network = Network::new("quickstart-mlp", root);

    // 2. A small synthetic classification dataset.
    let train = Blobs::new(BlobsConfig {
        samples: 384,
        seed: 1,
        ..Default::default()
    })?;
    let test = Blobs::new(BlobsConfig {
        samples: 192,
        // Same seed as the training set: Blobs centres derive from the
        // seed, so a disjoint seed would relabel the classes. Resilience,
        // not generalisation, is what the comparison measures.
        seed: 1,
        ..Default::default()
    })?;
    let (train_x, train_y) = materialize(&train)?;
    let (test_x, test_y) = materialize(&test)?;

    // 3. Stage 1: conventional training for accuracy.
    let fitact = FitAct::new(FitActConfig {
        post_train_epochs: 3,
        ..Default::default()
    });
    let report = fitact.train_for_accuracy(&mut network, &train_x, &train_y, 20, 0.05)?;
    println!(
        "stage 1 (accuracy training): {} epochs, final train accuracy {:.1}%",
        report.epochs,
        100.0 * report.final_accuracy
    );

    // 4. Keep an unprotected copy for comparison, then build the resilient model.
    let mut unprotected = network.clone();
    quantize_network(&mut unprotected);
    let mut resilient = fitact.build_resilient(network, &train_x, &train_y)?;
    quantize_network(resilient.network_mut());
    println!(
        "stage 2 (resilience post-training): {} epochs, fault-free accuracy {:.1}% -> {:.1}%, mean bound {:.3} -> {:.3}",
        resilient.report().epochs_run,
        100.0 * resilient.report().initial_accuracy,
        100.0 * resilient.report().final_accuracy,
        resilient.report().mean_bound_before,
        resilient.report().mean_bound_after,
    );

    // 5. Compare resilience under random bit flips in parameter memory:
    // a statistical campaign per model, stopping once the critical-SDC
    // Wilson interval is tight enough.
    let fault_rate = 2e-3; // aggressive, because the toy model is tiny
    let config = StatCampaignConfig {
        fault_rate,
        batch_size: 64,
        seed: 7,
        epsilon: 0.08,
        round_trials: 8,
        min_trials: 24,
        max_trials: 160,
        ..Default::default()
    };
    let unprotected_report =
        Campaign::new(&mut unprotected, &test_x, &test_y)?.run_until(&config, &TransientBitFlip)?;
    let protected_report = Campaign::new(resilient.network_mut(), &test_x, &test_y)?
        .run_until(&config, &TransientBitFlip)?;

    let describe = |label: &str, report: &CampaignReport| {
        let critical = report.pooled_critical();
        let sdc = report.pooled_sdc();
        println!(
            "  {label}: fault-free {:.1}%, SDC rate {:.1}%, critical-SDC rate {:.1}% \
             (95% CI {:.1}%..{:.1}%, {} trials{})",
            100.0 * report.fault_free_accuracy,
            100.0 * sdc.point(),
            100.0 * critical.point(),
            100.0 * critical.low,
            100.0 * critical.high,
            report.total_trials(),
            if report.converged {
                ""
            } else {
                ", budget-capped"
            },
        );
    };
    println!();
    println!(
        "fault rate {fault_rate:.0e} (per bit), critical threshold {:.0}% accuracy drop:",
        100.0 * config.critical_threshold
    );
    describe("unprotected", &unprotected_report);
    describe("FitAct     ", &protected_report);
    let delta =
        unprotected_report.pooled_critical().point() - protected_report.pooled_critical().point();
    println!(
        "  => FitAct protection removes {:.1} percentage points of critical-SDC rate",
        100.0 * delta
    );
    Ok(())
}
