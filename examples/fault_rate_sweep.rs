//! Fault-rate sweep: resilience curves of a protected vs unprotected model.
//!
//! ```bash
//! cargo run --release --example fault_rate_sweep
//! ```
//!
//! Scenario from the paper's introduction: a safety-critical controller (think
//! a perception model in a self-driving stack) must keep its accuracy as the
//! memory fault rate rises. The example produces the accuracy-vs-fault-rate
//! curve for the unprotected model and the FitAct-protected model — the same
//! series as one panel of the paper's Fig. 6.

use fitact::{evaluate_resilience, FitAct, FitActConfig};
use fitact_data::{materialize, Blobs, BlobsConfig};
use fitact_faults::quantize_network;
use fitact_io::{golden, ModelArtifact};
use fitact_nn::layers::{ActivationLayer, Linear, Sequential};
use fitact_nn::Network;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let train = Blobs::new(BlobsConfig {
        samples: 512,
        seed: 20,
        ..Default::default()
    })?;
    let test = Blobs::new(BlobsConfig {
        samples: 256,
        // Same seed as the training set (Blobs centres derive from the
        // seed); the sweep measures resilience, not generalisation.
        seed: 20,
        ..Default::default()
    })?;
    let (train_x, train_y) = materialize(&train)?;
    let (test_x, test_y) = materialize(&test)?;

    let fitact = FitAct::new(FitActConfig {
        post_train_epochs: 3,
        ..Default::default()
    });
    // Stage 1 is deterministic, so the trained controller is cached as a
    // golden artifact: the first run trains, later runs load it.
    // The cache key fingerprints the training configuration; change a
    // hyperparameter here, change the name.
    let artifact = golden::load_or_build(
        &golden::golden_dir(env!("CARGO_MANIFEST_DIR")),
        "sweep-controller-s17-e25-lr005-blobs512s20",
        || {
            let mut rng = StdRng::seed_from_u64(17);
            let root = Sequential::new()
                .with(Box::new(Linear::new(8, 64, &mut rng)))
                .with(Box::new(ActivationLayer::relu("h1", &[64])))
                .with(Box::new(Linear::new(64, 32, &mut rng)))
                .with(Box::new(ActivationLayer::relu("h2", &[32])))
                .with(Box::new(Linear::new(32, 3, &mut rng)));
            let mut network = Network::new("controller", root);
            fitact
                .train_for_accuracy(&mut network, &train_x, &train_y, 25, 0.05)
                .expect("training runs");
            ModelArtifact::capture(&network)
        },
    )?;
    let network = artifact.instantiate()?;

    let mut unprotected = network.clone();
    quantize_network(&mut unprotected);
    let mut protected = fitact.build_resilient(network, &train_x, &train_y)?;
    quantize_network(protected.network_mut());

    let rates = [1e-5, 1e-4, 3e-4, 1e-3, 3e-3];
    let trials = 15;
    println!(
        "accuracy (%) vs per-bit fault rate, {} trials per point:",
        trials
    );
    println!(
        "  {:>10}  {:>12}  {:>12}",
        "fault rate", "unprotected", "fitact"
    );
    let unprotected_curve =
        evaluate_resilience(&mut unprotected, &test_x, &test_y, &rates, trials, 64, 3)?;
    let protected_curve = evaluate_resilience(
        protected.network_mut(),
        &test_x,
        &test_y,
        &rates,
        trials,
        64,
        3,
    )?;
    for (u, p) in unprotected_curve.iter().zip(&protected_curve) {
        println!(
            "  {:>10.0e}  {:>12.1}  {:>12.1}",
            u.fault_rate,
            u.mean_accuracy_percent(),
            p.mean_accuracy_percent()
        );
    }
    println!();
    println!(
        "fault-free accuracy: unprotected {:.1}%, fitact {:.1}%",
        100.0 * unprotected_curve[0].result.fault_free_accuracy,
        100.0 * protected_curve[0].result.fault_free_accuracy
    );
    Ok(())
}
