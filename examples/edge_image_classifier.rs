//! Edge-device image classifier: comparing all four protection schemes.
//!
//! ```bash
//! cargo run --release --example edge_image_classifier
//! ```
//!
//! Scenario from the paper's introduction: a convolutional classifier deployed
//! on a resource-constrained edge device whose parameter memory suffers random
//! bit flips. The example trains a width-scaled AlexNet on the synthetic
//! CIFAR-10 stand-in and measures, for each protection scheme (unprotected,
//! Ranger, Clip-Act, FitAct), the accuracy under an aggressive fault rate.

use fitact::{apply_protection, ActivationProfiler, FitAct, FitActConfig, ProtectionScheme};
use fitact_data::{materialize, SyntheticCifar};
use fitact_faults::{quantize_network, Campaign, CampaignConfig};
use fitact_io::{golden, ModelArtifact};
use fitact_nn::models::{alexnet, ModelConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Small configuration so the example runs in about a minute in release mode.
    let width = 0.0626;
    let train = SyntheticCifar::train(10, 200, 11);
    let test = SyntheticCifar::test(10, 100, 11);
    let (train_x, train_y) = materialize(&train)?;
    let (test_x, test_y) = materialize(&test)?;

    let fitact = FitAct::new(FitActConfig {
        post_train_epochs: 2,
        ..Default::default()
    });
    // Stage 1 is deterministic, so it is cached as a golden artifact: the
    // first run trains, later runs load (delete target/golden to retrain).
    // The cache key fingerprints the training configuration; change a
    // hyperparameter here, change the name.
    let artifact = golden::load_or_build(
        &golden::golden_dir(env!("CARGO_MANIFEST_DIR")),
        "edge-alexnet-w0626-s3-e3-lr005-cifar10x200s11",
        || {
            println!("training a width-{width} AlexNet on the synthetic CIFAR-10 stand-in ...");
            let mut base = alexnet(&ModelConfig::new(10).with_width(width).with_seed(3))?;
            fitact
                .train_for_accuracy(&mut base, &train_x, &train_y, 3, 0.05)
                .expect("training runs");
            ModelArtifact::capture(&base)
        },
    )?;
    let mut base = artifact.instantiate()?;
    quantize_network(&mut base);
    let baseline = base.evaluate(&test_x, &test_y, 50)?;
    println!(
        "fault-free test accuracy: {:.1}% (chance is 10%)",
        100.0 * baseline
    );

    // Calibrate activation maxima once; every scheme derives its bounds from it.
    let profile = ActivationProfiler::new(50)?.profile(&mut base, &train_x)?;

    let fault_rate = 3e-5 * 10.0; // paper rate scaled for the reduced model size
    println!();
    println!("accuracy under random bit flips (rate {fault_rate:.1e} per bit, 6 trials):");
    for scheme in ProtectionScheme::paper_schemes() {
        let mut protected = base.clone();
        apply_protection(&mut protected, &profile, scheme)?;
        if let ProtectionScheme::FitAct { .. } = scheme {
            fitact.post_train(&mut protected, &train_x, &train_y)?;
        }
        quantize_network(&mut protected);
        let result = Campaign::new(&mut protected, &test_x, &test_y)?.run(&CampaignConfig {
            fault_rate,
            trials: 6,
            batch_size: 50,
            seed: 21,
        })?;
        println!(
            "  {:12} mean {:.1}%   (min {:.1}%, max {:.1}%)",
            scheme.name(),
            100.0 * result.mean_accuracy(),
            100.0 * result.stats.min,
            100.0 * result.stats.max
        );
    }
    Ok(())
}
